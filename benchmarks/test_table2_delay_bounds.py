"""Bench target for Table 2: loop summaries per delay bound."""

from benchmarks.conftest import assert_checks, run_once
from repro.bench import run_table2


def test_table2_delay_bounds(benchmark, scale):
    result = run_once(benchmark, run_table2, scale)
    assert_checks(result)
    bounds = [row["delay_bound"] for row in result.rows]
    assert bounds == [1, 256, 65536]
