"""Bench target for Figure 9: scalability."""

from benchmarks.conftest import assert_checks, run_once
from repro.bench import run_fig9


def test_fig9_scalability(benchmark, scale):
    result = run_once(benchmark, run_fig9, scale, workers=(2, 4, 8))
    assert_checks(result)
    assert {row["workload"] for row in result.rows} == {
        "sssp", "pagerank", "kmeans", "svm"}
