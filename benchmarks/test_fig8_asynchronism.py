"""Bench targets for Figure 8: asynchronism, stragglers and failures."""

from benchmarks.conftest import assert_checks, run_once
from repro.bench import run_failure_figure, run_fig8a, run_fig8b


def test_fig8a_time_per_iteration(benchmark, scale):
    result = run_once(benchmark, run_fig8a, scale)
    assert_checks(result)
    assert {row["delay_bound"] for row in result.rows} >= {1, 65536}


def test_fig8b_stragglers(benchmark, scale):
    result = run_once(benchmark, run_fig8b, scale, duration=2.5)
    assert_checks(result)


def test_fig8c_master_failure(benchmark, scale):
    result = run_once(benchmark, run_failure_figure, "master", scale)
    assert_checks(result)


def test_fig8d_processor_failure(benchmark, scale):
    result = run_once(benchmark, run_failure_figure, "processor", scale)
    assert_checks(result)
