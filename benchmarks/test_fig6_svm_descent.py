"""Bench targets for Figure 6: SVM approximation error and branch time."""

from benchmarks.conftest import assert_checks, run_once
from repro.bench import run_fig6a, run_fig6b


def test_fig6a_approximation_error(benchmark, scale):
    result = run_once(benchmark, run_fig6a, scale, duration=3.0)
    assert_checks(result)
    assert len(result.rows) > 4


def test_fig6b_branch_running_time(benchmark, scale):
    result = run_once(benchmark, run_fig6b, scale,
                      fork_times=(1.0, 1.8, 2.6))
    assert_checks(result)
