"""Shared scale for the benchmark targets.

Benchmarks drive the same experiment modules as ``python -m repro.bench``
but at a reduced scale so the whole suite stays fast.  Each target runs
its experiment once (``rounds=1``) — the measured quantity is the wall
time of reproducing the paper's table/figure, and the assertions are the
experiment's qualitative shape checks.
"""

import pytest

from repro.bench.workloads import Scale

BENCH_SCALE = Scale(n_vertices=250, n_edges=1250, n_points=160,
                    n_instances=320, dim=6, k=3)


@pytest.fixture
def scale():
    return BENCH_SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def assert_checks(result):
    failing = [str(check) for check in result.checks if not check.passed]
    assert not failing, "\n".join(["shape checks failed:"] + failing
                                  + ["", result.table()])
