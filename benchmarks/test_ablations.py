"""Ablation bench targets: fork activation, sampling, storage backend."""

from benchmarks.conftest import assert_checks, run_once
from repro.bench.ablations import (run_ablation_activation,
                                   run_ablation_sampling,
                                   run_ablation_storage)


def test_ablation_fork_activation(benchmark, scale):
    result = run_once(benchmark, run_ablation_activation, scale)
    assert_checks(result)


def test_ablation_sampling_discipline(benchmark, scale):
    result = run_once(benchmark, run_ablation_sampling, scale)
    assert_checks(result)


def test_ablation_storage_backend(benchmark, scale):
    result = run_once(benchmark, run_ablation_storage, scale)
    assert_checks(result)
