"""Bench targets for Figure 5: batch vs approximate latency."""

import pytest

from benchmarks.conftest import assert_checks, run_once
from repro.bench import run_fig5


@pytest.mark.parametrize("workload", ["sssp", "pagerank", "kmeans"])
def test_fig5(benchmark, scale, workload):
    result = run_once(benchmark, run_fig5, workload, scale,
                      max_queries=6)
    assert_checks(result)
    # One row per batch size plus the approximate series.
    assert sum(1 for row in result.rows
               if row["method"] == "approximate") == 1
