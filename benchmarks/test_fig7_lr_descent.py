"""Bench targets for Figure 7: LR static vs dynamic descent rates."""

from benchmarks.conftest import assert_checks, run_once
from repro.bench import run_fig7a, run_fig7b


def test_fig7a_static_rates(benchmark, scale):
    result = run_once(benchmark, run_fig7a, scale, duration=3.0)
    assert_checks(result)
    rates = {row["rate"] for row in result.rows}
    assert len(rates) == 3


def test_fig7b_bold_driver(benchmark, scale):
    result = run_once(benchmark, run_fig7b, scale, duration=3.0)
    assert_checks(result)
