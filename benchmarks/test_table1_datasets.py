"""Bench target for Table 1: dataset generation."""

from benchmarks.conftest import assert_checks, run_once
from repro.bench import run_table1


def test_table1_datasets(benchmark, scale):
    result = run_once(benchmark, run_table1, scale)
    assert_checks(result)
    assert len(result.rows) == 4
