"""Bench target for Table 3: system comparison."""

from benchmarks.conftest import assert_checks, run_once
from repro.bench import run_table3


def test_table3_systems(benchmark, scale):
    result = run_once(benchmark, run_table3, scale)
    assert_checks(result)
    assert len(result.rows) == 16  # 4 workloads x 4 percentages
