"""Unit tests for the experiment harness utilities."""

import json

from repro.bench.harness import (ExperimentResult, ShapeCheck, flattens,
                                 merge_bench_json, monotone_decreasing,
                                 percentile)


class TestExperimentResult:
    def make(self):
        result = ExperimentResult("exp", "Title", ["a", "b"])
        result.add_row(a=1, b=2.5)
        result.add_row(a=2, b=None)
        return result

    def test_table_formatting(self):
        table = self.make().table()
        lines = table.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "2.5" in lines[2]
        assert "-" in lines[3]  # None renders as '-'

    def test_column_accessor(self):
        assert self.make().column("a") == [1, 2]

    def test_checks_and_report(self):
        result = self.make()
        result.check("good", True, "fine")
        result.check("bad", False, "broken")
        assert not result.all_checks_pass
        report = result.report()
        assert "[PASS] good" in report
        assert "[FAIL] bad — broken" in report

    def test_empty_table(self):
        result = ExperimentResult("e", "t", ["x"])
        assert result.table().splitlines()[0] == "x"

    def test_shape_check_str(self):
        assert str(ShapeCheck("n", True)) == "[PASS] n"


class TestNumericHelpers:
    def test_percentile(self):
        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0
        assert percentile([], 99.0) == 0.0

    def test_monotone_decreasing(self):
        assert monotone_decreasing([3.0, 2.0, 2.0, 1.0])
        assert not monotone_decreasing([1.0, 2.0])
        assert monotone_decreasing([1.0, 1.04], slack=0.05)

    def test_flattens(self):
        # Big early gains, tiny late gains -> flattened.
        assert flattens([10.0, 4.0, 1.0, 0.9, 0.85], knee=2)
        assert not flattens([10.0, 8.0, 6.0, 4.0, 2.0], knee=2)
        assert not flattens([1.0, 2.0], knee=0)


class TestQuickExperiments:
    def test_table1_runs_fast(self):
        from repro.bench import run_table1
        from repro.bench.workloads import Scale

        result = run_table1(Scale(n_vertices=50, n_edges=200, n_points=30,
                                  n_instances=40))
        assert result.all_checks_pass
        assert len(result.rows) == 4

    def test_cli_subset_selection(self):
        from repro.bench.__main__ import _experiments
        from repro.bench.workloads import SMALL

        experiments = _experiments(SMALL)
        assert "table2" in experiments
        assert "fig5-sssp" in experiments
        assert "perf" in experiments
        assert "skew" in experiments
        assert "delta" in experiments
        assert "live" in experiments
        assert "scale" in experiments
        assert "tenants" in experiments
        assert "placement" in experiments
        assert "wire" in experiments
        assert len(experiments) == 26


class TestMergeBenchJson:
    """All bench writers share one merge helper: writing any one section
    must preserve every other section already committed."""

    def test_section_write_preserves_siblings(self, tmp_path):
        path = str(tmp_path / "bench.json")
        merge_bench_json(path, {"scale": {"speedup": 7.0}})
        merge_bench_json(path, {"placement": {"speedup": 2.2}})
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["scale"] == {"speedup": 7.0}
        assert data["placement"] == {"speedup": 2.2}

    def test_replace_base_keeps_known_sections(self, tmp_path):
        """The perf bench owns the top level; replacing it must carry
        over the sibling sections but drop stale top-level keys."""
        path = str(tmp_path / "bench.json")
        merge_bench_json(path, {"stale_key": 1, "delta": {"v": 1},
                                "placement": {"v": 2}})
        payload = merge_bench_json(path, {"fresh_key": 3},
                                   replace_base=True)
        assert payload["fresh_key"] == 3
        assert payload["delta"] == {"v": 1}
        assert payload["placement"] == {"v": 2}
        assert "stale_key" not in payload

    def test_missing_or_corrupt_file_starts_clean(self, tmp_path):
        path = str(tmp_path / "bench.json")
        payload = merge_bench_json(path, {"live": {"v": 1}})
        assert payload == {"live": {"v": 1}, "bench": "merged"}
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        payload = merge_bench_json(path, {"live": {"v": 2}})
        assert payload == {"live": {"v": 2}, "bench": "merged"}

    def test_root_is_neutral_with_per_section_provenance(self, tmp_path):
        """The merged file must never masquerade as one writer's report:
        the perf writer's root bench id moves to sections["perf"], each
        section's own bench id is indexed by section name."""
        path = str(tmp_path / "bench.json")
        merge_bench_json(path, {"bench": "kernel_fast_path", "quick": False,
                                "scenarios": {}}, replace_base=True)
        payload = merge_bench_json(
            path, {"wire": {"bench": "columnar_wire", "speedup": 2.0}})
        assert payload["bench"] == "merged"
        assert payload["sections"]["perf"] == "kernel_fast_path"
        assert payload["sections"]["wire"] == "columnar_wire"
        assert payload["quick"] is False  # perf's top level survives

    def test_provenance_survives_base_replacement(self, tmp_path):
        """Re-running the perf writer keeps the sibling sections *and*
        their recorded provenance."""
        path = str(tmp_path / "bench.json")
        merge_bench_json(path, {"delta": {"bench": "delta_path"}})
        merge_bench_json(path, {"bench": "kernel_fast_path"},
                         replace_base=True)
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["bench"] == "merged"
        assert data["sections"] == {"perf": "kernel_fast_path",
                                    "delta": "delta_path"}
        assert data["delta"] == {"bench": "delta_path"}

    def test_output_is_deterministic(self, tmp_path):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        merge_bench_json(a, {"scale": {"x": 1}, "delta": {"y": 2}})
        merge_bench_json(b, {"delta": {"y": 2}, "scale": {"x": 1}})
        assert (open(a, encoding="utf-8").read()
                == open(b, encoding="utf-8").read())
