"""Tests for Storm tick tuples."""

import pytest

from repro.errors import TopologyError
from repro.simulator import Network, Simulator
from repro.storm import (Bolt, ClusterConfig, LocalCluster, Spout,
                         TopologyBuilder, is_tick)


class SilentSpout(Spout):
    def next_tuple(self):
        return False


class TickCounter(Bolt):
    instances = []

    def prepare(self, ctx, collector):
        self.ticks = []
        self.data = []
        TickCounter.instances.append(self)

    def execute(self, tup):
        if is_tick(tup):
            self.ticks.append(tup)
        else:
            self.data.append(tup)
        return 1e-5


def build(tick_interval=None, parallelism=1):
    TickCounter.instances = []
    sim = Simulator()
    cluster = LocalCluster(sim, Network(sim, latency=1e-4),
                           ClusterConfig())
    builder = TopologyBuilder("ticky")
    builder.set_spout("idle", SilentSpout)
    declarer = builder.set_bolt("counter", TickCounter,
                                parallelism).shuffle_grouping("idle")
    if tick_interval is not None:
        declarer.with_tick(tick_interval)
    cluster.submit(builder.build())
    return sim, cluster


class TestTickTuples:
    def test_ticks_arrive_at_interval(self):
        sim, _cluster = build(tick_interval=1.0)
        sim.run(until=5.5)
        bolt = TickCounter.instances[0]
        assert len(bolt.ticks) == 5
        assert all(is_tick(t) for t in bolt.ticks)

    def test_every_task_gets_ticks(self):
        sim, _cluster = build(tick_interval=1.0, parallelism=3)
        sim.run(until=3.5)
        assert len(TickCounter.instances) == 3
        assert all(len(bolt.ticks) == 3 for bolt in TickCounter.instances)

    def test_no_ticks_without_config(self):
        sim, _cluster = build(tick_interval=None)
        sim.run(until=5.0)
        assert TickCounter.instances[0].ticks == []

    def test_ticks_skip_crashed_tasks(self):
        sim, cluster = build(tick_interval=1.0)
        task = cluster.task_name("counter", 0)
        sim.schedule(2.5, cluster.executors[task].fail)
        sim.run(until=6.0)
        assert len(TickCounter.instances[0].ticks) == 2

    def test_bad_interval_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", SilentSpout)
        declarer = builder.set_bolt("b", TickCounter)
        with pytest.raises(TopologyError):
            declarer.with_tick(0.0)

    def test_is_tick_rejects_data_tuples(self):
        from repro.storm import StormTuple

        assert not is_tick(StormTuple("user", "default", {}, 1))
