"""Tests for the SSP parameter server (the paper's §7 comparison point)."""

import numpy as np
import pytest

from repro.algorithms import HingeLoss
from repro.baselines import SSPParameterServer
from repro.datagen import higgs_like
from repro.streams import UniformRate, instance_stream


def make_server(staleness=0, n_workers=4, seed=2, speeds=None,
                n_instances=240):
    instances, _w = higgs_like(n_instances, dim=6, seed=seed, noise=0.05)
    server = SSPParameterServer(HingeLoss(1e-3), dim=6,
                                n_workers=n_workers, staleness=staleness,
                                rate=0.2, batch_size=16, seed=seed,
                                worker_speeds=speeds)
    server.feed(instance_stream(instances, UniformRate(rate=1e6)))
    return server


class TestSSPBasics:
    def test_learns_separator(self):
        server = make_server(staleness=1)
        server.run_clocks(60)
        assert server.accuracy() > 0.9

    def test_bsp_is_staleness_zero(self):
        server = make_server(staleness=0)
        server.run_clocks(10)
        clocks = list(server.stats.clocks.values())
        # No worker may be ahead of the slowest by more than 0 at rest.
        assert max(clocks) - min(clocks) <= 1

    def test_staleness_bound_enforced(self):
        server = make_server(staleness=2, speeds=[1.0, 1.0, 1.0, 0.1])
        server.run_clocks(30)
        clocks = list(server.stats.clocks.values())
        assert max(clocks) - min(clocks) <= 2 + 1

    def test_waits_counted_under_tight_bound(self):
        """A straggler forces waits when staleness is small; a loose
        bound removes them (the SSP trade-off)."""
        tight = make_server(staleness=0)
        tight.run_clocks(20)
        # Per-tick round-robin with staleness 0 barely waits when all
        # workers advance together; the interesting case is below.
        loose = make_server(staleness=8)
        loose.run_clocks(20)
        assert loose.stats.waits <= tight.stats.waits

    def test_feeding_skips_non_instances(self):
        from repro.streams import StreamTuple

        server = make_server()
        added = server.feed([StreamTuple(0.0, "add_edge", (1, 2))])
        assert added == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SSPParameterServer(HingeLoss(), 4, n_workers=0)
        with pytest.raises(ValueError):
            SSPParameterServer(HingeLoss(), 4, n_workers=2, staleness=-1)
        with pytest.raises(ValueError):
            SSPParameterServer(HingeLoss(), 4, n_workers=2,
                               worker_speeds=[1.0])


class TestSSPTradeoff:
    def test_staleness_speeds_up_wall_time_with_stragglers(self):
        """With a slow worker, loose staleness finishes the same clocks in
        less virtual time (it overlaps the straggler)."""
        speeds = [1.0, 1.0, 1.0, 0.25]
        tight = make_server(staleness=0, speeds=speeds)
        tight.run_clocks(20)
        loose = make_server(staleness=6, speeds=speeds)
        loose.run_clocks(20)
        assert loose.stats.pushes >= tight.stats.pushes

    def test_deterministic(self):
        a = make_server(staleness=1)
        a.run_clocks(20)
        b = make_server(staleness=1)
        b.run_clocks(20)
        assert np.allclose(a.weights, b.weights)
