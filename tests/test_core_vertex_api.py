"""Unit tests for the vertex API, config validation and partition-adjacent
pieces that need no simulator."""

import pytest

from repro.core import TornadoConfig
from repro.core.messages import MAIN_LOOP, branch_name
from repro.core.vertex import Delta, VertexContext, VertexState


class TestVertexContext:
    def make_ctx(self, loop=MAIN_LOOP):
        state = VertexState("v1", value={"n": 0})
        return VertexContext(state, loop, iteration=3), state

    def test_value_read_write(self):
        ctx, state = self.make_ctx()
        ctx.value = {"n": 42}
        assert state.value == {"n": 42}

    def test_targets_add_remove(self):
        ctx, state = self.make_ctx()
        ctx.add_target("a")
        ctx.add_target("b")
        ctx.remove_target("a")
        assert ctx.targets == frozenset({"b"})
        assert state.targets == {"b"}

    def test_targets_view_is_immutable(self):
        ctx, _state = self.make_ctx()
        ctx.add_target("a")
        with pytest.raises(AttributeError):
            ctx.targets.add("b")

    def test_emit_collects_latest_per_target(self):
        ctx, _state = self.make_ctx()
        ctx.add_target("a")
        ctx.emit("a", 1)
        ctx.emit("a", 2)  # later emit supersedes
        assert ctx.take_emitted() == {"a": 2}
        assert ctx.take_emitted() == {}

    def test_emit_all(self):
        ctx, _state = self.make_ctx()
        ctx.add_target("a")
        ctx.add_target("b")
        ctx.emit_all("payload")
        assert ctx.take_emitted() == {"a": "payload", "b": "payload"}

    def test_loop_helpers(self):
        main_ctx, _s = self.make_ctx()
        assert main_ctx.get_loop() == MAIN_LOOP
        assert main_ctx.in_main_loop
        branch_ctx, _s = self.make_ctx(loop=branch_name(3))
        assert branch_ctx.get_loop() == "branch-3"
        assert not branch_ctx.in_main_loop

    def test_state_copy_is_deep_for_value(self):
        state = VertexState("v", value={"xs": [1, 2]}, targets={"a"})
        clone = state.copy_for()
        clone.value["xs"].append(3)
        clone.targets.add("b")
        assert state.value == {"xs": [1, 2]}
        assert state.targets == {"a"}

    def test_delta_is_frozen(self):
        delta = Delta("add_edge", (1, 2))
        with pytest.raises(AttributeError):
            delta.kind = "other"


class TestTornadoConfig:
    def test_defaults_valid(self):
        config = TornadoConfig()
        assert config.n_processors >= 1
        assert config.delay_bound >= 1

    @pytest.mark.parametrize("kwargs", [
        {"n_processors": 0},
        {"delay_bound": 0},
        {"storage_backend": "postgres"},
        {"merge_policy": "sometimes"},
        {"main_loop_mode": "turbo"},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TornadoConfig(**kwargs)

    def test_branch_name_format(self):
        assert branch_name(7) == "branch-7"
