"""Unit tests for the chaos-schedule generator and its helpers."""

import pytest

from repro.chaos import (KINDS, ChaosSchedule, FaultMenu, FaultSpec,
                         fault_windows, generate_schedule)

FULL_MENU = FaultMenu(
    kill_targets=("proc-0", "proc-1", "master"),
    link_endpoints=("proc-0", "proc-1", "master"),
    disks=("proc-0", "proc-1"),
    transport_chaos=True,
)


class TestFaultMenu:
    def test_full_menu_offers_every_kind(self):
        assert FULL_MENU.kinds() == KINDS

    def test_empty_menu_offers_nothing(self):
        assert FaultMenu().kinds() == ()
        with pytest.raises(ValueError, match="no fault kinds"):
            generate_schedule(1, FaultMenu(), horizon=4.0)

    def test_single_endpoint_cannot_partition(self):
        menu = FaultMenu(link_endpoints=("only",))
        assert "partition" not in menu.kinds()


class TestGenerateSchedule:
    def test_same_seed_same_schedule(self):
        a = generate_schedule(42, FULL_MENU, horizon=4.0)
        b = generate_schedule(42, FULL_MENU, horizon=4.0)
        assert a.dump() == b.dump()
        assert a.digest() == b.digest()

    def test_different_seeds_differ(self):
        digests = {generate_schedule(seed, FULL_MENU, horizon=4.0).digest()
                   for seed in range(20)}
        assert len(digests) > 1

    def test_force_kind_pins_first_fault(self):
        for kind in KINDS:
            schedule = generate_schedule(7, FULL_MENU, horizon=4.0,
                                         force_kind=kind)
            assert kind in schedule.kinds()

    def test_every_fault_heals_before_deadline(self):
        horizon = 4.0
        for seed in range(50):
            schedule = generate_schedule(seed, FULL_MENU, horizon)
            for fault in schedule.faults:
                assert fault.duration > 0
                assert fault.start >= 0.05 * horizon
                assert fault.start + fault.duration <= 0.8 * horizon + 1e-9

    def test_at_most_one_kill_per_target_and_one_chaos_plane(self):
        for seed in range(50):
            schedule = generate_schedule(seed, FULL_MENU, horizon=4.0,
                                         max_faults=8)
            kills = [f.a for f in schedule.faults if f.kind == "kill"]
            assert len(kills) == len(set(kills))
            drops = [f for f in schedule.faults if f.kind == "drop_dup"]
            assert len(drops) <= 1

    def test_faults_sorted_by_start(self):
        schedule = generate_schedule(3, FULL_MENU, horizon=4.0, max_faults=8)
        starts = [f.start for f in schedule.faults]
        assert starts == sorted(starts)


class TestScheduleOps:
    def test_without_removes_one_fault(self):
        schedule = generate_schedule(5, FULL_MENU, horizon=4.0, max_faults=8)
        assert len(schedule.faults) >= 2
        shrunk = schedule.without(0)
        assert len(shrunk.faults) == len(schedule.faults) - 1
        assert shrunk.faults == schedule.faults[1:]
        assert schedule.faults  # original untouched

    def test_dump_roundtrip_is_stable(self):
        schedule = ChaosSchedule(seed=9, faults=[
            FaultSpec("kill", 1.0, 0.5, a="proc-0"),
            FaultSpec("delay", 2.0, 0.25, x=0.05),
        ])
        assert schedule.dump() == schedule.dump()
        assert "kill start=1.000000" in schedule.dump()
        assert schedule.digest() == schedule.digest()


class TestFaultWindows:
    def test_windows_are_padded_and_merged(self):
        schedule = ChaosSchedule(seed=0, faults=[
            FaultSpec("kill", 1.0, 0.2, a="proc-0"),
            FaultSpec("kill", 1.3, 0.2, a="proc-1"),   # overlaps when padded
            FaultSpec("delay", 3.0, 0.1, x=0.05),
        ])
        windows = fault_windows(schedule, pad=0.25)
        assert windows == [(0.75, 1.75), (2.75, 3.35)]

    def test_empty_schedule_has_no_windows(self):
        assert fault_windows(ChaosSchedule(seed=0, faults=[]), pad=1.0) == []
