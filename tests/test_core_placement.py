"""Unit and integration tests for resource-aware placement (R-Storm
style): demand estimation, the greedy packer, job wiring and the
round-robin digest oracle."""

import pytest

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram
from repro.core import Application, TornadoConfig, TornadoJob
from repro.core.placement import (ClusterModel, DemandVector,
                                  PlacementPlan, ResourceAwarePlacer,
                                  estimate_demands, plan_for_stream,
                                  profile_stream, refine_affinity)
from repro.streams import UniformRate, edge_stream

EDGES = ([(0, i) for i in range(1, 9)]
         + [(10, 10 + i) for i in range(1, 9)]
         + [(0, 10)])


def make_app():
    return Application(SSSPProgram(0), EdgeStreamRouter(), name="sssp")


def stream():
    return edge_stream(EDGES, UniformRate(rate=1000.0))


class TestDemandVector:
    def test_magnitude_is_l1(self):
        assert DemandVector(1.0, 2.0, 3.0).magnitude() == 6.0

    def test_plus_and_scaled(self):
        total = DemandVector(1, 1, 1).plus(DemandVector(2, 0, 1))
        assert total.as_tuple() == (3, 1, 2)
        assert DemandVector(1, 2, 4).scaled(0.5).as_tuple() == (0.5, 1, 2)


class TestClusterModel:
    def test_from_config_matches_job_layout(self):
        config = TornadoConfig(n_processors=4, n_nodes=2)
        cluster = ClusterModel.from_config(config)
        assert cluster.processors == ["proc-0", "proc-1", "proc-2",
                                      "proc-3"]
        # Same node{i % n_nodes} mapping TornadoJob uses to colocate.
        assert cluster.node_of == {"proc-0": "node0", "proc-1": "node1",
                                   "proc-2": "node0", "proc-3": "node1"}

    def test_distances_order(self):
        cluster = ClusterModel.from_config(
            TornadoConfig(n_processors=4, n_nodes=2))
        same = cluster.distance("proc-0", "proc-0")
        local = cluster.distance("proc-0", "proc-2")
        remote = cluster.distance("proc-0", "proc-1")
        assert same == 0.0
        assert same < local < remote

    def test_capacity_cycles_over_nodes(self):
        config = TornadoConfig(n_processors=4, n_nodes=2,
                               placement_node_capacity=(2.0, 1.0))
        cluster = ClusterModel.from_config(config)
        # node0 processors are twice as capacious as node1's.
        assert cluster.capacity_share("proc-0") == pytest.approx(2 / 6)
        assert cluster.capacity_share("proc-1") == pytest.approx(1 / 6)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TornadoConfig(placement="sticky")
        with pytest.raises(ValueError):
            TornadoConfig(placement_node_capacity=(1.0, 0.0))
        with pytest.raises(ValueError):
            TornadoConfig(migration_criticality_weight=-1.0)


class TestDemandEstimation:
    def test_estimate_demands_follows_degree(self):
        demands = estimate_demands([(0, 1), (0, 2), (1, 2)])
        assert demands[0].bandwidth == 2.0  # out-degree
        assert demands[2].cpu == 1.0 + 2.0  # in-degree
        assert all(d.memory == 1.0 for d in demands.values())

    def test_profile_stream_routes_like_ingester(self):
        demands, affinity = profile_stream(make_app(), stream())
        # Hubs 0 and 10 fan out to 9 edges each.
        assert demands[0].magnitude() > demands[1].magnitude()
        assert affinity[(0, 1)] == 1.0
        # Affinity keys are orientation-normalised.
        assert all(str(u) <= str(v) for u, v in affinity)

    def test_refine_affinity_boosts_critical_link_pairs(self):
        affinity = {(0, 1): 1.0, (2, 3): 1.0}
        owner = {0: "proc-0", 1: "proc-1", 2: "proc-2",
                 3: "proc-2"}.__getitem__
        refined = refine_affinity(affinity, owner,
                                  {("proc-0", "proc-1"): 0.5}, boost=4.0)
        assert refined[(0, 1)] == pytest.approx(3.0)
        assert refined[(2, 3)] == 1.0  # off the critical path: unchanged


class TestResourceAwarePlacer:
    def cluster(self, **kwargs):
        return ClusterModel.from_config(
            TornadoConfig(n_processors=4, n_nodes=2, **kwargs))

    def test_affinity_packs_neighbours_together(self):
        demands, affinity = profile_stream(make_app(), stream())
        # Affinity-dominated placer: each hub community should collapse
        # onto a single processor (balance would otherwise spread them).
        cluster = self.cluster()
        placer = ResourceAwarePlacer(cluster, affinity_weight=50.0,
                                     balance_weight=0.1)
        plan = placer.plan(demands, affinity)
        community_a = {cluster.node_of[plan.assignments[v]]
                       for v in range(0, 9)}
        community_b = {cluster.node_of[plan.assignments[v]]
                       for v in range(10, 19)}
        assert len(community_a) == 1
        assert len(community_b) == 1

    def test_balance_spreads_unrelated_vertices(self):
        demands = {v: DemandVector() for v in range(16)}
        plan = ResourceAwarePlacer(self.cluster()).plan(demands, {})
        used = [plan.utilization[p].magnitude()
                for p in self.cluster().processors]
        assert max(used) == min(used)  # uniform demand, uniform spread

    def test_capacity_skews_toward_big_nodes(self):
        demands = {v: DemandVector() for v in range(12)}
        cluster = self.cluster(placement_node_capacity=(2.0, 1.0))
        plan = ResourceAwarePlacer(cluster).plan(demands, {})
        big = (plan.utilization["proc-0"].magnitude()
               + plan.utilization["proc-2"].magnitude())
        small = (plan.utilization["proc-1"].magnitude()
                 + plan.utilization["proc-3"].magnitude())
        assert big > small

    def test_plan_is_deterministic(self):
        demands, affinity = profile_stream(make_app(), stream())
        placer = ResourceAwarePlacer(self.cluster())
        assert (placer.plan(demands, affinity).assignments
                == placer.plan(demands, affinity).assignments)

    def test_cut_cost_beats_hash_baseline(self):
        demands, affinity = profile_stream(make_app(), stream())
        job = TornadoJob(make_app(),
                         TornadoConfig(n_processors=4, n_nodes=2))
        baseline = {v: job.partition.hash_home(v) for v in demands}
        plan = ResourceAwarePlacer(self.cluster(), affinity_weight=50.0,
                                   balance_weight=0.1).plan(
            demands, affinity, baseline=baseline)
        assert plan.cut_cost < plan.baseline_cut_cost
        assert plan.improvement > 1.0

    def test_apply_pins_partition_with_one_epoch_bump(self):
        job = TornadoJob(make_app(),
                         TornadoConfig(n_processors=4, n_nodes=2))
        demands, affinity = profile_stream(make_app(), stream())
        plan = ResourceAwarePlacer(self.cluster()).plan(demands, affinity)
        before = job.partition.epoch
        plan.apply(job.partition)
        assert job.partition.epoch == before + 1
        for vertex, processor in plan.assignments.items():
            assert job.partition.owner(vertex) == processor


class TestJobWiring:
    def config(self, **kwargs):
        kwargs.setdefault("n_processors", 4)
        kwargs.setdefault("n_nodes", 2)
        kwargs.setdefault("storage_backend", "memory")
        return TornadoConfig(**kwargs)

    def test_round_robin_leaves_partition_untouched(self):
        job = TornadoJob(make_app(), self.config())
        job.feed(stream())
        assert job.placement_plan is None
        assert job.partition._overrides == {}

    def test_resource_aware_plans_on_first_feed(self):
        job = TornadoJob(make_app(),
                         self.config(placement="resource_aware"))
        job.feed(stream())
        assert isinstance(job.placement_plan, PlacementPlan)
        assert job.partition.epoch == 1
        # Second feed must not re-plan (the layout is already pinned).
        job.feed(stream())
        assert job.partition.epoch == 1

    def test_round_robin_digest_identical_to_default(self):
        def run(**kwargs):
            job = TornadoJob(make_app(),
                             self.config(trace_enabled=True, **kwargs))
            job.feed(stream())
            job.run_for(1.0)
            return job.trace.digest()

        assert run() == run(placement="round_robin")

    def test_resource_aware_converges_to_same_values(self):
        def run(**kwargs):
            job = TornadoJob(make_app(), self.config(**kwargs))
            job.feed(stream())
            job.run_until(job.quiescent, max_events=20_000_000)
            return {v: s.distance for v, s in job.main_values().items()}

        assert run() == run(placement="resource_aware")

    def test_set_link_scores_before_feed_only(self):
        job = TornadoJob(make_app(),
                         self.config(placement="resource_aware"))
        job.feed(stream())
        with pytest.raises(ValueError):
            job.set_link_scores({("proc-0", "proc-1"): 0.5})

    def test_link_scores_refine_resubmission(self):
        scores = {("proc-0", "proc-1"): 0.9}
        job = TornadoJob(make_app(),
                         self.config(placement="resource_aware"))
        job.set_link_scores(scores)
        job.feed(stream())
        plan = job.placement_plan
        assert plan is not None
        # Refinement only reweights affinity; the plan still improves on
        # the hash layout.
        assert plan.cut_cost <= plan.baseline_cut_cost

    def test_plan_for_stream_entry_point(self):
        job = TornadoJob(make_app(),
                         self.config(placement="resource_aware"))
        plan = plan_for_stream(make_app(), job.config, job.partition,
                               list(stream()))
        assert set(plan.assignments) == {v for e in EDGES for v in e}
