"""Equivalence across delay bounds: every B must reach the same fixed
point (the paper's correctness claim for bounded asynchronous iteration)."""

import math

import pytest

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.core import Application, TornadoConfig, TornadoJob
from repro.datagen import livejournal_like
from repro.streams import UniformRate, edge_stream


def run_sssp(edges, delay_bound, seed=0):
    app = Application(SSSPProgram(0, max_distance=1000.0),
                      EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(
        n_processors=3, storage_backend="memory", report_interval=0.01,
        delay_bound=delay_bound, seed=seed))
    job.feed(edge_stream(edges, UniformRate(rate=2000.0)))
    job.run_for(2.0)
    result = job.query_and_wait(full_activation=True)
    return {vid: v.distance for vid, v in result.values.items()
            if not math.isinf(v.distance)}


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("delay_bound", [1, 2, 7, 65536])
def test_all_bounds_reach_dijkstra(seed, delay_bound):
    edges = livejournal_like(n_vertices=60, n_edges=240, seed=seed)
    expected = {v: d for v, d in reference_sssp(edges, 0).items()
                if not math.isinf(d)}
    assert run_sssp(edges, delay_bound, seed=seed) == expected


def test_bounds_agree_with_each_other():
    edges = livejournal_like(n_vertices=80, n_edges=320, seed=9)
    results = {bound: run_sssp(edges, bound) for bound in (1, 3, 65536)}
    assert results[1] == results[3] == results[65536]
