"""Regression tests for the acker's event-leak and reordering fixes."""

from repro.simulator import Actor, Network, Simulator
from repro.storm.acker import (ACK_FAIL, ACK_INIT, ACK_VAL, TREE_DONE,
                               TREE_FAILED, Acker)


class _SpoutStub(Actor):
    """Records the (outcome, message_id) notices the acker sends back."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.outcomes = []

    def handle(self, message, sender):
        self.outcomes.append(message)
        return 0.0


def _setup(tuple_timeout=5.0):
    sim = Simulator(seed=1)
    network = Network(sim, latency=1e-4)
    acker = Acker(sim, "acker", network, tuple_timeout=tuple_timeout)
    spout = _SpoutStub(sim, "spout")
    return sim, network, acker, spout


def _live_events(sim):
    return [e for e in sim._queue._heap if not e.cancelled]


class TestTimeoutEventLeak:
    def test_completed_tree_cancels_its_timeout(self):
        sim, network, acker, spout = _setup()
        network.send("spout", "acker", (ACK_INIT, 7, "spout", "m-7"))
        network.send("spout", "acker", (ACK_VAL, 7, 7))
        sim.run()
        assert acker.completed == 1
        assert acker.pending_trees == 0
        # The fix: no live _check_timeout event outlives its tree.
        assert _live_events(sim) == []

    def test_failed_tree_cancels_its_timeout(self):
        sim, network, acker, spout = _setup()
        network.send("spout", "acker", (ACK_INIT, 9, "spout", "m-9"))
        network.send("spout", "acker", (ACK_FAIL, 9))
        sim.run()
        assert acker.failed == 1
        assert _live_events(sim) == []

    def test_sustained_load_leaves_no_event_backlog(self):
        sim, network, acker, spout = _setup(tuple_timeout=1000.0)
        for root in range(1, 201):
            network.send("spout", "acker",
                         (ACK_INIT, root, "spout", f"m-{root}"))
            network.send("spout", "acker", (ACK_VAL, root, root))
        sim.run()
        assert acker.completed == 200
        # Before the fix every completed tuple left one dead heap entry
        # alive for tuple_timeout virtual seconds (200 here).
        assert _live_events(sim) == []

    def test_reinit_of_same_root_cancels_stale_timeout(self):
        sim, network, acker, spout = _setup(tuple_timeout=2.0)
        network.send("spout", "acker", (ACK_INIT, 3, "spout", "m-3a"))
        sim.run(until=1.0)
        # Replay re-registers the same root before the first timed out.
        network.send("spout", "acker", (ACK_INIT, 3, "spout", "m-3b"))
        network.send("spout", "acker", (ACK_VAL, 3, 3))
        sim.run()
        assert acker.completed == 1
        assert acker.failed == 0
        assert _live_events(sim) == []

    def test_timeout_still_fails_stuck_trees(self):
        sim, network, acker, spout = _setup(tuple_timeout=2.0)
        network.send("spout", "acker", (ACK_INIT, 5, "spout", "m-5"))
        sim.run()
        assert acker.failed == 1
        assert (TREE_FAILED, "m-5") in spout.outcomes


class TestEarlyAckVal:
    def test_ack_val_before_init_completes_tree(self):
        sim, network, acker, spout = _setup()
        # Reordered delivery: the child's ack beats the spout's init.
        network.send("bolt", "acker", (ACK_VAL, 11, 11))
        sim.run(until=0.1)
        assert acker.pending_trees == 0
        assert acker.buffered_early_roots == 1
        network.send("spout", "acker", (ACK_INIT, 11, "spout", "m-11"))
        sim.run()
        assert acker.completed == 1
        assert (TREE_DONE, "m-11") in spout.outcomes
        assert acker.buffered_early_roots == 0
        assert _live_events(sim) == []

    def test_multiple_early_vals_fold_together(self):
        sim, network, acker, spout = _setup()
        # Two tuples of the same tree: emit-xor and ack-xor of a child
        # (13) plus the root's own ack (21): 13 ^ 13 ^ 21 == 21.
        network.send("bolt", "acker", (ACK_VAL, 21, 13))
        network.send("bolt", "acker", (ACK_VAL, 21, 13))
        network.send("bolt", "acker", (ACK_VAL, 21, 21))
        sim.run(until=0.1)
        assert acker.early_vals_buffered == 3
        network.send("spout", "acker", (ACK_INIT, 21, "spout", "m-21"))
        sim.run()
        assert acker.completed == 1

    def test_unclaimed_early_val_expires(self):
        sim, network, acker, spout = _setup(tuple_timeout=2.0)
        network.send("bolt", "acker", (ACK_VAL, 99, 99))
        sim.run()
        assert acker.buffered_early_roots == 0
        assert _live_events(sim) == []
        # An init arriving after expiry starts a clean tree.
        network.send("spout", "acker", (ACK_INIT, 99, "spout", "m-99"))
        network.send("spout", "acker", (ACK_VAL, 99, 99))
        sim.run()
        assert acker.completed == 1
