"""Tests for the rate sampler and the job's store GC."""

import pytest

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram
from repro.core import Application, TornadoConfig, TornadoJob
from repro.core.metrics import RateSampler
from repro.simulator import Simulator
from repro.streams import UniformRate, edge_stream

EDGES = [("s", "a"), ("a", "b"), ("b", "c"), ("s", "c")]


class TestRateSampler:
    def test_samples_deltas(self):
        sim = Simulator()
        box = {"n": 0}

        def bump():
            box["n"] += 5
            sim.schedule(1.0, bump)

        sim.schedule(1.0, bump)
        sampler = RateSampler(sim, lambda: box["n"], interval=1.0)
        sim.run(until=4.5)
        rates = [rate for _t, rate in sampler.rates()]
        assert rates == pytest.approx([5.0, 5.0, 5.0, 5.0])
        assert sampler.peak_rate() == 5.0
        assert sampler.mean_rate() == pytest.approx(5.0)

    def test_stop_halts_sampling(self):
        sim = Simulator()
        sampler = RateSampler(sim, lambda: 0.0, interval=1.0)
        sim.run(until=2.5)
        sampler.stop()
        sim.run(until=10.0)
        assert len(sampler.samples) == 2

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            RateSampler(Simulator(), lambda: 0.0, interval=0.0)

    def test_restart_does_not_duplicate_tick_chain(self):
        # Regression: stop() used to leave the scheduled tick live, so a
        # restart before it fired ran two chains — duplicated samples at
        # offset instants.
        sim = Simulator()
        box = {"n": 0}
        sim.schedule(0.0, lambda: None)
        sampler = RateSampler(sim, lambda: box["n"], interval=1.0)
        sim.run(until=2.5)           # ticks at 1.0 and 2.0
        sampler.stop()               # stale tick pending at 3.0
        sampler.start()              # restart before the stale tick fires
        sim.run(until=6.5)
        times = [s.time for s in sampler.samples]
        # One sample per interval, strictly increasing — no doubled chain.
        assert times == sorted(set(times))
        assert len(times) == 6      # 1.0, 2.0, then 3.5, 4.5, 5.5, 6.5

    def test_stop_start_cycle_keeps_single_chain(self):
        sim = Simulator()
        sampler = RateSampler(sim, lambda: sim.now, interval=0.5)
        for _ in range(3):
            sampler.stop()
            sampler.start()
        sim.run(until=2.2)
        assert len(sampler.samples) == 4
        assert sim.pending_events <= 1

    def test_restart_after_idle_skips_stopped_window(self):
        sim = Simulator()
        box = {"n": 0}
        sampler = RateSampler(sim, lambda: box["n"], interval=1.0)
        sim.run(until=1.5)
        sampler.stop()
        box["n"] += 100              # growth while stopped
        sim.run(until=4.0)
        sampler.start()
        sim.run(until=5.5)
        # The restart re-bases the delta: the stopped window's growth is
        # not booked as a one-interval spike.
        assert sampler.samples[-1].rate == pytest.approx(0.0)

    def test_counts_job_commits(self):
        app = Application(SSSPProgram("s"), EdgeStreamRouter(),
                          name="sssp")
        job = TornadoJob(app, TornadoConfig(n_processors=2,
                                            storage_backend="memory",
                                            report_interval=0.01))
        sampler = RateSampler(job.sim, lambda: job.total_commits,
                              interval=0.25)
        job.feed(edge_stream(EDGES, UniformRate(rate=100.0)))
        job.run_for(2.0)
        assert sampler.peak_rate() > 0.0
        assert sampler.samples[-1].total == job.total_commits


class TestStoreGC:
    def make_job(self):
        app = Application(SSSPProgram("s"), EdgeStreamRouter(),
                          name="sssp")
        job = TornadoJob(app, TornadoConfig(n_processors=2,
                                            storage_backend="memory",
                                            report_interval=0.01))
        job.feed(edge_stream(EDGES, UniformRate(rate=1000.0)))
        job.run_for(1.0)
        return job

    def test_gc_drops_old_branches(self):
        job = self.make_job()
        queries = [job.query_and_wait().query_id for _ in range(4)]
        removed = job.gc(keep_last_branches=1)
        assert removed > 0
        # The newest branch stays readable; the oldest is gone.
        assert job.result(queries[-1]).values
        assert job.result(queries[0]).values == {}

    def test_gc_keeps_requested_count(self):
        job = self.make_job()
        for _ in range(3):
            job.query_and_wait()
        job.gc(keep_last_branches=3)
        kept = [record.loop for record in job.durable.branches.values()
                if job.store.version_count(record.loop)]
        assert len(kept) == 3

    def test_gc_truncates_main_versions(self):
        job = self.make_job()
        job.query_and_wait()
        before = job.store.version_count("main")
        job.gc(keep_last_branches=8, truncate_main_versions=True)
        after = job.store.version_count("main")
        assert after <= before
        # Approximation still intact after truncation.
        result = job.query_and_wait()
        assert result.values
