"""End-to-end integration tests: a full Tornado job running SSSP on the
simulated cluster, exact results checked against Dijkstra."""

import math

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.core import Application, TornadoConfig, TornadoJob
from repro.streams import UniformRate, edge_stream

EDGES = [
    ("s", "a"), ("s", "b"), ("a", "c"), ("b", "c"),
    ("c", "d"), ("d", "e"), ("b", "e"), ("e", "f"),
]


def make_job(edges=EDGES, source="s", **config_kwargs):
    config_kwargs.setdefault("n_processors", 3)
    config_kwargs.setdefault("report_interval", 0.01)
    config_kwargs.setdefault("storage_backend", "memory")
    app = Application(SSSPProgram(source), EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(**config_kwargs))
    job.feed(edge_stream(edges, UniformRate(rate=1000.0)))
    return job


def distances(result):
    return {vid: value.distance for vid, value in result.values.items()
            if not math.isinf(value.distance)}


def reference(edges=EDGES, source="s"):
    return {v: d for v, d in reference_sssp(edges, source).items()
            if not math.isinf(d)}


class TestSSSPExactness:
    def test_query_matches_dijkstra(self):
        job = make_job()
        job.run_for(2.0)
        result = job.query_and_wait()
        assert distances(result) == reference()

    def test_synchronous_mode_matches_dijkstra(self):
        job = make_job(delay_bound=1)
        job.run_for(2.0)
        result = job.query_and_wait()
        assert distances(result) == reference()

    def test_small_delay_bound_matches_dijkstra(self):
        job = make_job(delay_bound=2)
        job.run_for(2.0)
        result = job.query_and_wait()
        assert distances(result) == reference()

    def test_full_activation_query(self):
        job = make_job()
        job.run_for(2.0)
        result = job.query_and_wait(full_activation=True)
        assert distances(result) == reference()

    def test_disk_backend_same_answer(self):
        job = make_job(storage_backend="disk")
        job.run_for(2.0)
        result = job.query_and_wait()
        assert distances(result) == reference()

    def test_single_processor(self):
        job = make_job(n_processors=1)
        job.run_for(2.0)
        result = job.query_and_wait()
        assert distances(result) == reference()


class TestSSSPEvolution:
    def test_query_after_more_edges(self):
        """A second query sees the edges that arrived after the first."""
        extra = [("f", "g"), ("s", "g")]
        job = make_job()
        job.run_for(2.0)
        first = job.query_and_wait()
        assert "g" not in distances(first)
        job.feed(edge_stream(extra, UniformRate(rate=1000.0,
                                                start=job.sim.now)))
        job.run_for(2.0)
        second = job.query_and_wait()
        assert distances(second) == reference(EDGES + extra)

    def test_edge_deletion_recomputes(self):
        """Retracting an edge raises distances that relied on it."""
        from repro.streams.model import REMOVE_EDGE, StreamTuple

        job = make_job()
        job.run_for(2.0)
        before = distances(job.query_and_wait())
        assert before["e"] == 2.0  # via s->b->e
        retraction = StreamTuple(job.sim.now + 0.01, REMOVE_EDGE,
                                 ("b", "e"), weight=-1)
        job.feed([retraction])
        job.run_for(2.0)
        after = distances(job.query_and_wait())
        remaining = [e for e in EDGES if e != ("b", "e")]
        assert after == reference(remaining)
        assert after["e"] == 4.0  # now via s->a->c->d->e

    def test_weighted_edges(self):
        weighted = [("s", "a", 5.0), ("s", "b", 1.0), ("b", "a", 1.0),
                    ("a", "c", 1.0)]
        job = make_job(edges=weighted)
        job.run_for(2.0)
        result = job.query_and_wait()
        assert distances(result) == {"s": 0.0, "b": 1.0, "a": 2.0, "c": 3.0}

    def test_main_loop_approximation_tracks_inputs(self):
        """The main loop's in-memory distances converge to the truth even
        without any query (the approximation of paper §3.3)."""
        job = make_job()
        job.run_for(5.0)
        approx = {vid: value.distance
                  for vid, value in job.main_values().items()
                  if not math.isinf(value.distance)}
        assert approx == reference()


class TestLoopMetrics:
    def test_synchronous_loop_sends_no_prepares(self):
        """Paper Table 2: with B=1 the execution is fully driven by
        termination notices and no PREPARE messages are needed."""
        job = make_job(delay_bound=1)
        job.run_for(2.0)
        job.query_and_wait()
        assert job.total_prepares == 0

    def test_async_loop_sends_prepares(self):
        job = make_job(delay_bound=65536)
        job.run_for(2.0)
        job.query_and_wait()
        assert job.total_prepares > 0

    def test_branch_latency_positive_and_recorded(self):
        job = make_job()
        job.run_for(2.0)
        result = job.query_and_wait()
        assert result.latency > 0
        record = job.branch_record(result.query_id)
        assert record.done
        assert record.converged_at is not None

    def test_iteration_times_recorded_for_branch(self):
        # Batch mode: the main loop only accumulates inputs, so the branch
        # computes everything from scratch and needs several iterations.
        job = make_job(delay_bound=1, main_loop_mode="batch",
                       merge_policy="always")
        job.run_for(2.0)
        result = job.query_and_wait(full_activation=True)
        assert distances(result) == reference()
        times = job.branch_iteration_times(result.query_id)
        assert len(times) >= 3  # chain s->...->f needs multiple rounds
        iterations = [i for i, _t in times]
        assert iterations == sorted(iterations)

    def test_queries_do_not_disturb_main_loop(self):
        job = make_job()
        job.run_for(2.0)
        first = job.query_and_wait()
        second = job.query_and_wait()
        assert distances(first) == distances(second)
