"""Unit + property tests for the turnstile stream model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.streams import (ADD_EDGE, REMOVE_EDGE, StreamTuple,
                           TurnstileState, prefix_at)


def tup(t, payload, weight=1, kind=ADD_EDGE):
    return StreamTuple(t, kind, payload, weight)


class TestTurnstileState:
    def test_insert_then_delete_cancels(self):
        state = TurnstileState()
        state.apply(tup(1.0, ("a", "b")))
        state.apply(tup(2.0, ("a", "b"), weight=-1))
        assert state.multiplicity(ADD_EDGE, ("a", "b")) == 0
        assert len(state) == 0

    def test_multiplicities_accumulate(self):
        state = TurnstileState()
        for t in (1.0, 2.0, 3.0):
            state.apply(tup(t, "x"))
        assert state.multiplicity(ADD_EDGE, "x") == 3

    def test_delete_before_insert_allowed(self):
        # At-least-once delivery can reorder; algebra must stay commutative.
        state = TurnstileState()
        state.apply(tup(1.0, "x", weight=-1))
        assert state.multiplicity(ADD_EDGE, "x") == -1
        state.apply(tup(2.0, "x"))
        assert state.multiplicity(ADD_EDGE, "x") == 0

    def test_items_filter_by_kind(self):
        state = TurnstileState()
        state.apply(tup(1.0, "e", kind=ADD_EDGE))
        state.apply(tup(1.0, "r", kind=REMOVE_EDGE))
        assert dict(state.items(ADD_EDGE)) == {"e": 1}
        assert len(dict(state.items())) == 2

    def test_tracks_last_timestamp_and_count(self):
        state = TurnstileState()
        state.apply(tup(5.0, "a"))
        state.apply(tup(2.0, "b"))
        assert state.last_timestamp == 5.0
        assert state.applied == 2


class TestPrefixAt:
    def test_only_tuples_at_or_before_instant(self):
        stream = [tup(1.0, "a"), tup(2.0, "b"), tup(3.0, "c")]
        state = prefix_at(stream, 2.0)
        assert state.multiplicity(ADD_EDGE, "a") == 1
        assert state.multiplicity(ADD_EDGE, "b") == 1
        assert state.multiplicity(ADD_EDGE, "c") == 0

    def test_empty_prefix(self):
        assert len(prefix_at([tup(1.0, "a")], 0.5)) == 0


payloads = st.integers(min_value=0, max_value=5)
tuples = st.builds(tup,
                   st.floats(min_value=0, max_value=10,
                             allow_nan=False),
                   payloads,
                   st.sampled_from([-1, 1]))


class TestTurnstileProperties:
    @given(st.lists(tuples, max_size=50))
    def test_order_independence(self, stream):
        """S[t] is a sum: applying tuples in any order gives one state."""
        forward, backward = TurnstileState(), TurnstileState()
        for item in stream:
            forward.apply(item)
        for item in reversed(stream):
            backward.apply(item)
        assert forward.counts == backward.counts

    @given(st.lists(tuples, max_size=50))
    def test_multiplicity_equals_weight_sum(self, stream):
        state = TurnstileState()
        for item in stream:
            state.apply(item)
        for payload in set(item.payload for item in stream):
            expected = sum(item.weight for item in stream
                           if item.payload == payload)
            assert state.multiplicity(ADD_EDGE, payload) == expected

    @given(st.lists(tuples, max_size=50),
           st.floats(min_value=0, max_value=10, allow_nan=False))
    def test_prefix_monotone_in_applied_count(self, stream, instant):
        early = prefix_at(stream, instant)
        everything = prefix_at(stream, float("inf"))
        assert early.applied <= everything.applied
