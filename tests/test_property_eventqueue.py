"""Property test: EventQueue pops strictly in (time, seq) order under
interleaved pushes and lazy cancellations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import EventQueue

# A program is a list of operations: ("push", time), ("cancel", index)
# where index selects one of the previously pushed events, or ("pop", _).
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"),
                  st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False, allow_infinity=False)),
        st.tuples(st.just("cancel"), st.integers(min_value=0)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    min_size=1, max_size=200)


def _live_min(queue):
    """Oracle: the (time, seq) the next pop must return, or None."""
    live = [e for e in queue._heap if not e.cancelled]
    return min(((e.time, e.seq) for e in live), default=None)


@settings(max_examples=300, deadline=None)
@given(_OPS)
def test_every_pop_returns_the_live_minimum(ops):
    queue = EventQueue()
    pushed = []
    cancelled = set()
    popped = []

    def pop_checked():
        expected = _live_min(queue)
        event = queue.pop()
        got = None if event is None else (event.time, event.seq)
        assert got == expected
        if event is not None:
            popped.append(event)
        return event

    for op, value in ops:
        if op == "push":
            pushed.append(queue.push(value, lambda: None))
        elif op == "cancel" and pushed:
            target = pushed[value % len(pushed)]
            if any(event.seq == target.seq for event in popped):
                continue  # cancelling an already-served event is moot
            target.cancel()
            cancelled.add(target.seq)
        else:
            pop_checked()
    while pop_checked() is not None:
        pass

    # No cancelled event was ever handed out, and nothing was lost.
    assert all(event.seq not in cancelled for event in popped)
    assert {event.seq for event in popped} == {
        event.seq for event in pushed if event.seq not in cancelled}
    # Cancellation is lazy but popping purges: the heap ends empty.
    assert len(queue) == 0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=100))
def test_equal_times_pop_in_push_order(times):
    queue = EventQueue()
    order = [queue.push(t, lambda: None) for t in times]
    popped = []
    while (event := queue.pop()) is not None:
        popped.append(event)
    assert [(e.time, e.seq) for e in popped] == sorted(
        (e.time, e.seq) for e in order)
