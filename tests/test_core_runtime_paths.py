"""Targeted tests for subtle runtime paths: merge policies, branch
isolation, duplicate control messages, loop identity."""

import math

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram
from repro.core import Application, TornadoConfig, TornadoJob
from repro.core.messages import MAIN_LOOP, ForkBranch
from repro.core.vertex import VertexContext, VertexProgram
from repro.streams import UniformRate, edge_stream

EDGES = [("s", "a"), ("a", "b"), ("b", "c"), ("s", "d"), ("d", "c")]


def make_job(**config_kwargs):
    config_kwargs.setdefault("n_processors", 2)
    config_kwargs.setdefault("report_interval", 0.01)
    config_kwargs.setdefault("storage_backend", "memory")
    app = Application(SSSPProgram("s"), EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(**config_kwargs))
    job.feed(edge_stream(EDGES, UniformRate(rate=1000.0)))
    return job


class TestMergePolicies:
    def test_quiescent_merge_improves_main_loop(self):
        """With no inputs during the branch run, the branch results merge
        back and appear as main-loop versions at τ+B."""
        job = make_job(merge_policy="if_quiescent", delay_bound=4)
        job.run_for(2.0)  # stream exhausted, main loop quiescent
        result = job.query_and_wait()
        record = job.branch_record(result.query_id)
        job.run_for(1.0)
        assert record.merged
        # Merged versions exist in the main loop at a high iteration.
        found = job.store.get_version(MAIN_LOOP, "c")
        assert found is not None

    def test_never_policy_skips_merge(self):
        job = make_job(merge_policy="never")
        job.run_for(2.0)
        result = job.query_and_wait()
        assert not job.branch_record(result.query_id).merged

    def test_merge_skipped_when_inputs_arrive(self):
        """if_quiescent: inputs during the branch run veto the merge."""
        job = make_job(merge_policy="if_quiescent",
                       main_loop_mode="batch")
        job.run_until(lambda: job.ingester.tuples_ingested >= 2)
        query = job.query(full_activation=True)
        # The rest of the stream keeps arriving during the branch run.
        result = job.wait_for_query(query)
        record = job.branch_record(result.query_id)
        assert not record.merged


class TestBranchIsolation:
    def test_two_branches_have_independent_results(self):
        job = make_job()
        job.run_for(2.0)
        first = job.query_and_wait()
        extra = edge_stream([("c", "e")], UniformRate(
            rate=1000.0, start=job.sim.now))
        job.feed(extra)
        job.run_for(1.0)
        second = job.query_and_wait()
        assert "e" not in first.values
        assert "e" in second.values
        # The first branch's stored results are untouched.
        refetched = job.result(first.query_id)
        assert "e" not in refetched.values

    def test_duplicate_fork_notice_ignored(self):
        job = make_job()
        job.run_for(2.0)
        result = job.query_and_wait()
        record = job.branch_record(result.query_id)
        processor = job.processors[0]
        before = dict(processor.loop_archive)
        processor.deliver(ForkBranch(record.loop, 0, -1, False), "test")
        job.run_for(0.2)
        # Re-fork of a stopped loop creates a fresh LoopState but must not
        # corrupt the archived totals of the finished branch.
        assert processor.loop_archive == before


class TestLoopIdentity:
    def test_programs_see_loop_names(self):
        seen = []

        class Spy(VertexProgram):
            def gather(self, ctx: VertexContext, source, delta):
                seen.append(ctx.get_loop())
                return False

            def scatter(self, ctx):
                pass

        class SpyRouter:
            def route(self, tup):
                yield "only", __import__(
                    "repro.core.vertex", fromlist=["Delta"]).Delta(
                        tup.kind, tup.payload)

        app = Application(Spy(), SpyRouter(), name="spy")
        job = TornadoJob(app, TornadoConfig(
            n_processors=1, storage_backend="memory",
            report_interval=0.01))
        job.feed(edge_stream([("x", "y")], UniformRate(rate=100.0)))
        job.run_for(1.0)
        assert MAIN_LOOP in seen

    def test_branch_loop_counters_archived_after_stop(self):
        job = make_job()
        job.run_for(2.0)
        result = job.query_and_wait(full_activation=True)
        record = job.branch_record(result.query_id)
        job.run_for(0.5)
        totals = job.loop_totals(record.loop)
        assert totals["commits"] > 0
        # Loop state itself is gone from every processor.
        assert all(record.loop not in p.loops for p in job.processors)


class TestStoreHousekeeping:
    def test_truncation_keeps_queries_consistent(self):
        job = make_job()
        job.run_for(2.0)
        job.query_and_wait()
        frontier = job.main_frontier()
        dropped = job.store.truncate_before(MAIN_LOOP, frontier - 1)
        result = job.query_and_wait()
        distances = {vid: v.distance for vid, v in result.values.items()
                     if not math.isinf(v.distance)}
        assert distances["c"] == 2.0  # s -> d -> c
        assert dropped >= 0
