"""Sanity tests for the bench workload builders (construction only)."""

import pytest

from repro.bench.workloads import (MEDIUM, SMALL, Scale, kmeans_bundle,
                                   logreg_bundle, pagerank_bundle,
                                   sssp_bundle, svm_bundle)
from repro.streams.model import REMOVE_EDGE


class TestScales:
    def test_small_and_medium_ordering(self):
        assert MEDIUM.n_edges > SMALL.n_edges
        assert MEDIUM.n_instances > SMALL.n_instances

    def test_scale_is_frozen(self):
        with pytest.raises(Exception):
            SMALL.n_edges = 1


class TestBuilders:
    def test_sssp_bundle_shape(self):
        bundle = sssp_bundle(Scale(n_vertices=50, n_edges=200))
        assert bundle.name == "sssp"
        assert len(bundle.stream) >= 200
        assert bundle.extras["source"] == 0
        assert bundle.job.config.storage_backend == "memory"

    def test_sssp_bundle_deletions(self):
        bundle = sssp_bundle(Scale(n_vertices=50, n_edges=200),
                             delete_fraction=0.1)
        removes = [t for t in bundle.stream if t.kind == REMOVE_EDGE]
        assert removes

    def test_pagerank_bundle_config_overrides(self):
        bundle = pagerank_bundle(Scale(n_vertices=50, n_edges=200),
                                 delay_bound=1, n_processors=2)
        assert bundle.job.config.delay_bound == 1
        assert len(bundle.job.processors) == 2

    def test_kmeans_bundle_has_initial_centroids(self):
        scale = Scale(n_points=40, k=2, dim=3)
        bundle = kmeans_bundle(scale)
        assert len(bundle.extras["initial"]) == 2
        assert len(bundle.stream) == 40

    def test_svm_bundle_instances_match_scale(self):
        scale = Scale(n_instances=60, dim=5)
        bundle = svm_bundle(scale)
        assert len(bundle.extras["instances"]) == 60
        assert len(bundle.extras["true_w"]) == 5

    def test_logreg_bundle_dimensionality(self):
        scale = Scale(n_instances=30, dim=4)
        bundle = logreg_bundle(scale)
        assert len(bundle.extras["true_w"]) == 32  # dim * 8

    def test_bundles_use_independent_jobs(self):
        a = sssp_bundle(Scale(n_vertices=40, n_edges=100))
        b = sssp_bundle(Scale(n_vertices=40, n_edges=100))
        assert a.job is not b.job
        assert a.job.sim is not b.job.sim
