"""Unit tests for the algebra layer, no simulator: drive the generic
program through a bare VertexContext."""

import math

from repro.core.dsl import (min_label, reachability, shortest_paths,
                            widest_path)
from repro.core.vertex import Delta, VertexContext, VertexState
from repro.streams.model import ADD_EDGE, REMOVE_EDGE


def make_vertex(program, vertex_id):
    state = VertexState(vertex_id)
    ctx = VertexContext(state, "main", 0)
    program.init(ctx)
    return ctx


class TestShortestPathsAlgebra:
    def test_root_combines_to_zero(self):
        ctx = make_vertex(shortest_paths("s"), "s")
        assert ctx.value.value == 0.0

    def test_min_over_offers(self):
        program = shortest_paths("s")
        ctx = make_vertex(program, "x")
        assert program.gather(ctx, "a", 5.0)
        assert program.gather(ctx, "b", 2.0)
        assert not program.gather(ctx, "c", 3.0)
        assert ctx.value.value == 2.0

    def test_bottom_offer_retracts_slot(self):
        program = shortest_paths("s")
        ctx = make_vertex(program, "x")
        program.gather(ctx, "a", 2.0)
        assert program.gather(ctx, "a", math.inf)
        assert math.isinf(ctx.value.value)

    def test_max_distance_cap(self):
        program = shortest_paths("s", max_distance=10.0)
        ctx = make_vertex(program, "x")
        program.gather(ctx, "a", 50.0)
        assert math.isinf(ctx.value.value)

    def test_scatter_extends_with_weight(self):
        program = shortest_paths("s")
        ctx = make_vertex(program, "s")
        program.gather(ctx, None, Delta(ADD_EDGE, ("s", "t", 3.0)))
        program.scatter(ctx)
        assert ctx.take_emitted() == {"t": 3.0}

    def test_removed_target_gets_bottom(self):
        program = shortest_paths("s")
        ctx = make_vertex(program, "s")
        program.gather(ctx, None, Delta(ADD_EDGE, ("s", "t", 3.0)))
        program.gather(ctx, None, Delta(REMOVE_EDGE, ("s", "t", 3.0)))
        program.scatter(ctx)
        assert math.isinf(ctx.take_emitted()["t"])


class TestOtherAlgebras:
    def test_reachability_or(self):
        program = reachability("s")
        ctx = make_vertex(program, "x")
        assert not ctx.value.value
        assert program.gather(ctx, "a", True)
        assert ctx.value.value is True
        assert program.gather(ctx, "a", False)  # retraction (bottom)
        assert ctx.value.value is False

    def test_widest_path_max_min(self):
        program = widest_path("s")
        ctx = make_vertex(program, "x")
        program.gather(ctx, "a", 3.0)
        program.gather(ctx, "b", 7.0)
        assert ctx.value.value == 7.0
        program.gather(ctx, None, Delta(ADD_EDGE, ("x", "y", 5.0)))
        program.scatter(ctx)
        assert ctx.take_emitted()["y"] == 5.0  # min(7, 5)

    def test_min_label_includes_own_id(self):
        program = min_label()
        ctx = make_vertex(program, 4)
        assert ctx.value.value == 4
        assert program.gather(ctx, 9, 9) is False
        assert program.gather(ctx, 2, 2)
        assert ctx.value.value == 2

    def test_snapshot_is_independent(self):
        program = shortest_paths("s")
        ctx = make_vertex(program, "x")
        program.gather(ctx, "a", 4.0)
        snapshot = program.snapshot_value(ctx.value)
        program.gather(ctx, "a", 1.0)
        assert snapshot.value == 4.0
        assert snapshot.slots == {"a": 4.0}

    def test_unreachable_vertex_announces_nothing_on_new_edge(self):
        program = shortest_paths("s")
        ctx = make_vertex(program, "x")  # at bottom
        changed = program.gather(ctx, None,
                                 Delta(ADD_EDGE, ("x", "y", 1.0)))
        assert not changed
