"""Unit tests for failure injection and random streams."""

import pytest

from repro.errors import SimulationError
from repro.simulator import FailureInjector, RandomStreams, Simulator
from tests.test_simulator_actors import Recorder


class TestFailureInjector:
    def test_kill_and_recover_at_times(self):
        sim = Simulator()
        actor = Recorder(sim, "w", cost=0.0)
        injector = FailureInjector(sim)
        injector.kill_at(5.0, "w", recover_after=3.0)
        sim.schedule(6.0, actor.deliver, "during", "x")
        sim.schedule(9.0, actor.deliver, "after", "x")
        sim.run()
        assert [m for _t, m, _s in actor.seen] == ["after"]
        record = injector.log.records[0]
        assert record.failed_at == 5.0
        assert record.recovered_at == 8.0

    def test_kill_in_past_rejected(self):
        sim = Simulator()
        Recorder(sim, "w")
        injector = FailureInjector(sim)
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            injector.kill_at(1.0, "w")

    def test_kill_now(self):
        sim = Simulator()
        actor = Recorder(sim, "w")
        FailureInjector(sim).kill_now("w")
        sim.run()
        assert actor.down


class TestRandomStreams:
    def test_same_name_same_draws(self):
        streams = RandomStreams(seed=11)
        a = streams.stream("x").random(5)
        b = streams.stream("x").random(5)
        assert list(a) == list(b)

    def test_different_names_differ(self):
        streams = RandomStreams(seed=11)
        a = streams.stream("x").random(5)
        b = streams.stream("y").random(5)
        assert list(a) != list(b)

    def test_spawn_children_independent(self):
        streams = RandomStreams(seed=11)
        child_a = streams.spawn("node-a").stream("noise").random(3)
        child_b = streams.spawn("node-b").stream("noise").random(3)
        assert list(child_a) != list(child_b)

    def test_spawn_deterministic(self):
        a = RandomStreams(seed=5).spawn("n").stream("s").random(3)
        b = RandomStreams(seed=5).spawn("n").stream("s").random(3)
        assert list(a) == list(b)
