"""Unit tests for failure injection and random streams."""

import pytest

from repro.errors import SimulationError
from repro.simulator import FailureInjector, RandomStreams, Simulator
from tests.test_simulator_actors import Recorder


class TestFailureInjector:
    def test_kill_and_recover_at_times(self):
        sim = Simulator()
        actor = Recorder(sim, "w", cost=0.0)
        injector = FailureInjector(sim)
        injector.kill_at(5.0, "w", recover_after=3.0)
        sim.schedule(6.0, actor.deliver, "during", "x")
        sim.schedule(9.0, actor.deliver, "after", "x")
        sim.run()
        assert [m for _t, m, _s in actor.seen] == ["after"]
        record = injector.log.records[0]
        assert record.failed_at == 5.0
        assert record.recovered_at == 8.0

    def test_kill_in_past_rejected(self):
        sim = Simulator()
        Recorder(sim, "w")
        injector = FailureInjector(sim)
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            injector.kill_at(1.0, "w")

    def test_kill_now(self):
        sim = Simulator()
        actor = Recorder(sim, "w")
        FailureInjector(sim).kill_now("w")
        sim.run()
        assert actor.down


class TestRandomStreams:
    def test_same_name_same_draws(self):
        streams = RandomStreams(seed=11)
        a = streams.stream("x").random(5)
        b = streams.stream("x").random(5)
        assert list(a) == list(b)

    def test_different_names_differ(self):
        streams = RandomStreams(seed=11)
        a = streams.stream("x").random(5)
        b = streams.stream("y").random(5)
        assert list(a) != list(b)

    def test_spawn_children_independent(self):
        streams = RandomStreams(seed=11)
        child_a = streams.spawn("node-a").stream("noise").random(3)
        child_b = streams.spawn("node-b").stream("noise").random(3)
        assert list(child_a) != list(child_b)

    def test_spawn_deterministic(self):
        a = RandomStreams(seed=5).spawn("n").stream("s").random(3)
        b = RandomStreams(seed=5).spawn("n").stream("s").random(3)
        assert list(a) == list(b)


class TestScheduleTimeValidation:
    """Every *_at method validates its target when the fault is scheduled,
    not when it fires (the chaos campaigns depend on failing fast here)."""

    def test_kill_at_unknown_actor_rejected(self):
        sim = Simulator()
        Recorder(sim, "worker")
        injector = FailureInjector(sim)
        with pytest.raises(SimulationError, match="unknown actor 'wroker'"):
            injector.kill_at(1.0, "wroker")
        # Nothing was scheduled and nothing was logged.
        assert injector.log.records == []
        assert sim.run() == 0.0

    def test_kill_at_error_lists_registered_actors(self):
        sim = Simulator()
        Recorder(sim, "a")
        Recorder(sim, "b")
        with pytest.raises(SimulationError, match="registered: a, b"):
            FailureInjector(sim).kill_at(1.0, "c")

    def test_partition_at_unknown_endpoint_rejected(self):
        from repro.simulator import Network
        sim = Simulator()
        network = Network(sim)
        Recorder(sim, "a")
        injector = FailureInjector(sim, network=network)
        with pytest.raises(SimulationError, match="unknown actor"):
            injector.partition_at(1.0, "a", "ghost")

    def test_partition_needs_network(self):
        sim = Simulator()
        Recorder(sim, "a")
        Recorder(sim, "b")
        with pytest.raises(SimulationError, match="network"):
            FailureInjector(sim).partition_at(1.0, "a", "b")

    def test_delay_spike_one_sided_link_rejected(self):
        from repro.simulator import Network
        sim = Simulator()
        network = Network(sim)
        Recorder(sim, "a")
        injector = FailureInjector(sim, network=network)
        with pytest.raises(SimulationError, match="both src and dst"):
            injector.delay_spike_at(1.0, 0.05, 1.0, src="a")


class TestNetworkFaults:
    def make(self):
        from repro.simulator import Network
        sim = Simulator()
        network = Network(sim, latency=0.001)
        a = Recorder(sim, "a", cost=0.0)
        b = Recorder(sim, "b", cost=0.0)
        network.colocate("a", "node0")
        network.colocate("b", "node1")
        injector = FailureInjector(sim, network=network)
        return sim, network, injector, a, b

    def test_partition_blocks_then_heals(self):
        sim, network, injector, _a, b = self.make()
        injector.partition_at(1.0, "a", "b", heal_after=2.0)
        sim.schedule(1.5, network.send, "a", "b", "lost")
        sim.schedule(3.5, network.send, "a", "b", "delivered")
        sim.run()
        assert [m for _t, m, _s in b.seen] == ["delivered"]
        record = injector.log.records[0]
        assert record.kind == "partition"
        assert record.recovered_at == 3.0

    def test_delay_spike_adds_latency_then_heals(self):
        sim, network, injector, _a, b = self.make()
        injector.delay_spike_at(1.0, 0.5, duration=1.0)
        sim.schedule(1.2, network.send, "a", "b", "slow")
        sim.schedule(3.0, network.send, "a", "b", "fast")
        sim.run()
        times = {m: t for t, m, _s in b.seen}
        assert times["slow"] == pytest.approx(1.2 + 0.001 + 0.5)
        assert times["fast"] == pytest.approx(3.0 + 0.001)

    def test_link_delay_spike_only_hits_that_link(self):
        sim, network, injector, a, b = self.make()
        injector.delay_spike_at(1.0, 0.5, duration=5.0, src="a", dst="b")
        sim.schedule(1.2, network.send, "a", "b", "spiked")
        sim.schedule(1.2, network.send, "b", "a", "clean")
        sim.run()
        assert b.seen[0][0] == pytest.approx(1.2 + 0.001 + 0.5)
        assert a.seen[0][0] == pytest.approx(1.2 + 0.001)

    def test_delay_spikes_stack_additively(self):
        sim, network, injector, _a, b = self.make()
        injector.delay_spike_at(1.0, 0.2, duration=2.0)
        injector.delay_spike_at(1.0, 0.3, duration=2.0)
        sim.schedule(1.5, network.send, "a", "b", "both")
        sim.schedule(4.0, network.send, "a", "b", "none")
        sim.run()
        assert b.seen[0][0] == pytest.approx(1.5 + 0.001 + 0.5)
        assert b.seen[1][0] == pytest.approx(4.0 + 0.001)


class TestDiskFaults:
    def make_disk(self):
        from repro.simulator import SimulatedDisk
        sim = Simulator()
        disk = SimulatedDisk(sim, "d", seek_cost=0.0, record_cost=0.01)
        return sim, disk

    def test_disk_stall_defers_completions(self):
        sim, disk = self.make_disk()
        injector = FailureInjector(sim)
        injector.disk_stall_at(1.0, disk, duration=4.0)
        done = []
        sim.schedule(2.0, disk.write, 10, done.append, "w")
        sim.run()
        # The write issued at t=2 cannot start before the stall ends at 5.
        assert sim.now == pytest.approx(5.0 + 0.1)
        assert done == ["w"]
        assert injector.log.records[0].kind == "disk-stall"
        assert injector.log.records[0].recovered_at == 5.0

    def test_disk_slowdown_scales_duration_then_heals(self):
        sim, disk = self.make_disk()
        injector = FailureInjector(sim)
        injector.disk_slowdown_at(1.0, disk, factor=10.0, duration=2.0)
        slow = []
        fast = []
        sim.schedule(1.0, disk.write, 10, slow.append, None)
        sim.schedule(5.0, disk.write, 10, fast.append, None)
        sim.run()
        assert slow == [None] and fast == [None]
        assert disk.slow_factor == 1.0
        # 10 records at 0.01 each: 1.0s under 10x slowdown, 0.1s healthy.
        assert sim.now == pytest.approx(5.0 + 0.1)

    def test_disk_slowdown_rejects_nonpositive_factor(self):
        sim, disk = self.make_disk()
        with pytest.raises(SimulationError, match="factor"):
            FailureInjector(sim).disk_slowdown_at(1.0, disk, factor=0.0,
                                                  duration=1.0)
