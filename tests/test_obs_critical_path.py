"""Property-based tests for the SnailTrail-style critical-path
extractor, plus a planted-bottleneck fixture over a real traced run.

The properties pin the extractor's structural invariants over arbitrary
traces: per-window path weight never exceeds the window span, the walk
is a pure function of the trace (same events ⇒ identical report, also
across a dump/parse round trip), and every window is anchored exactly at
its iteration's ``progress.terminated`` boundary.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import Scale, sssp_bundle
from repro.obs import (extract_critical_path, parse_dump, TraceRecorder)

PHASE_NAMES = ("update", "prepare", "ack", "commit")


@st.composite
def traces(draw):
    """An arbitrary flight-recorder event list: protocol phases and
    ``net.send`` hops on up to three actors, with ``progress.terminated``
    anchors for loop ``main`` sprinkled in."""
    n_actors = draw(st.integers(min_value=1, max_value=3))
    actors = [f"p{index}" for index in range(n_actors)]
    n_events = draw(st.integers(min_value=2, max_value=40))
    recorder = TraceRecorder()
    time = 0.0
    iteration = 0
    for _ in range(n_events):
        time += draw(st.integers(min_value=1, max_value=10)) / 10.0
        kind = draw(st.sampled_from(("phase", "phase", "send", "anchor")))
        actor = draw(st.sampled_from(actors))
        if kind == "send" and n_actors > 1:
            dst = draw(st.sampled_from(
                [other for other in actors if other != actor]))
            eta = time + draw(st.integers(min_value=1, max_value=5)) / 10.0
            recorder.record(time, "net", "send", actor=actor, dst=dst,
                            eta=eta)
        elif kind == "anchor":
            recorder.record(time, "progress", "terminated",
                            actor="master", loop="main",
                            iteration=iteration)
            iteration += 1
        else:
            recorder.record(time, "protocol",
                            draw(st.sampled_from(PHASE_NAMES)),
                            actor=actor, loop="main",
                            iteration=iteration)
    return recorder


class TestPathProperties:
    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_weight_never_exceeds_span(self, recorder):
        report = extract_critical_path(recorder)
        for window in report.windows:
            assert window.weight <= window.span + 1e-9

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_extraction_is_deterministic(self, recorder):
        events = recorder.events
        assert (extract_critical_path(events)
                == extract_critical_path(events))

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_dump_parse_round_trip_gives_identical_report(self, recorder):
        """The report is a pure function of the *canonical* trace: a
        dump/parse round trip (string-typed fields and all) must not
        change a single segment."""
        direct = extract_critical_path(recorder)
        replayed = extract_critical_path(parse_dump(recorder.dump()))
        assert direct == replayed

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_windows_anchor_at_iteration_boundaries(self, recorder):
        """Window k ends exactly at its ``progress.terminated`` event and
        starts where window k-1 ended (the first starts at the trace
        head); every segment lies inside its window."""
        anchors = [event for event in recorder
                   if event.category == "progress"
                   and event.name == "terminated"]
        report = extract_critical_path(recorder)
        assert len(report.windows) == len(anchors)
        previous_end = min((event.time for event in recorder),
                           default=0.0)
        for window, anchor in zip(report.windows, anchors):
            assert window.end == anchor.time
            assert window.iteration == anchor.field("iteration")
            assert window.start == previous_end
            previous_end = window.end
            for segment in window.segments:
                assert window.start <= segment.start
                assert segment.end <= window.end
                assert segment.duration > 0

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_scores_are_normalised_fractions(self, recorder):
        report = extract_critical_path(recorder)
        for scores in (report.phase_scores(), report.processor_scores(),
                       report.link_scores()):
            assert all(0.0 <= score <= 1.0 + 1e-9
                       for score in scores.values())
        combined = (sum(report.phase_scores().values())
                    + sum(report.link_scores().values()))
        if report.total_weight > 0:
            # Phase + link segments partition the path exactly.
            assert abs(combined - 1.0) < 1e-6


class TestPlantedBottleneck:
    """End to end: a delay spike planted on one processor link must rank
    first in the extracted link criticality, reproducibly."""

    LINK = ("proc-2", "proc-1")

    def run_once(self):
        bundle = sssp_bundle(
            Scale(n_vertices=60, n_edges=240, stream_rate=100_000.0),
            n_processors=4, n_nodes=4, trace_enabled=True,
            trace_links=True, trace_capacity=500_000)
        job = bundle.job
        job.network.add_delay(5e-3, *self.LINK)
        job.feed(bundle.stream)
        total = len(bundle.stream)
        job.run_until(lambda: job.ingester.tuples_ingested >= total)
        job.run_until(job.quiescent, max_events=50_000_000)
        return job.trace.digest(), extract_critical_path(job.trace)

    def test_planted_link_ranks_first_and_reproducibly(self):
        digest_a, report_a = self.run_once()
        digest_b, report_b = self.run_once()
        assert report_a.top_link() == self.LINK
        # The slow link dominates every other link by a wide margin.
        scores = report_a.link_scores()
        others = [score for link, score in scores.items()
                  if link != self.LINK]
        assert scores[self.LINK] > 2 * max(others, default=0.0)
        # Same seed ⇒ byte-identical trace ⇒ identical ranking.
        assert digest_a == digest_b
        assert report_a == report_b

    def test_report_json_shape(self):
        _digest, report = self.run_once()
        import json

        payload = json.loads(report.to_json())
        assert payload["loop"] == "main"
        assert payload["windows"]
        assert all(w["weight"] <= w["span"] + 1e-9
                   for w in payload["windows"])
        assert f"{self.LINK[0]}->{self.LINK[1]}" in payload["link_scores"]
