"""Satellite bugfix audit: every protocol message must survive pickling.

The live backend ships the frozen-dataclass vocabulary of
``core/messages.py`` (plus the ``live/wire.py`` control frames) across
OS process boundaries, so *every* message class — and every payload a
message can smuggle (vertex values, session batches, nested envelopes,
stream tuples) — must pickle and unpickle back to an equal object.

The suite is self-auditing: it introspects both modules for dataclasses
and fails if a class has no exemplar below, so adding a message without
extending the vocabulary here is a test failure, not a silent gap in
live coverage.
"""

import dataclasses
import inspect
import pickle

import pytest

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.pagerank import PageRankValue
from repro.algorithms.sssp import SSSPProgram, SSSPValue
from repro.core import Application, TornadoConfig
from repro.core import messages as messages_mod
from repro.core.lamport import Timestamp
from repro.core.messages import (Acknowledge, BranchDone, ColumnBatch,
                                 Envelope, ForkBranch, IterationTerminated,
                                 MergeBranch, MigrateDone, MigrateState,
                                 PauseIngest, PeerRecovered, Prepare,
                                 ProcessorRecovered, ProgressReport,
                                 QueryRejected, QueryRequest, RecoverLoops,
                                 ReleasedUpdate, Repartition, ResumeIngest,
                                 SessionBatch, StopLoop, TransportAck,
                                 Unreliable, VertexInput, VertexUpdate)
from repro.live import wire as wire_mod
from repro.live.wire import (Collect, FetchStore, FinalReport, Shutdown,
                             StoreLoad, StoreWrite, Wire, WorkerError,
                             WorkerSpec)
from repro.streams.model import ADD_EDGE, StreamTuple

UPDATE = VertexUpdate("main", "u", "v", 4,
                      SSSPValue(2.0, {"s": 2.0}, {"v": 1.0}, {"w"}))
PREPARE = Prepare("main", "u", "v", Timestamp(17, "proc-1"))
ACK = Acknowledge("main", "v", "u", 4)

#: One realistic exemplar per message class (order matches the modules).
VOCABULARY = [
    VertexInput("main", "u", ADD_EDGE, ("u", "v", 1.5), weight=1),
    UPDATE,
    SessionBatch("main", (UPDATE, PREPARE, ACK)),
    # Columnar wire frame: a column run (4 parallel tuples), a scalar
    # control message at its original position, then a second run and a
    # fallback per-vertex update — the full segment grammar.
    ColumnBatch("main", ((("u", "w"), ("v", "x"), (4, 4), (2.5, 3.5)),
                         PREPARE,
                         (("u",), ("y",), (5,), (1.0,)),
                         UPDATE)),
    ReleasedUpdate(UPDATE),
    PREPARE,
    ACK,
    ProgressReport("main", "proc-0", 3,
                   {0: (1, 2, 2), 1: (4, 5, 5)}, float("inf"),
                   inputs_gathered=7, busy_time=0.25,
                   hot_vertices=("u", "v"), unacked=0, buffered=0,
                   vertex_load=(("u", 3.0),)),
    IterationTerminated("main", 5),
    ForkBranch("branch-1", 6, 2, full_activation=True),
    StopLoop("branch-1"),
    MergeBranch("branch-1", 8),
    QueryRequest(1, 0.5, full_activation=False),
    QueryRejected(2, 0.6, "admission: too many branches"),
    BranchDone("branch-1", 1, 9, 0.5),
    PauseIngest(),
    ResumeIngest(),
    Repartition(2, (("u", "proc-0", "proc-1"),)),
    MigrateState(2, (("u", True), ("v", False))),
    MigrateDone(2, ("u", "v")),
    ProcessorRecovered("proc-1"),
    PeerRecovered("proc-1"),
    RecoverLoops((("main", 5), ("branch-1", 2))),
    Envelope(41, SessionBatch("main", (UPDATE,))),
    TransportAck(41),
    Unreliable(ProgressReport("main", "proc-0", 1, {}, float("inf"))),
]

WIRE_VOCABULARY = [
    Wire("proc-0", "proc-1", 99, Envelope(7, UPDATE)),
    StoreWrite("proc-0", 3, (("main", "u", 4, ("x", ("v",))),),
               (("main", 4),)),
    FetchStore("proc-1"),
    StoreLoad((("main", "u", 4, ("x", ("v",))),)),
    Collect(),
    FinalReport("proc-0", 1, (("u", SSSPValue(0.0, {}, {}, set())),),
                (("main", (3, 2, 2, 0, 5)),),
                (("protocol.commit:main", 3),), 120, 0, 0),
    Shutdown(),
    WorkerError("proc-2", 0, "Traceback (most recent call last): ..."),
    WorkerSpec("proc-0", 1,
               Application(SSSPProgram("s"), EdgeStreamRouter(),
                           name="sssp"),
               TornadoConfig(backend="live", n_processors=2),
               ("proc-0", "proc-1"), True),
]

SMUGGLED_PAYLOADS = [
    SSSPValue(3.0, {"a": 3.0}, {"b": 1.0}, {"c"}),
    PageRankValue(rank=0.85, contribs={"a": 0.4}, retracted={"b"}),
    StreamTuple(0.001, ADD_EDGE, ("u", "v", 1.0), weight=1),
    Timestamp(5, "proc-0"),
]


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def module_dataclasses(module):
    return {name for name, cls in inspect.getmembers(module, inspect.isclass)
            if dataclasses.is_dataclass(cls)
            and cls.__module__ == module.__name__}


class TestVocabularyCoverage:
    def test_every_message_dataclass_has_an_exemplar(self):
        covered = {type(m).__name__ for m in VOCABULARY}
        declared = module_dataclasses(messages_mod)
        assert declared <= covered, \
            f"messages without a pickle exemplar: {declared - covered}"

    def test_every_wire_dataclass_has_an_exemplar(self):
        covered = {type(m).__name__ for m in WIRE_VOCABULARY}
        declared = module_dataclasses(wire_mod)
        assert declared <= covered, \
            f"wire frames without a pickle exemplar: {declared - covered}"


class TestPickleRoundTrip:
    @pytest.mark.parametrize("message", VOCABULARY,
                             ids=lambda m: type(m).__name__)
    def test_message_roundtrips(self, message):
        assert roundtrip(message) == message

    @pytest.mark.parametrize("frame", WIRE_VOCABULARY,
                             ids=lambda m: type(m).__name__)
    def test_wire_frame_roundtrips(self, frame):
        restored = roundtrip(frame)
        if isinstance(frame, WorkerSpec):
            # Application/config carry callables; identity equality is
            # not preserved, structural fidelity is what matters.
            assert restored.name == frame.name
            assert restored.incarnation == frame.incarnation
            assert restored.worker_names == frame.worker_names
            assert restored.recovering == frame.recovering
            assert restored.config == frame.config
            assert restored.app.name == frame.app.name
            assert type(restored.app.program) is type(frame.app.program)
        else:
            assert restored == frame

    @pytest.mark.parametrize("payload", SMUGGLED_PAYLOADS,
                             ids=lambda p: type(p).__name__)
    def test_smuggled_payload_roundtrips(self, payload):
        assert roundtrip(payload) == payload

    def test_nested_envelope_batch_deep_equality(self):
        batch = Envelope(12, SessionBatch("main", (UPDATE, PREPARE, ACK)))
        restored = roundtrip(batch)
        assert restored.payload.payloads[0].data == UPDATE.data
        assert restored.payload.payloads[1].update_time == \
            PREPARE.update_time
