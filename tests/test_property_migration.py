"""Property-based tests for live-migration ownership safety.

A miniature model of the processors' fence semantics runs against the
*real* :class:`PartitionScheme` (epochs, in-flight marks, override
eviction) under adversarial interleavings of batch migrations and
gathers.  The claims: a gather is only ever applied by the unique holder
of the vertex's live state (never by a stale owner that already released
it, never prematurely materialised at a target while the source still
holds it), every gather is applied exactly once, and the system drains —
under any delivery order.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import PartitionScheme


class ModelProcessor:
    """The migration-relevant slice of a processor: which vertices it
    holds live state for, its fences, and its adoption buffer."""

    def __init__(self, name):
        self.name = name
        self.holds = set()
        self.outbound = {}   # vertex -> target (fenced, not yet released)
        self.inbound = {}    # vertex -> source (buffering until handoff)
        self.buffer = {}     # vertex -> [gather ids]
        self.epoch = 0


class MigrationModel:
    """Drives gathers and batch migrations through a random-order
    message queue, checking ownership safety at every application."""

    def __init__(self, n_processors, n_vertices, seed):
        self.rng = random.Random(seed)
        names = [f"p{i}" for i in range(n_processors)]
        self.scheme = PartitionScheme(names)
        self.procs = {name: ModelProcessor(name) for name in names}
        self.vertices = list(range(n_vertices))
        self.queue = []
        self.applied = {}        # gather id -> processor that applied it
        self.next_gather = 0
        self.round_in_flight = False
        self.released = set()    # (vertex, epoch) handoffs released

    # ------------------------------------------------------------ checks
    def holders(self, vertex):
        return [p for p in self.procs.values() if vertex in p.holds]

    def assert_apply_safe(self, proc, vertex, gather_id):
        holding = self.holders(vertex)
        assert holding == [proc], (
            f"gather {gather_id} applied by {proc.name} but live state "
            f"held by {[p.name for p in holding]}")
        owns = self.scheme.owner(vertex) == proc.name
        fenced = vertex in proc.outbound
        assert owns or fenced, (
            f"stale owner {proc.name} applied gather {gather_id} for "
            f"{vertex} (owner={self.scheme.owner(vertex)})")

    # ----------------------------------------------------------- actions
    def send_gather(self, vertex):
        gather_id = self.next_gather
        self.next_gather += 1
        self.queue.append(("gather", self.scheme.owner(vertex), vertex,
                           gather_id))

    def start_migration(self):
        if self.round_in_flight:
            return
        count = self.rng.randrange(1, 4)
        moves = []
        seen = set()
        for _ in range(count):
            vertex = self.rng.choice(self.vertices)
            if vertex in seen:
                continue
            seen.add(vertex)
            source = self.scheme.owner(vertex)
            targets = [n for n in self.procs if n != source]
            moves.append((vertex, source, self.rng.choice(targets)))
        if not moves:
            return
        epoch = self.scheme.reassign_batch(
            [(vertex, target) for vertex, _source, target in moves])
        self.scheme.mark_migrating(epoch, moves)
        self.round_in_flight = True
        for name in self.procs:
            self.queue.append(("repartition", name, epoch, tuple(moves)))

    # ---------------------------------------------------------- delivery
    def apply_gather(self, proc, vertex, gather_id):
        if vertex not in proc.holds:
            # Materialising from the store is only legal when no other
            # processor still runs the live copy.
            assert not self.holders(vertex), (
                f"{proc.name} materialised {vertex} while "
                f"{[p.name for p in self.holders(vertex)]} held it")
            proc.holds.add(vertex)
        self.assert_apply_safe(proc, vertex, gather_id)
        assert gather_id not in self.applied, (
            f"gather {gather_id} applied twice")
        self.applied[gather_id] = proc.name

    def deliver(self, message):
        kind = message[0]
        if kind == "gather":
            _kind, name, vertex, gather_id = message
            proc = self.procs[name]
            if vertex in proc.outbound and vertex in proc.holds:
                self.apply_gather(proc, vertex, gather_id)  # fenced
                return
            owner = self.scheme.owner(vertex)
            if owner != name:
                self.queue.append(("gather", owner, vertex, gather_id))
                return
            if vertex in proc.inbound or (
                    self.scheme.migrating_to(vertex) == name
                    and vertex not in proc.holds):
                if vertex not in proc.inbound:
                    source = self.scheme.migration_source(vertex)
                    proc.inbound[vertex] = source
                proc.buffer.setdefault(vertex, []).append(gather_id)
                return
            self.apply_gather(proc, vertex, gather_id)
        elif kind == "repartition":
            _kind, name, epoch, moves = message
            proc = self.procs[name]
            if epoch < proc.epoch:
                return
            proc.epoch = epoch
            for vertex, source, target in moves:
                if target == name and vertex not in proc.holds:
                    proc.inbound[vertex] = source
                elif source == name:
                    proc.outbound[vertex] = target
                    # The release waits for any in-flight preparation;
                    # model that window as one more queued message.
                    self.queue.append(("release", name, vertex, epoch))
        elif kind == "release":
            _kind, name, vertex, epoch = message
            proc = self.procs[name]
            target = proc.outbound.pop(vertex, None)
            if target is None:
                return
            proc.holds.discard(vertex)
            key = (vertex, epoch)
            if key not in self.released:
                self.released.add(key)
            self.queue.append(("migrate_state", target, vertex, epoch))
        elif kind == "migrate_state":
            _kind, name, vertex, epoch = message
            proc = self.procs[name]
            proc.inbound.pop(vertex, None)
            self.scheme.clear_migrating(vertex, epoch)
            held = proc.buffer.pop(vertex, [])
            if self.scheme.owner(vertex) == name:
                proc.holds.add(vertex)
                for gather_id in held:
                    self.apply_gather(proc, vertex, gather_id)
            else:
                for gather_id in held:
                    self.queue.append(("gather",
                                       self.scheme.owner(vertex),
                                       vertex, gather_id))
            if self.scheme.migrating_count() == 0:
                self.round_in_flight = False

    def step(self):
        index = self.rng.randrange(len(self.queue))
        self.deliver(self.queue.pop(index))

    def run(self, operations):
        for op in operations:
            if op == "migrate":
                self.start_migration()
            else:
                self.send_gather(op % len(self.vertices))
            # Adversarial interleaving: deliver a random prefix now.
            for _ in range(self.rng.randrange(0, 3)):
                if self.queue:
                    self.step()
        steps = 0
        while self.queue and steps < 50_000:
            steps += 1
            self.step()
        assert steps < 50_000, "migration model did not drain"


operations = st.lists(
    st.one_of(st.just("migrate"),
              st.integers(min_value=0, max_value=63)),
    min_size=1, max_size=60)

params = st.tuples(
    st.integers(min_value=2, max_value=4),       # processors
    st.integers(min_value=2, max_value=8),       # vertices
    st.integers(min_value=0, max_value=2**32),   # interleaving seed
    operations)


class TestMigrationOwnershipProperties:
    @settings(max_examples=150, deadline=None)
    @given(params)
    def test_no_gather_reaches_a_stale_owner(self, args):
        """Under any interleaving of batch migrations and gathers, every
        gather is applied exactly once, by the unique live-state holder,
        and never by a processor that already released the vertex."""
        n_procs, n_vertices, seed, ops = args
        model = MigrationModel(n_procs, n_vertices, seed)
        model.run(ops)
        gathers_sent = model.next_gather
        assert len(model.applied) == gathers_sent
        for proc in model.procs.values():
            assert not proc.outbound, f"{proc.name} left fenced vertices"
            assert not proc.inbound, f"{proc.name} left adoption entries"
            assert not proc.buffer, f"{proc.name} left buffered gathers"
            for vertex in proc.holds:
                assert model.scheme.owner(vertex) == proc.name

    @settings(max_examples=80, deadline=None)
    @given(params)
    def test_epoch_monotone_and_marks_drain(self, args):
        """The scheme's epoch only moves forward, and every in-flight
        mark is cleared once the handoffs settle."""
        n_procs, n_vertices, seed, ops = args
        model = MigrationModel(n_procs, n_vertices, seed)
        epochs = [model.scheme.epoch]

        original = model.start_migration

        def tracking():
            original()
            epochs.append(model.scheme.epoch)

        model.start_migration = tracking
        model.run(ops)
        assert epochs == sorted(epochs)
        assert model.scheme.migrating_count() == 0
