"""Integration tests for the Storm layer: topologies running on the DES,
acking/replay, supervision."""

from repro.simulator import FailureInjector, Network, Simulator
from repro.storm import (Bolt, ClusterConfig, LocalCluster, Spout,
                         TopologyBuilder)

WORDS = ["the", "quick", "fox", "the", "lazy", "dog", "the"]


class WordSpout(Spout):
    """Emits one word per tuple, replays failed message ids."""

    def __init__(self):
        self.pending = list(enumerate(WORDS))
        self.acked = []
        self.failed = []

    def open(self, ctx, collector):
        self.collector = collector

    def next_tuple(self):
        if not self.pending:
            return False
        message_id, word = self.pending.pop(0)
        self.collector.emit({"word": word, "__message_id__": message_id})
        return True

    def ack(self, message_id):
        self.acked.append(message_id)

    def fail(self, message_id):
        self.failed.append(message_id)
        self.pending.append((message_id, WORDS[message_id]))


class CountBolt(Bolt):
    counts_by_task = {}

    def prepare(self, ctx, collector):
        self.collector = collector
        self.counts = CountBolt.counts_by_task.setdefault(
            ctx.task_index, {})

    def execute(self, tup):
        word = tup["word"]
        self.counts[word] = self.counts.get(word, 0) + 1
        self.collector.ack(tup)
        return 1e-4


def build_cluster(seed=0, **config_kwargs):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=1e-3)
    config = ClusterConfig(**config_kwargs)
    cluster = LocalCluster(sim, network, config)
    return sim, cluster


class TestWordCount:
    def setup_method(self):
        CountBolt.counts_by_task = {}

    def test_counts_all_words(self):
        sim, cluster = build_cluster()
        builder = TopologyBuilder("wc")
        spout = WordSpout()
        builder.set_spout("words", lambda: spout)
        builder.set_bolt("count", CountBolt, 2).fields_grouping(
            "words", ("word",))
        cluster.submit(builder.build())
        sim.run(until=5.0)
        merged = {}
        for counts in CountBolt.counts_by_task.values():
            for word, count in counts.items():
                merged[word] = merged.get(word, 0) + count
        assert merged == {"the": 3, "quick": 1, "fox": 1, "lazy": 1, "dog": 1}

    def test_fields_grouping_keeps_word_on_one_task(self):
        sim, cluster = build_cluster()
        builder = TopologyBuilder("wc")
        builder.set_spout("words", WordSpout)
        builder.set_bolt("count", CountBolt, 2).fields_grouping(
            "words", ("word",))
        cluster.submit(builder.build())
        sim.run(until=5.0)
        tasks_with_the = [task for task, counts in
                          CountBolt.counts_by_task.items() if "the" in counts]
        assert len(tasks_with_the) == 1

    def test_acks_reach_spout(self):
        sim, cluster = build_cluster()
        builder = TopologyBuilder("wc")
        spout = WordSpout()
        builder.set_spout("words", lambda: spout)
        builder.set_bolt("count", CountBolt, 1).shuffle_grouping("words")
        cluster.submit(builder.build())
        sim.run(until=10.0)
        assert sorted(spout.acked) == list(range(len(WORDS)))
        assert cluster.acker.completed == len(WORDS)
        assert cluster.acker.pending_trees == 0

    def test_unacked_tuples_time_out_and_replay(self):
        class DroppingBolt(Bolt):
            """Never acks the first tuple it sees."""

            dropped = False

            def prepare(self, ctx, collector):
                self.collector = collector
                self.seen = []

            def execute(self, tup):
                self.seen.append(tup["word"])
                if not DroppingBolt.dropped:
                    DroppingBolt.dropped = True
                    return 1e-4  # no ack -> tree times out
                self.collector.ack(tup)
                return 1e-4

        DroppingBolt.dropped = False
        sim, cluster = build_cluster(tuple_timeout=0.5)
        builder = TopologyBuilder("wc")
        spout = WordSpout()
        builder.set_spout("words", lambda: spout)
        builder.set_bolt("count", DroppingBolt, 1).shuffle_grouping("words")
        cluster.submit(builder.build())
        sim.run(until=20.0)
        assert len(spout.failed) == 1
        # The failed message was replayed and eventually acked.
        assert sorted(spout.acked) == list(range(len(WORDS)))

    def test_metrics_aggregate_across_tasks(self):
        sim, cluster = build_cluster()
        builder = TopologyBuilder("wc")
        builder.set_spout("words", WordSpout)
        builder.set_bolt("count", CountBolt, 2).fields_grouping(
            "words", ("word",))
        cluster.submit(builder.build())
        sim.run(until=5.0)
        metrics = cluster.metrics("count")
        assert metrics.executed == len(WORDS)
        assert metrics.acked == len(WORDS)
        assert cluster.metrics("words").emitted == len(WORDS)


class TestSupervision:
    def setup_method(self):
        CountBolt.counts_by_task = {}

    def test_crashed_bolt_restarted(self):
        sim, cluster = build_cluster(tuple_timeout=0.5)
        builder = TopologyBuilder("wc")
        spout = WordSpout()
        builder.set_spout("words", lambda: spout)
        builder.set_bolt("count", CountBolt, 1).shuffle_grouping("words")
        cluster.submit(builder.build())
        cluster.enable_supervision(heartbeat=0.1, restart_delay=0.1)
        injector = FailureInjector(sim)
        task = cluster.task_name("count", 0)
        injector.kill_at(0.001, task)
        sim.run(until=30.0)
        assert not cluster.executors[task].down
        # Timed-out tuples were replayed after the restart.
        assert sorted(spout.acked) == list(range(len(WORDS)))

    def test_direct_emit_targets_specific_task(self):
        class Tagger(Bolt):
            received = {}

            def prepare(self, ctx, collector):
                Tagger.received.setdefault(ctx.task_index, [])
                self.task_index = ctx.task_index

            def execute(self, tup):
                Tagger.received[self.task_index].append(tup["word"])
                return 0.0

        class DirectSpout(Spout):
            def __init__(self):
                self.sent = False

            def open(self, ctx, collector):
                self.collector = collector

            def next_tuple(self):
                if self.sent:
                    return False
                self.sent = True
                self.collector.emit_direct(2, {"word": "only-for-2"})
                return True

        Tagger.received = {}
        sim, cluster = build_cluster()
        builder = TopologyBuilder("d")
        builder.set_spout("s", DirectSpout)
        builder.set_bolt("t", Tagger, 3).direct_grouping("s")
        cluster.submit(builder.build())
        sim.run(until=2.0)
        assert Tagger.received.get(2) == ["only-for-2"]
        assert Tagger.received.get(0, []) == []
