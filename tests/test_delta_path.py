"""Delta-path A/B tests (sender-side combiners + batched session I/O).

The delta path may reorder, merge and batch session messages, but it must
be *observably* identical to the legacy one-envelope-per-value path: the
same converged vertex states on every program — with or without a
declared combiner, under arbitrary kill/recover schedules — and
deterministic (byte-identical traces) under a fixed seed on each path.

The unit tests poke the session window directly: combiner merge
semantics, order preservation without a combiner, and the migration
boundary (a combined-but-unsent scatter must follow a consumer whose
owner flips mid-window, never be dropped).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.core import Application, TornadoConfig, TornadoJob
from repro.core.messages import MAIN_LOOP, SessionBatch, VertexUpdate
from repro.streams import UniformRate, edge_stream

NODES = list("sabcdefgh")
ACTORS = ["proc-0", "proc-1", "proc-2", TornadoJob.MASTER]

#: Fixed weighted graph for the chaos/determinism tests (reachable core
#: plus a weighted shortcut so last-wins offer replacement matters).
EDGES_W = [
    ("s", "a", 1.0), ("s", "b", 4.0), ("a", "c", 2.0), ("b", "c", 1.0),
    ("c", "d", 3.0), ("d", "e", 1.0), ("b", "e", 9.0), ("e", "f", 2.0),
    ("f", "g", 1.0), ("d", "g", 7.0), ("a", "h", 5.0), ("h", "d", 1.0),
]


class NoCombineSSSP(SSSPProgram):
    """Same algebra, no declared combiner: the session window must batch
    without merging and keep every update, in send order."""

    update_combiner = None


def make_job(edges, *, delta, combine=True, delay_bound=65536,
             trace=False, rate=1000.0):
    program = (SSSPProgram if combine else NoCombineSSSP)("s")
    app = Application(program, EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(
        n_processors=3, report_interval=0.01, retransmit_timeout=0.1,
        storage_backend="memory", delay_bound=delay_bound,
        delta_path=delta, trace_enabled=trace))
    job.feed(edge_stream(edges, UniformRate(rate=rate)))
    return job


def final_distances(job):
    return {vid: value.distance for vid, value in job.main_values().items()
            if not math.isinf(value.distance)}


def reference(edges):
    return {v: d for v, d in reference_sssp(edges, "s").items()
            if not math.isinf(d)}


def _dedupe(raw):
    """Drop self-loops and collapse repeated (u, v) pairs keeping the
    last weight — stream semantics overwrite the edge weight in place,
    while Dijkstra's adjacency list would keep (and min over) both."""
    last = {}
    for u, v, w in raw:
        if u != v:
            last[(u, v)] = float(w)
    return [("s", "a", 1.0)] + [(u, v, w) for (u, v), w in last.items()
                                if (u, v) != ("s", "a")]


weighted_graphs = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES),
              st.integers(min_value=1, max_value=9)),
    min_size=4, max_size=16,
).map(_dedupe)

kill_specs = st.lists(
    st.tuples(
        st.sampled_from(ACTORS),
        st.floats(min_value=0.01, max_value=1.2),   # kill time
        st.floats(min_value=0.05, max_value=0.8),   # downtime
    ),
    min_size=1, max_size=3,
    unique_by=lambda spec: spec[0],
)


# ------------------------------------------------------------ properties
class TestDeltaLegacyEquivalence:
    @given(edges=weighted_graphs, combine=st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_random_programs_converge_identically(self, edges, combine):
        results = {}
        for delta in (False, True):
            job = make_job(edges, delta=delta, combine=combine)
            job.run_for(5.0)
            results[delta] = final_distances(job)
        assert results[True] == results[False]
        assert results[True] == reference(edges)

    @given(specs=kill_specs, combine=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_chaos_schedules_converge_identically(self, specs, combine):
        results = {}
        for delta in (False, True):
            job = make_job(EDGES_W, delta=delta, combine=combine)
            for actor, at, downtime in specs:
                job.failures.kill_at(at, actor, recover_after=downtime)
            job.run_for(6.0)
            results[delta] = final_distances(job)
        assert results[True] == results[False]
        assert results[True] == reference(EDGES_W)


class TestDeltaDeterminism:
    def _digests(self, delta):
        job = make_job(EDGES_W, delta=delta, trace=True)
        job.failures.kill_at(0.08, "proc-1", recover_after=0.3)
        job.run_for(4.0)
        return (job.trace.digest(), final_distances(job),
                job.metrics.snapshot())

    def test_each_path_is_deterministic_under_a_fixed_seed(self):
        for delta in (False, True):
            first = self._digests(delta)
            second = self._digests(delta)
            assert first == second

    def test_delta_merges_and_batches_in_the_replay(self):
        job = make_job(EDGES_W, delta=True, delay_bound=4)
        job.run_for(4.0)
        snapshot = job.metrics.snapshot()
        assert snapshot["core.scatter_batches"] > 0
        assert snapshot["core.scatter_buffered"] > 0
        assert final_distances(job) == reference(EDGES_W)


# ------------------------------------------------------- session window
def _processor(job, name="proc-0"):
    return next(p for p in job.processors if p.name == name)


class TestSessionWindow:
    def test_combiner_merges_same_pair_to_newest_offer(self):
        job = make_job(EDGES_W, delta=True)
        proc = _processor(job)
        loop = proc.loops[MAIN_LOOP]
        proc._buffer_scatter(loop, "a", "c", 3, 7.0)
        proc._buffer_scatter(loop, "a", "c", 5, 4.0)
        entries, index = proc._session_window[MAIN_LOOP]
        assert len(entries) == 1
        kind, producer, consumer, cell = entries[0]
        assert (kind, producer, consumer) == ("update", "a", "c")
        assert cell == [5, 4.0]        # max iteration, last-wins data
        assert index[("a", "c")] is cell
        assert job.metrics.snapshot()["core.scatter_merged"] == 1

    def test_no_combiner_keeps_every_update_in_order(self):
        job = make_job(EDGES_W, delta=True, combine=False)
        proc = _processor(job)
        loop = proc.loops[MAIN_LOOP]
        proc._buffer_scatter(loop, "a", "c", 3, 7.0)
        proc._buffer_scatter(loop, "a", "c", 5, 4.0)
        entries, _index = proc._session_window[MAIN_LOOP]
        assert [entry[3] for entry in entries] == [[3, 7.0], [5, 4.0]]
        assert job.metrics.snapshot()["core.scatter_merged"] == 0

    def test_flush_batches_per_destination_preserving_order(self):
        job = make_job(EDGES_W, delta=True, combine=False)
        proc = _processor(job)
        loop = proc.loops[MAIN_LOOP]
        dst = job.partition.owner("c")
        job.partition.reassign("d", dst)  # same destination for both
        proc._buffer_scatter(loop, "a", "c", 3, 7.0)
        proc._buffer_scatter(loop, "b", "d", 3, 2.0)
        proc._flush_window()
        batches = [payload for to, payload in proc.transport._outbox.values()
                   if to == dst and isinstance(payload, SessionBatch)]
        assert len(batches) == 1
        assert [(u.producer, u.consumer) for u in batches[0].payloads] \
            == [("a", "c"), ("b", "d")]
        assert loop.sent_total == 2
        assert loop.counter(3)[1] == 2

    def test_migration_boundary_flush_follows_the_new_owner(self):
        """Satellite oracle: a combined-but-unsent scatter whose consumer
        flips owners mid-window is flushed to the *new* owner — routed at
        flush time, not buffer time — and never dropped."""
        job = make_job(EDGES_W, delta=True)
        proc = _processor(job)
        loop = proc.loops[MAIN_LOOP]
        old_owner = job.partition.owner("c")
        new_owner = next(p.name for p in job.processors
                         if p.name not in (old_owner, proc.name))
        proc._buffer_scatter(loop, "a", "c", 2, 9.0)
        proc._buffer_scatter(loop, "a", "c", 4, 6.0)   # merged in place
        job.partition.reassign("c", new_owner)
        proc._flush_window()
        sent = [(to, payload) for to, payload
                in proc.transport._outbox.values()
                if isinstance(payload, (VertexUpdate, SessionBatch))]
        assert len(sent) == 1
        to, payload = sent[0]
        assert to == new_owner
        assert isinstance(payload, VertexUpdate)
        assert (payload.producer, payload.consumer) == ("a", "c")
        assert (payload.iteration, payload.data) == (4, 6.0)
        assert loop.sent_total == 1                    # post-merge charge

    def test_window_always_drains_between_handles(self):
        job = make_job(EDGES_W, delta=True)
        job.run_for(2.0)
        for proc in job.processors:
            assert proc._session_window == {}
