"""Unit-level tests for the master, using stub processor actors."""

import math

from repro.core import TornadoConfig
from repro.core.master import Master, MasterDurableState
from repro.core.messages import (MAIN_LOOP, ForkBranch, IterationTerminated,
                                 ProcessorRecovered, ProgressReport,
                                 QueryRequest, RecoverLoops, StopLoop)
from repro.core.partition import PartitionScheme
from repro.core.transport import ReliableEndpoint
from repro.simulator import Actor, Network, Simulator
from repro.storage import CheckpointManifest


class StubProcessor(Actor):
    """Records every payload the master sends it."""

    def __init__(self, sim, name, network):
        super().__init__(sim, name)
        self.transport = ReliableEndpoint(sim, network, name)
        self.received = []

    def handle(self, message, sender):
        payload = self.transport.on_message(message, sender)
        if payload is not None:
            self.received.append(payload)
        return 0.0

    def of_type(self, kind):
        return [p for p in self.received if isinstance(p, kind)]


class StubIngester(StubProcessor):
    pass


def make_master(n_processors=2, **config_kwargs):
    config_kwargs.setdefault("master_cost", 0.0)
    sim = Simulator()
    network = Network(sim, latency=1e-4)
    names = [f"p{i}" for i in range(n_processors)]
    processors = [StubProcessor(sim, name, network) for name in names]
    ingester = StubIngester(sim, "ing", network)
    master = Master(sim, "master", TornadoConfig(**config_kwargs), network,
                    names, "ing", CheckpointManifest(),
                    MasterDurableState(), PartitionScheme(names))
    return sim, master, processors, ingester


def report(processor, seq, counters, watermark=math.inf, loop=MAIN_LOOP):
    return ProgressReport(loop=loop, processor=processor, seq=seq,
                          counters=counters, watermark=watermark)


class TestMasterTermination:
    def test_broadcasts_termination_notice(self):
        sim, master, processors, _ing = make_master()
        for index, processor in enumerate(processors):
            processor.transport.send("master", report(
                processor.name, 1, {0: (1, 0, 0)}))
        sim.run(until=2.0)
        for processor in processors:
            notices = processor.of_type(IterationTerminated)
            assert notices and notices[-1].iteration == 0

    def test_no_termination_until_all_report(self):
        sim, master, processors, _ing = make_master()
        processors[0].transport.send("master", report("p0", 1,
                                                      {0: (1, 0, 0)}))
        sim.run(until=2.0)
        assert processors[0].of_type(IterationTerminated) == []

    def test_termination_times_recorded(self):
        sim, master, processors, _ing = make_master()
        for processor in processors:
            processor.transport.send("master", report(
                processor.name, 1, {0: (1, 1, 1), 1: (1, 0, 0)}))
        sim.run(until=2.0)
        iterations = [i for i, _t in master.termination_times[MAIN_LOOP]]
        assert iterations == [0, 1]


class TestMasterQueries:
    def test_query_forks_branch_everywhere(self):
        sim, master, processors, ing = make_master()
        ing.transport.send("master", QueryRequest(1, 0.0))
        sim.run(until=2.0)
        for processor in processors:
            forks = processor.of_type(ForkBranch)
            assert len(forks) == 1
            assert forks[0].loop == "branch-1"

    def test_duplicate_query_ids_ignored(self):
        sim, master, processors, ing = make_master()
        ing.transport.send("master", QueryRequest(1, 0.0))
        ing.transport.send("master", QueryRequest(1, 0.0))
        sim.run(until=2.0)
        assert len(processors[0].of_type(ForkBranch)) == 1

    def test_branch_converges_and_stops(self):
        sim, master, processors, ing = make_master()
        ing.transport.send("master", QueryRequest(1, 0.0))
        sim.run(until=1.0)
        for processor in processors:
            processor.transport.send("master", report(
                processor.name, 10, {0: (1, 0, 0)}, loop="branch-1"))
        sim.run(until=3.0)
        for processor in processors:
            assert processor.of_type(StopLoop)
        assert master.durable.branches["branch-1"].done
        done = ing.received[-1]
        assert getattr(done, "query_id", None) == 1


class TestMasterRecoveryProtocol:
    def test_recovered_processor_gets_loop_list(self):
        sim, master, processors, ing = make_master()
        # Terminate iteration 3 of main first.
        for processor in processors:
            processor.transport.send("master", report(
                processor.name, 1,
                {0: (1, 1, 1), 1: (1, 1, 1), 2: (1, 1, 1), 3: (1, 0, 0)}))
        sim.run(until=1.0)
        processors[0].transport.send("master", ProcessorRecovered("p0"))
        sim.run(until=2.0)
        recover = processors[0].of_type(RecoverLoops)
        assert recover
        loops = dict(recover[0].loops)
        assert loops[MAIN_LOOP] == 3

    def test_recovery_forgets_processor_views(self):
        sim, master, processors, _ing = make_master()
        for processor in processors:
            processor.transport.send("master", report(
                processor.name, 5, {0: (1, 0, 0)}))
        sim.run(until=1.0)
        processors[0].transport.send("master", ProcessorRecovered("p0"))
        sim.run(until=2.0)
        tracker = master.trackers[MAIN_LOOP]
        assert not tracker.all_reported()
        # Every view is invalidated, not just the restarted processor's:
        # the peers owe repair traffic their old reports cannot show, so
        # nothing may terminate or converge until everyone re-reports.
        processors[0].transport.send("master", report("p0", 1,
                                                      {0: (1, 0, 0)}))
        sim.run(until=3.0)
        assert not tracker.all_reported()
        for processor in processors[1:]:
            processor.transport.send("master", report(
                processor.name, 6, {0: (1, 0, 0)}))
        sim.run(until=4.0)
        assert tracker.all_reported()

    def test_master_failure_rebuilds_from_durable_state(self):
        sim, master, processors, ing = make_master()
        for processor in processors:
            processor.transport.send("master", report(
                processor.name, 1, {0: (1, 0, 0)}))
        sim.run(until=1.0)
        master.fail()
        master.recover()
        sim.run(until=2.0)
        # Re-broadcast of the durable frontier.
        notices = processors[0].of_type(IterationTerminated)
        assert notices and notices[-1].iteration == 0
