"""Columnar-wire A/B tests (``TornadoConfig.columnar_wire``).

The gate changes only the representation of a flushed session window —
packable same-destination scatters leave as typed column runs inside a
:class:`ColumnBatch` instead of per-row ``VertexUpdate`` objects — so the
oracle is byte-identity: same seed ⇒ byte-identical flight-recorder
digests gate on vs off, in steady runs, under kill/recover chaos, with
unpackable values interleaved, and on the live multiprocessing backend
(canonical final-state digests there; raw event order differs between
backends by construction).

The unit tests poke the window and the receive path directly: column
runs form per destination with scalar messages kept in their original
positions, a lone packable payload still ships as a plain update, a
mid-window owner flip routes at flush time, an in-flight flip falls back
to the scalar path on receipt, and drained window buffers are pooled.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.core import Application, TornadoConfig, TornadoJob
from repro.core.messages import (MAIN_LOOP, ColumnBatch, SessionBatch,
                                 VertexUpdate)
from repro.live import canonical_digest
from repro.streams import UniformRate, edge_stream

NODES = list("sabcdefgh")
ACTORS = ["proc-0", "proc-1", "proc-2", TornadoJob.MASTER]

#: Fixed weighted graph (reachable core plus weighted shortcuts, same
#: shape as the delta-path suite) for the determinism pairs.
EDGES_W = [
    ("s", "a", 1.0), ("s", "b", 4.0), ("a", "c", 2.0), ("b", "c", 1.0),
    ("c", "d", 3.0), ("d", "e", 1.0), ("b", "e", 9.0), ("e", "f", 2.0),
    ("f", "g", 1.0), ("d", "g", 7.0), ("a", "h", 5.0), ("h", "d", 1.0),
]


class BoxedOfferSSSP(SSSPProgram):
    """SSSP whose scatter boxes alternate offers in a tuple: unpackable
    values that force the wire's scalar fallback rows to interleave with
    float column runs.  Gather unwraps the box, so convergence is
    identical to plain SSSP.  Must stay at module top level — the live
    backend's spawned workers re-import it by reference."""

    def scatter(self, ctx) -> None:
        value = ctx.value
        for target in value.retracted:
            ctx.emit(target, math.inf)
        value.retracted = set()
        for target in ctx.targets:
            if math.isinf(value.distance):
                offer = math.inf
            else:
                offer = (value.distance
                         + value.edge_weights.get(target, 1.0))
            if sum(map(ord, str(target))) % 2:
                ctx.emit(target, ("boxed", offer))
            else:
                ctx.emit(target, offer)

    def gather(self, ctx, source, delta) -> bool:
        if (isinstance(delta, tuple) and len(delta) == 2
                and delta[0] == "boxed"):
            delta = delta[1]
        return super().gather(ctx, source, delta)


def make_job(edges, *, wire, program=SSSPProgram, backend="sim",
             n_processors=3, trace=True, seed=7, rate=1000.0):
    app = Application(program("s"), EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(
        backend=backend, n_processors=n_processors,
        report_interval=0.02 if backend == "live" else 0.01,
        retransmit_timeout=0.5 if backend == "live" else 0.1,
        storage_backend="memory", delta_path=True, columnar_wire=wire,
        trace_enabled=trace, seed=seed))
    job.feed(edge_stream(edges, UniformRate(rate=rate)))
    return job


def final_distances(job):
    return {vid: value.distance
            for vid, value in job.main_values().items()
            if not math.isinf(value.distance)}


def reference(edges):
    return {v: d for v, d in reference_sssp(edges, "s").items()
            if not math.isinf(d)}


def _processor(job, name="proc-0"):
    return next(p for p in job.processors if p.name == name)


def _sent(proc, kinds):
    return [(to, payload) for to, payload
            in proc.transport._outbox.values()
            if isinstance(payload, kinds)]


# ------------------------------------------------------------ config gate
class TestConfigGate:
    def test_columnar_wire_requires_delta_path(self):
        with pytest.raises(ValueError):
            TornadoConfig(delta_path=False, columnar_wire=True)

    def test_gate_defaults_off(self):
        assert TornadoConfig().columnar_wire is False


# -------------------------------------------------------- window packing
class TestSessionWindowPack:
    def _two_to_one_dst(self, job):
        """Two distinct-pair scatters bound for the same destination."""
        proc = _processor(job)
        loop = proc.loops[MAIN_LOOP]
        dst = job.partition.owner("c")
        job.partition.reassign("d", dst)
        return proc, loop, dst

    def test_flush_packs_column_runs(self):
        job = make_job(EDGES_W, wire=True)
        proc, loop, dst = self._two_to_one_dst(job)
        proc._buffer_scatter(loop, "a", "c", 3, 7.0)
        proc._buffer_scatter(loop, "b", "d", 3, 2.0)
        proc._flush_window()
        batches = _sent(proc, ColumnBatch)
        assert [to for to, _ in batches] == [dst]
        batch = batches[0]
        assert batch[1].segments == ((("a", "b"), ("c", "d"), (3, 3),
                                      (7.0, 2.0)),)
        snapshot = job.metrics.snapshot()
        assert snapshot["core.wire_batches"] == 1
        assert snapshot["core.wire_packed_rows"] == 2
        assert snapshot["core.wire_fallback"] == 0
        assert loop.sent_total == 2
        assert loop.counter(3)[1] == 2

    def test_unpackable_values_interleave_as_scalars(self):
        job = make_job(EDGES_W, wire=True)
        proc, loop, _dst = self._two_to_one_dst(job)
        proc._buffer_scatter(loop, "a", "c", 3, 7.0)
        proc._buffer_scatter(loop, "b", "c", 3, ("boxed", 2.0))
        proc._buffer_scatter(loop, "b", "d", 3, 4.0)
        proc._flush_window()
        (_to, batch), = _sent(proc, ColumnBatch)
        run1, scalar, run2 = batch.segments
        assert run1 == (("a",), ("c",), (3,), (7.0,))
        assert isinstance(scalar, VertexUpdate)
        assert scalar.data == ("boxed", 2.0)
        assert run2 == (("b",), ("d",), (3,), (4.0,))
        assert job.metrics.snapshot()["core.wire_fallback"] == 1

    def test_single_packable_payload_stays_scalar(self):
        job = make_job(EDGES_W, wire=True)
        proc = _processor(job)
        proc._buffer_scatter(proc.loops[MAIN_LOOP], "a", "c", 3, 7.0)
        proc._flush_window()
        assert _sent(proc, ColumnBatch) == []
        (_to, update), = _sent(proc, VertexUpdate)
        assert (update.producer, update.consumer, update.iteration,
                update.data) == ("a", "c", 3, 7.0)

    def test_gate_off_ships_session_batches(self):
        job = make_job(EDGES_W, wire=False)
        proc, loop, dst = self._two_to_one_dst(job)
        proc._buffer_scatter(loop, "a", "c", 3, 7.0)
        proc._buffer_scatter(loop, "b", "d", 3, 2.0)
        proc._flush_window()
        assert _sent(proc, ColumnBatch) == []
        assert len(_sent(proc, SessionBatch)) == 1
        assert job.metrics.snapshot()["core.wire_batches"] == 0

    def test_owner_flip_mid_window_routes_at_flush_time(self):
        job = make_job(EDGES_W, wire=True)
        proc = _processor(job)
        loop = proc.loops[MAIN_LOOP]
        old_owner = job.partition.owner("c")
        new_owner = next(p.name for p in job.processors
                         if p.name not in (old_owner, proc.name))
        proc._buffer_scatter(loop, "a", "c", 2, 9.0)
        job.partition.reassign("c", new_owner)
        proc._flush_window()
        (to, update), = _sent(proc, (ColumnBatch, VertexUpdate,
                                     SessionBatch))
        assert to == new_owner
        assert isinstance(update, VertexUpdate)
        assert (update.producer, update.consumer) == ("a", "c")

    def test_window_buffers_are_pooled_across_flushes(self):
        """Satellite oracle: drained per-loop window buffers return to a
        pool and are reused by the next window (clear-don't-recreate)."""
        job = make_job(EDGES_W, wire=True)
        proc = _processor(job)
        loop = proc.loops[MAIN_LOOP]
        proc._buffer_scatter(loop, "a", "c", 3, 7.0)
        first = proc._session_window[MAIN_LOOP]
        proc._flush_window()
        assert proc._session_window == {}
        proc._buffer_scatter(loop, "a", "c", 4, 6.0)
        assert proc._session_window[MAIN_LOOP] is first
        proc._flush_window()
        assert job.metrics.snapshot()["core.window_reuse"] == 1


# ------------------------------------------------------------ receive path
class TestColumnBatchReceive:
    def test_rows_gather_on_the_fast_path(self):
        job = make_job(EDGES_W, wire=True, n_processors=1)
        proc = _processor(job)
        job.run_for(3.0)
        loop = proc.loops[MAIN_LOOP]
        before = loop.gathered_total
        fast_before = job.metrics.snapshot()["core.wire_row_gathers"]
        rows = [("x1", "c", 0, 1e6), ("x2", "d", 0, 1e6)]
        proc._dispatch(ColumnBatch(MAIN_LOOP, (tuple(zip(*rows)),)))
        assert loop.gathered_total == before + 2
        snapshot = job.metrics.snapshot()
        assert snapshot["core.wire_row_gathers"] == fast_before + 2
        # Non-improving offers: converged distances are untouched.
        assert final_distances(job) == reference(EDGES_W)

    def test_foreign_rows_forward_to_their_owner(self):
        """An in-flight owner flip: rows whose consumer this processor
        does not own fall back to the scalar path, which forwards the
        update — the message follows the vertex, it is never dropped."""
        job = make_job(EDGES_W, wire=True)
        job.run_for(3.0)
        owner = job.partition.owner("c")
        other = next(p for p in job.processors if p.name != owner)
        outbox_before = len(other.transport._outbox)
        fast_before = job.metrics.snapshot()["core.wire_row_gathers"]
        rows = [("x1", "c", 0, 1e6)]
        other._dispatch(ColumnBatch(MAIN_LOOP, (tuple(zip(*rows)),)))
        forwarded = [
            (to, payload) for to, payload
            in list(other.transport._outbox.values())[outbox_before:]
            if isinstance(payload, VertexUpdate)]
        assert forwarded == [(owner, VertexUpdate(MAIN_LOOP, "x1", "c",
                                                  0, 1e6))]
        assert (job.metrics.snapshot()["core.wire_row_gathers"]
                == fast_before)

    def test_scalar_segments_dispatch_in_place(self):
        job = make_job(EDGES_W, wire=True, n_processors=1)
        proc = _processor(job)
        job.run_for(3.0)
        loop = proc.loops[MAIN_LOOP]
        before = loop.gathered_total
        batch = ColumnBatch(MAIN_LOOP, (
            (("x1",), ("c",), (0,), (1e6,)),
            VertexUpdate(MAIN_LOOP, "x2", "d", 0, 1e6),
        ))
        proc._dispatch(batch)
        assert loop.gathered_total == before + 2


# ------------------------------------------------------- determinism (sim)
class TestDigestParity:
    def _digests(self, wire, *, program=SSSPProgram, chaos=False):
        job = make_job(EDGES_W, wire=wire, program=program)
        if chaos:
            job.failures.kill_at(0.08, "proc-1", recover_after=0.3)
        job.run_for(4.0)
        snapshot = job.metrics.snapshot()
        return (job.trace.digest(), final_distances(job),
                snapshot.get("core.wire_packed_rows", 0),
                snapshot.get("core.wire_fallback", 0))

    def test_steady_digests_identical_and_pack_engages(self):
        off = self._digests(False)
        on = self._digests(True)
        assert on[0] == off[0]
        assert on[1] == off[1] == reference(EDGES_W)
        assert on[2] > 0 and off[2] == 0

    def test_chaos_digests_identical(self):
        off = self._digests(False, chaos=True)
        on = self._digests(True, chaos=True)
        assert on[0] == off[0]
        assert on[1] == off[1] == reference(EDGES_W)
        assert on[2] > 0

    def test_boxed_offers_fall_back_and_stay_identical(self):
        off = self._digests(False, program=BoxedOfferSSSP)
        on = self._digests(True, program=BoxedOfferSSSP)
        assert on[0] == off[0]
        assert on[1] == off[1] == reference(EDGES_W)
        assert on[2] > 0        # packable floats still packed
        assert on[3] > 0        # boxed offers took the fallback


# ------------------------------------------------------------ live backend
def _run_live(wire, *, program=SSSPProgram, chaos=False):
    job = make_job(EDGES_W, wire=wire, program=program, backend="live",
                   n_processors=2, trace=False, rate=1e9)
    try:
        if chaos:
            job.pump_for(0.15)
            job.kill_worker("proc-1")
            job.pump_for(0.1)
            job.respawn_worker("proc-1")
        job.run_until_converged(timeout=60.0)
        job.finalize(timeout=30.0)
        return (canonical_digest(job, include_counts=False),
                final_distances(job), job.wire_rows())
    finally:
        job.shutdown()


class TestLiveParity:
    def test_live_digests_identical_and_pack_engages(self):
        off = _run_live(False)
        on = _run_live(True)
        assert on[0] == off[0]
        assert on[1] == off[1] == reference(EDGES_W)
        assert on[2] > 0 and off[2] == 0

    def test_live_kill_recover_stays_exact(self):
        off = _run_live(False, chaos=True)
        on = _run_live(True, chaos=True)
        assert on[1] == off[1] == reference(EDGES_W)


# -------------------------------------------------------------- properties
def _dedupe(raw):
    last = {}
    for u, v, w in raw:
        if u != v:
            last[(u, v)] = float(w)
    return [("s", "a", 1.0)] + [(u, v, w) for (u, v), w in last.items()
                                if (u, v) != ("s", "a")]


weighted_graphs = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES),
              st.integers(min_value=1, max_value=9)),
    min_size=4, max_size=16,
).map(_dedupe)

kill_specs = st.lists(
    st.tuples(
        st.sampled_from(ACTORS),
        st.floats(min_value=0.01, max_value=1.2),
        st.floats(min_value=0.05, max_value=0.8),
    ),
    min_size=0, max_size=2,
    unique_by=lambda spec: spec[0],
)


class TestWireScalarEquivalenceProperty:
    @given(edges=weighted_graphs, boxed=st.booleans(), specs=kill_specs)
    @settings(max_examples=8, deadline=None)
    def test_random_interleavings_sim(self, edges, boxed, specs):
        """Random packable/fallback interleavings under random chaos:
        the wire regime must replay to the byte the scalar regime's
        flight-recorder stream and converge to the same distances."""
        program = BoxedOfferSSSP if boxed else SSSPProgram
        results = {}
        for wire in (False, True):
            job = make_job(edges, wire=wire, program=program)
            for actor, at, downtime in specs:
                job.failures.kill_at(at, actor, recover_after=downtime)
            job.run_for(6.0)
            results[wire] = (job.trace.digest(), final_distances(job))
        assert results[True] == results[False]
        assert results[True][1] == reference(edges)

    @given(boxed=st.booleans())
    @settings(max_examples=2, deadline=None)
    def test_interleavings_live(self, boxed):
        """The live leg of the same property at minimal scale: boxed
        offers interleave fallback rows with column runs across real
        process boundaries without changing the canonical answer."""
        program = BoxedOfferSSSP if boxed else SSSPProgram
        off = _run_live(False, program=program)
        on = _run_live(True, program=program)
        assert on[0] == off[0]
        assert on[1] == off[1] == reference(EDGES_W)
        assert on[2] > 0
