"""Property test: the fast-path kernel (timer wheel merged with the heap,
plus same-instant message coalescing) fires callbacks in exactly the same
(time, seq) order as the legacy heap-only kernel, including interleaved
cancellations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import Actor, Network, Simulator

#: Fixed delay classes — one per wheel spoke.  0.5 collides on purpose
#: with the event-delay choices and the network latency below, so ties
#: between heap events, wheel timers and coalesced deliveries at the
#: exact same instant are exercised.
_DELAYS = (0.02, 0.5, 30.0)
_EVENT_DELAYS = (0.0, 0.01, 0.02, 0.5, 1.25)
_NET_LATENCY = 0.5

# A program interleaves: scheduling a wheel timer, scheduling a plain
# heap event, sending a network message (coalescing candidate on the
# fast path), cancelling one of the handles created so far, and
# advancing the clock (which fires whatever is due, so later ops happen
# at a later now).
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("timer"), st.integers(0, len(_DELAYS) - 1)),
        st.tuples(st.just("event"),
                  st.integers(0, len(_EVENT_DELAYS) - 1)),
        st.tuples(st.just("send"), st.just(0)),
        st.tuples(st.just("cancel"), st.integers(min_value=0)),
        st.tuples(st.just("advance"),
                  st.floats(min_value=0.001, max_value=1.0,
                            allow_nan=False, allow_infinity=False)),
    ),
    min_size=1, max_size=120)


class _Recorder(Actor):
    """Sink whose arrival order lands in the shared firing log."""

    def __init__(self, sim, name, fired):
        super().__init__(sim, name)
        self._fired = fired

    def handle(self, message, sender):
        self._fired.append(("recv", self.sim.now, message))
        return 0.0


def _execute(fast_path, ops):
    """Run one program on a fresh kernel; return the full firing log."""
    sim = Simulator(seed=3, fast_path=fast_path)
    network = Network(sim, latency=_NET_LATENCY)
    fired = []
    _Recorder(sim, "src", fired)
    _Recorder(sim, "sink", fired)
    handles = []

    def fire(tag, index):
        fired.append((tag, sim.now, index))

    for index, (op, value) in enumerate(ops):
        if op == "timer":
            handles.append(
                sim.schedule_timer(_DELAYS[value], fire, "timer", index))
        elif op == "event":
            handles.append(
                sim.schedule(_EVENT_DELAYS[value], fire, "event", index))
        elif op == "send":
            network.send("src", "sink", index)
        elif op == "cancel":
            if handles:
                handles[value % len(handles)].cancel()
        else:  # advance
            sim.run(until=sim.now + value)
    sim.run()
    # A drained kernel must report zero live units in both modes, even
    # though legacy-mode tombstones may still occupy heap slots.
    assert sim.pending_events == 0
    return fired, sim.events_processed, sim.now


@settings(max_examples=200, deadline=None)
@given(_OPS)
def test_fast_and_legacy_kernels_fire_identically(ops):
    legacy = _execute(False, ops)
    fast = _execute(True, ops)
    assert fast == legacy
