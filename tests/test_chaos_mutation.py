"""Mutation smoke test for the chaos oracles (ISSUE satellite).

``CheckpointManifest.planted_restart_skew`` is a deliberately planted
off-by-one in the restart frontier, gated behind a test-only flag.  The
chaos oracle suite must catch it: with the skew enabled the
manifest-consistency oracle has to fail, and with the flag off the very
same schedule must pass every oracle.  A mutation the oracles cannot see
would mean the campaign has no teeth.
"""

from repro.chaos import ChaosSchedule, SSSPWorkload


def run(skew):
    workload = SSSPWorkload(planted_restart_skew=skew)
    # The fault-free schedule is enough: the mutation skews the manifest's
    # restart frontier unconditionally once any iteration terminates.
    return workload.run_chaos(ChaosSchedule(seed=0, faults=[]))


class TestPlantedRestartSkew:
    def test_oracles_catch_planted_skew(self):
        outcome = run(skew=1)
        assert not outcome.passed
        failed = {result.oracle for result in outcome.failures()}
        assert "manifest-consistency" in failed

    def test_oracles_pass_without_mutation(self):
        outcome = run(skew=0)
        assert outcome.passed, [r.line() for r in outcome.failures()]
