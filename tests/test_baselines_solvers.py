"""Unit tests for the warm-startable solvers."""

import numpy as np
import pytest

from repro.algorithms import (HingeLoss, reference_kmeans,
                              reference_pagerank, reference_sssp)
from repro.baselines import (GradientDescentSolver, KMeansSolver,
                             PageRankSolver, SSSPSolver)
from repro.datagen import higgs_like
from repro.streams import UniformRate, edge_stream, instance_stream, \
    point_stream
from repro.streams.model import REMOVE_EDGE, StreamTuple

EDGES = [("s", "a"), ("s", "b"), ("a", "c"), ("b", "c"), ("c", "d"),
         ("b", "e"), ("e", "d")]


def tuples_for(edges):
    return edge_stream(edges, UniformRate(rate=1000.0))


class TestSSSPSolver:
    def test_cold_solve_matches_dijkstra(self):
        solver = SSSPSolver("s")
        solver.apply(tuples_for(EDGES))
        distances, stats = solver.solve()
        assert distances == reference_sssp(EDGES, "s")
        assert stats.updates > 0

    def test_warm_solve_touches_less(self):
        solver = SSSPSolver("s")
        solver.apply(tuples_for(EDGES))
        cold, cold_stats = solver.solve()
        solver.apply(tuples_for([("d", "f")]))
        warm, warm_stats = solver.solve(initial=cold)
        assert warm == reference_sssp(EDGES + [("d", "f")], "s")
        assert warm_stats.updates < cold_stats.updates

    def test_warm_solve_handles_deletion(self):
        solver = SSSPSolver("s")
        solver.apply(tuples_for(EDGES))
        cold, _stats = solver.solve()
        solver.apply([StreamTuple(99.0, REMOVE_EDGE, ("s", "b"),
                                  weight=-1)])
        warm, _warm_stats = solver.solve(initial=cold)
        remaining = [e for e in EDGES if e != ("s", "b")]
        assert warm == pytest.approx(reference_sssp(remaining, "s"))

    def test_repeated_warm_solves_stay_exact(self):
        solver = SSSPSolver("s")
        solution = None
        applied = []
        for edge in EDGES:
            solver.apply(tuples_for([edge]))
            applied.append(edge)
            solution, _stats = solver.solve(initial=solution)
            assert solution == pytest.approx(
                reference_sssp(applied, "s"))

    def test_state_size_counts_edges(self):
        solver = SSSPSolver("s")
        solver.apply(tuples_for(EDGES))
        assert solver.state_size() == len(EDGES)


class TestPageRankSolver:
    EDGES = [(0, 1), (1, 2), (2, 0), (1, 0), (3, 0), (0, 3)]

    def test_cold_solve_matches_reference(self):
        solver = PageRankSolver(tolerance=1e-8)
        solver.apply(tuples_for(self.EDGES))
        ranks, _stats = solver.solve()
        expected = reference_pagerank(self.EDGES)
        for vertex in expected:
            assert ranks[vertex] == pytest.approx(expected[vertex],
                                                  abs=1e-3)

    def test_warm_solve_fewer_iterations(self):
        solver = PageRankSolver(tolerance=1e-10)
        solver.apply(tuples_for(self.EDGES))
        ranks, cold_stats = solver.solve()
        solver.apply(tuples_for([(2, 3)]))
        _ranks2, warm_stats = solver.solve(initial=ranks)
        assert warm_stats.iterations < cold_stats.iterations

    def test_every_iteration_scans_whole_graph(self):
        """The property that dooms mini-batch PageRank (paper §1): each
        iteration propagates over every edge, even when few ranks end up
        changing (updates only counts genuinely changed ranks — the
        records differential compaction would keep)."""
        solver = PageRankSolver()
        solver.apply(tuples_for(self.EDGES))
        _ranks, stats = solver.solve()
        assert stats.scans >= stats.iterations * len(self.EDGES)
        assert stats.updates <= stats.iterations * 4


class TestKMeansSolver:
    def test_matches_reference(self):
        points = [(-4.0, 0.0), (-4.1, 0.2), (4.0, 0.0), (4.2, 0.1)]
        initial = [(-1.0, 0.0), (1.0, 0.0)]
        solver = KMeansSolver(initial)
        solver.apply(point_stream(points, UniformRate(rate=100.0)))
        centroids, stats = solver.solve()
        assert np.allclose(centroids, reference_kmeans(points, initial),
                           atol=1e-6)
        assert stats.scans > 0

    def test_warm_start_does_not_reduce_scan_cost_much(self):
        """KMeans rescans all points every iteration: warm starts shrink
        iterations but each iteration still costs O(points)."""
        points = [(float(i % 7) - 3.0, float(i % 5)) for i in range(60)]
        solver = KMeansSolver([(-2.0, 0.0), (2.0, 3.0)])
        solver.apply(point_stream(points, UniformRate(rate=1000.0)))
        centroids, cold = solver.solve()
        _again, warm = solver.solve(initial=centroids)
        assert warm.scans >= len(points) * 2  # at least one full rescan

    def test_empty_solver_returns_initial(self):
        solver = KMeansSolver([(0.0, 0.0)])
        centroids, stats = solver.solve()
        assert np.allclose(centroids, [(0.0, 0.0)])
        assert stats.iterations == 0


class TestGradientDescentSolver:
    def test_learns_separator(self):
        instances, _w = higgs_like(300, dim=6, seed=1, noise=0.05)
        solver = GradientDescentSolver(HingeLoss(1e-3), dim=6, rate=0.2)
        solver.apply(instance_stream(instances, UniformRate(rate=1e6)))
        weights, stats = solver.solve()
        xs = np.stack([inst.x() for inst in instances])
        ys = np.asarray([inst.label for inst in instances], dtype=float)
        assert ((np.sign(xs @ weights) == ys).mean()) > 0.9
        assert stats.iterations > 1

    def test_warm_start_converges_faster(self):
        from repro.algorithms import LogisticLoss

        instances, _w = higgs_like(300, dim=6, seed=1, noise=0.05)
        solver = GradientDescentSolver(LogisticLoss(1e-2), dim=6,
                                       rate=0.3, tolerance=1e-3)
        solver.apply(instance_stream(instances[:200],
                                     UniformRate(rate=1e6)))
        weights, cold = solver.solve()
        solver.apply(instance_stream(instances[200:],
                                     UniformRate(rate=1e6)))
        _w2, warm = solver.solve(initial=weights)
        assert warm.iterations < cold.iterations

    def test_empty_returns_zero_weights(self):
        solver = GradientDescentSolver(HingeLoss(), dim=4)
        weights, stats = solver.solve()
        assert np.allclose(weights, np.zeros(4))
        assert stats.iterations == 0
