"""Unit tests for algorithm pieces: losses, schedules, oracles, routers."""

import numpy as np
import pytest

from repro.algorithms import (Adadelta, Adagrad, BoldDriver, HingeLoss,
                              Instance, InstanceRouter, LogisticLoss,
                              StaticRate, reference_components,
                              reference_kmeans, reference_pagerank,
                              reference_sssp)
from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sgd import PARAM, sampler_id
from repro.streams.model import ADD_EDGE, ADD_INSTANCE, StreamTuple


class TestLosses:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.true_w = np.array([1.0, -2.0, 0.5])
        self.xs = rng.normal(size=(200, 3))
        self.ys = np.sign(self.xs @ self.true_w)

    @pytest.mark.parametrize("loss", [HingeLoss(1e-3), LogisticLoss(1e-4)])
    def test_gradient_descent_reduces_objective(self, loss):
        w = np.zeros(3)
        start = loss.objective(w, self.xs, self.ys)
        for _ in range(200):
            w = w - 0.1 * loss.gradient(w, self.xs, self.ys)
        assert loss.objective(w, self.xs, self.ys) < start * 0.5

    @pytest.mark.parametrize("loss", [HingeLoss(1e-3), LogisticLoss(1e-4)])
    def test_gradient_matches_finite_differences(self, loss):
        w = np.array([0.3, -0.2, 0.1])
        grad = loss.gradient(w, self.xs, self.ys)
        eps = 1e-6
        for coord in range(3):
            bump = np.zeros(3)
            bump[coord] = eps
            numeric = (loss.objective(w + bump, self.xs, self.ys)
                       - loss.objective(w - bump, self.xs, self.ys)) / (
                2 * eps)
            assert grad[coord] == pytest.approx(numeric, abs=1e-3)

    def test_separable_data_reaches_low_error(self):
        loss = LogisticLoss(1e-4)
        w = np.zeros(3)
        for _ in range(500):
            w = w - 0.5 * loss.gradient(w, self.xs, self.ys)
        predictions = np.sign(self.xs @ w)
        assert (predictions == self.ys).mean() > 0.97


class TestSchedules:
    def test_static_rate_step(self):
        schedule = StaticRate(0.5)
        step = schedule.step(np.array([2.0]))
        assert step == pytest.approx([-1.0])
        assert schedule.rate == 0.5

    def test_static_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            StaticRate(0.0)

    def test_bold_driver_shrinks_on_increase(self):
        schedule = BoldDriver(1.0)
        schedule.observe(10.0)
        schedule.observe(12.0)  # objective grew
        assert schedule.rate == pytest.approx(0.9)

    def test_bold_driver_grows_when_too_slow(self):
        schedule = BoldDriver(1.0)
        schedule.observe(10.0)
        schedule.observe(9.999)  # < 1% improvement
        assert schedule.rate == pytest.approx(1.1)

    def test_bold_driver_holds_on_good_progress(self):
        schedule = BoldDriver(1.0)
        schedule.observe(10.0)
        schedule.observe(5.0)  # 50% improvement
        assert schedule.rate == pytest.approx(1.0)

    def test_bold_driver_respects_bounds(self):
        schedule = BoldDriver(1.0, min_rate=0.95)
        for objective in range(1, 12):  # strictly growing objective
            schedule.observe(float(objective))
        assert schedule.rate == pytest.approx(0.95)

    def test_adagrad_rates_decay(self):
        schedule = Adagrad(1.0)
        g = np.array([1.0])
        first = abs(schedule.step(g)[0])
        second = abs(schedule.step(g)[0])
        third = abs(schedule.step(g)[0])
        assert first > second > third

    def test_adadelta_steps_bounded(self):
        schedule = Adadelta()
        g = np.array([5.0])
        steps = [abs(schedule.step(g)[0]) for _ in range(20)]
        assert all(step < 1.0 for step in steps)


class TestOracles:
    def test_reference_sssp_weighted(self):
        edges = [("s", "a", 4.0), ("s", "b", 1.0), ("b", "a", 2.0)]
        dist = reference_sssp(edges, "s")
        assert dist == {"s": 0.0, "b": 1.0, "a": 3.0}

    def test_reference_sssp_unknown_source(self):
        dist = reference_sssp([("a", "b")], "zzz")
        assert dist["zzz"] == 0.0

    def test_reference_pagerank_sums_near_n(self):
        edges = [(0, 1), (1, 2), (2, 0), (1, 0)]
        ranks = reference_pagerank(edges)
        assert sum(ranks.values()) == pytest.approx(3.0, rel=0.05)

    def test_reference_pagerank_ordering(self):
        # Everything points at vertex 0.
        edges = [(1, 0), (2, 0), (3, 0)]
        ranks = reference_pagerank(edges)
        assert ranks[0] > ranks[1]

    def test_reference_components(self):
        edges = [(1, 2), (2, 3), (10, 11)]
        labels = reference_components(edges)
        assert labels[3] == 1 and labels[11] == 10

    def test_reference_kmeans_two_blobs(self):
        points = [(-5.0, 0.0), (-5.2, 0.1), (5.0, 0.0), (5.1, -0.1)]
        centroids = reference_kmeans(points, [(-1.0, 0.0), (1.0, 0.0)])
        assert centroids[0][0] == pytest.approx(-5.1, abs=0.1)
        assert centroids[1][0] == pytest.approx(5.05, abs=0.1)


class TestRouters:
    def test_edge_router_directed(self):
        router = EdgeStreamRouter()
        routed = list(router.route(
            StreamTuple(0.0, ADD_EDGE, ("u", "v"))))
        assert len(routed) == 1
        assert routed[0][0] == "u"

    def test_edge_router_undirected(self):
        router = EdgeStreamRouter(undirected=True)
        routed = list(router.route(
            StreamTuple(0.0, ADD_EDGE, ("u", "v"))))
        assert {vertex for vertex, _d in routed} == {"u", "v"}

    def test_edge_router_negative_weight_is_removal(self):
        from repro.streams.model import REMOVE_EDGE

        router = EdgeStreamRouter()
        routed = list(router.route(
            StreamTuple(0.0, ADD_EDGE, ("u", "v"), weight=-1)))
        assert routed[0][1].kind == REMOVE_EDGE

    def test_instance_router_round_robin_and_seed(self):
        router = InstanceRouter(2)
        first = list(router.route(StreamTuple(0.0, ADD_INSTANCE,
                                              Instance((1.0,), 1))))
        # First tuple also seeds the param vertex.
        assert first[0][0] == PARAM
        assert first[1][0] == sampler_id(0)
        second = list(router.route(StreamTuple(0.0, ADD_INSTANCE,
                                               Instance((1.0,), 1))))
        assert second[0][0] == sampler_id(1)

    def test_instance_router_validates(self):
        with pytest.raises(ValueError):
            InstanceRouter(0)
