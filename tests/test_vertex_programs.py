"""Program-level unit tests: drive each vertex program's gather/scatter
directly through a VertexContext, no simulator involved."""

import math

import numpy as np
import pytest

from repro.algorithms import (ConnectedComponentsProgram, KMeansProgram,
                              PageRankProgram, SSSPProgram, StaticRate)
from repro.algorithms.kmeans import SEED_CENTROID, centroid_id, shard_id
from repro.algorithms.sgd import (PARAM, HingeLoss, Instance, SGDProgram,
                                  sampler_id)
from repro.core.messages import MAIN_LOOP, branch_name
from repro.core.vertex import Delta, VertexContext, VertexState
from repro.errors import ReproError
from repro.streams.model import ADD_EDGE, ADD_INSTANCE, ADD_POINT, \
    REMOVE_EDGE


def make_vertex(program, vertex_id, loop=MAIN_LOOP, iteration=0):
    state = VertexState(vertex_id)
    ctx = VertexContext(state, loop, iteration)
    program.init(ctx)
    return ctx, state


class TestSSSPProgram:
    def test_source_initialised_to_zero(self):
        program = SSSPProgram("s")
        ctx, _ = make_vertex(program, "s")
        assert ctx.value.distance == 0.0
        other, _ = make_vertex(program, "x")
        assert math.isinf(other.value.distance)

    def test_add_edge_registers_target_and_weight(self):
        program = SSSPProgram("s")
        ctx, _ = make_vertex(program, "s")
        changed = program.gather(ctx, None,
                                 Delta(ADD_EDGE, ("s", "t", 2.5)))
        assert changed  # the source owes its distance to the new target
        assert "t" in ctx.targets
        assert ctx.value.edge_weights["t"] == 2.5

    def test_add_edge_on_unreachable_vertex_is_quiet(self):
        program = SSSPProgram("s")
        ctx, _ = make_vertex(program, "x")
        changed = program.gather(ctx, None, Delta(ADD_EDGE, ("x", "y", 1)))
        assert not changed  # nothing useful to announce yet

    def test_offers_keep_minimum(self):
        program = SSSPProgram("s")
        ctx, _ = make_vertex(program, "x")
        assert program.gather(ctx, "a", 5.0)
        assert ctx.value.distance == 5.0
        assert program.gather(ctx, "b", 3.0)
        assert ctx.value.distance == 3.0
        assert not program.gather(ctx, "c", 4.0)  # not an improvement

    def test_retracted_offer_recomputes(self):
        program = SSSPProgram("s")
        ctx, _ = make_vertex(program, "x")
        program.gather(ctx, "a", 3.0)
        program.gather(ctx, "b", 7.0)
        assert program.gather(ctx, "a", math.inf)
        assert ctx.value.distance == 7.0

    def test_scatter_emits_distance_plus_weight(self):
        program = SSSPProgram("s")
        ctx, _ = make_vertex(program, "s")
        program.gather(ctx, None, Delta(ADD_EDGE, ("s", "t", 2.0)))
        program.scatter(ctx)
        assert ctx.take_emitted() == {"t": 2.0}

    def test_scatter_retracts_removed_targets(self):
        program = SSSPProgram("s")
        ctx, _ = make_vertex(program, "s")
        program.gather(ctx, None, Delta(ADD_EDGE, ("s", "t", 1.0)))
        program.gather(ctx, None, Delta(REMOVE_EDGE, ("s", "t", 1.0)))
        program.scatter(ctx)
        emitted = ctx.take_emitted()
        assert math.isinf(emitted["t"])

    def test_unreachable_vertex_scatters_retractions(self):
        program = SSSPProgram("s")
        ctx, _ = make_vertex(program, "x")
        program.gather(ctx, None, Delta(ADD_EDGE, ("x", "y", 1.0)))
        program.gather(ctx, "a", 4.0)   # reachable for a while
        program.gather(ctx, "a", math.inf)  # now unreachable again
        program.scatter(ctx)
        assert math.isinf(ctx.take_emitted()["y"])

    def test_max_distance_caps_count_to_infinity(self):
        program = SSSPProgram("s", max_distance=10.0)
        ctx, _ = make_vertex(program, "x")
        assert program.gather(ctx, "a", 9.0)
        assert ctx.value.distance == 9.0
        assert program.gather(ctx, "a", 11.0)
        assert math.isinf(ctx.value.distance)

    def test_snapshot_value_is_independent(self):
        program = SSSPProgram("s")
        ctx, state = make_vertex(program, "x")
        program.gather(ctx, "a", 3.0)
        snapshot = program.snapshot_value(state.value)
        program.gather(ctx, "a", 1.0)
        assert snapshot.distance == 3.0


class TestPageRankProgram:
    def test_contribution_slots_idempotent(self):
        program = PageRankProgram(tolerance=1e-9)
        ctx, _ = make_vertex(program, "x")
        assert program.gather(ctx, "a", 0.5)
        rank_after_first = ctx.value.rank
        assert not program.gather(ctx, "a", 0.5)  # duplicate delivery
        assert ctx.value.rank == rank_after_first

    def test_rank_formula(self):
        program = PageRankProgram(damping=0.85, tolerance=1e-9)
        ctx, _ = make_vertex(program, "x")
        program.gather(ctx, "a", 1.0)
        assert ctx.value.rank == pytest.approx(0.15 + 0.85 * 1.0)

    def test_zero_contribution_removes_slot(self):
        program = PageRankProgram(tolerance=1e-9)
        ctx, _ = make_vertex(program, "x")
        program.gather(ctx, "a", 1.0)
        assert program.gather(ctx, "a", 0.0)
        assert ctx.value.rank == pytest.approx(0.15)

    def test_scatter_divides_rank_among_targets(self):
        program = PageRankProgram(tolerance=1e-9)
        ctx, _ = make_vertex(program, "x")
        program.gather(ctx, None, Delta(ADD_EDGE, ("x", "a", 1)))
        program.gather(ctx, None, Delta(ADD_EDGE, ("x", "b", 1)))
        program.scatter(ctx)
        emitted = ctx.take_emitted()
        assert emitted["a"] == emitted["b"] == pytest.approx(
            ctx.value.rank / 2)

    def test_tolerance_suppresses_tiny_changes(self):
        program = PageRankProgram(tolerance=0.5)
        ctx, _ = make_vertex(program, "x")
        assert not program.gather(ctx, "a", 0.1)  # change below tolerance

    def test_bad_damping_rejected(self):
        with pytest.raises(ValueError):
            PageRankProgram(damping=1.5)


class TestConnectedComponentsProgram:
    def test_label_starts_as_own_id(self):
        program = ConnectedComponentsProgram()
        ctx, _ = make_vertex(program, 9)
        assert ctx.value.label == 9

    def test_smaller_offers_win(self):
        program = ConnectedComponentsProgram()
        ctx, _ = make_vertex(program, 9)
        assert program.gather(ctx, 5, 5)
        assert not program.gather(ctx, 7, 7)
        assert ctx.value.label == 5

    def test_deletion_rejected(self):
        program = ConnectedComponentsProgram()
        ctx, _ = make_vertex(program, 9)
        with pytest.raises(ReproError):
            program.gather(ctx, None, Delta(REMOVE_EDGE, (9, 5, 1)))


class TestKMeansProgram:
    def make_programs(self):
        return KMeansProgram(k=2, n_shards=2, dim=2, tolerance=1e-6,
                             input_batch=2)

    def test_bipartite_targets(self):
        program = self.make_programs()
        centroid, _ = make_vertex(program, centroid_id(0))
        shard, _ = make_vertex(program, shard_id(1))
        assert centroid.targets == frozenset(
            {shard_id(0), shard_id(1)})
        assert shard.targets == frozenset(
            {centroid_id(0), centroid_id(1)})

    def test_seed_positions_centroid(self):
        program = self.make_programs()
        ctx, _ = make_vertex(program, centroid_id(0))
        assert program.gather(ctx, None,
                              Delta(SEED_CENTROID, (1.0, 2.0)))
        assert np.allclose(ctx.value.position, [1.0, 2.0])

    def test_shard_batches_inputs(self):
        program = self.make_programs()
        ctx, _ = make_vertex(program, shard_id(0))
        ctx.value.centroids[centroid_id(0)] = np.zeros(2)
        assert not program.gather(ctx, None,
                                  Delta(ADD_POINT, (0.0, 0.0)))
        assert program.gather(ctx, None, Delta(ADD_POINT, (1.0, 1.0)))

    def test_shard_assigns_to_nearest(self):
        program = self.make_programs()
        ctx, _ = make_vertex(program, shard_id(0))
        program.gather(ctx, None, Delta(ADD_POINT, (-1.0, 0.0)))
        program.gather(ctx, None, Delta(ADD_POINT, (5.0, 0.0)))
        program.gather(ctx, centroid_id(0), np.array([0.0, 0.0]))
        program.gather(ctx, centroid_id(1), np.array([4.0, 0.0]))
        program.scatter(ctx)
        emitted = ctx.take_emitted()
        sum0, count0 = emitted[centroid_id(0)]
        sum1, count1 = emitted[centroid_id(1)]
        assert count0 == 1 and count1 == 1
        assert np.allclose(sum0, [-1.0, 0.0])
        assert np.allclose(sum1, [5.0, 0.0])

    def test_centroid_mean_of_partials(self):
        program = self.make_programs()
        ctx, _ = make_vertex(program, centroid_id(0))
        program.gather(ctx, shard_id(0), (np.array([2.0, 0.0]), 1))
        program.gather(ctx, shard_id(1), (np.array([0.0, 4.0]), 1))
        assert np.allclose(ctx.value.position, [1.0, 2.0])

    def test_rescan_cost_scales_with_points(self):
        program = self.make_programs()
        ctx, _ = make_vertex(program, shard_id(0))
        for index in range(10):
            program.gather(ctx, None,
                           Delta(ADD_POINT, (float(index), 0.0)))
        small = program.gather_cost(ctx, centroid_id(0), np.zeros(2))
        for index in range(90):
            program.gather(ctx, None,
                           Delta(ADD_POINT, (float(index), 1.0)))
        large = program.gather_cost(ctx, centroid_id(0), np.zeros(2))
        assert large > small


class TestSGDProgram:
    def make_program(self, **kwargs):
        kwargs.setdefault("batch_size", 4)
        kwargs.setdefault("reservoir_capacity", 16)
        kwargs.setdefault("input_batch", 2)
        kwargs.setdefault("tolerance", 1e-6)
        return SGDProgram(HingeLoss(1e-3), 2, 2,
                          lambda: StaticRate(0.1), **kwargs)

    def instance(self, x, y=1):
        return Instance(tuple(x), y)

    def test_param_targets_all_samplers(self):
        program = self.make_program()
        ctx, _ = make_vertex(program, PARAM)
        assert ctx.targets == frozenset({sampler_id(0), sampler_id(1)})

    def test_seed_wakes_param(self):
        program = self.make_program()
        ctx, _ = make_vertex(program, PARAM)
        assert program.gather(ctx, None, Delta("seed", None))

    def test_gradient_applies_step(self):
        program = self.make_program()
        ctx, _ = make_vertex(program, PARAM)
        changed = program.gather(ctx, sampler_id(0),
                                 (np.array([1.0, 0.0]), 0.5, 4, None))
        assert changed
        assert np.allclose(ctx.value.weights, [-0.1, 0.0])

    def test_tiny_step_reports_unchanged(self):
        program = self.make_program(tolerance=1.0)
        ctx, _ = make_vertex(program, PARAM)
        assert not program.gather(ctx, sampler_id(0),
                                  (np.array([1e-4, 0.0]), 0.5, 4, None))

    def test_empty_gradient_batch_ignored(self):
        program = self.make_program()
        ctx, _ = make_vertex(program, PARAM)
        assert not program.gather(ctx, sampler_id(0),
                                  (np.zeros(2), 0.0, 0, None))

    def test_sampler_batches_inputs(self):
        program = self.make_program()
        ctx, _ = make_vertex(program, sampler_id(0))
        ctx.value.weights = np.zeros(2)
        first = program.gather(ctx, None, Delta(
            ADD_INSTANCE, self.instance([1.0, 0.0])))
        second = program.gather(ctx, None, Delta(
            ADD_INSTANCE, self.instance([0.0, 1.0])))
        assert not first and second  # input_batch = 2

    def test_sampler_without_weights_stays_quiet(self):
        program = self.make_program()
        ctx, _ = make_vertex(program, sampler_id(0))
        for _ in range(4):
            program.gather(ctx, None, Delta(
                ADD_INSTANCE, self.instance([1.0, 0.0])))
        program.scatter(ctx)
        assert ctx.take_emitted() == {}

    def test_branch_loop_uses_full_reservoir(self):
        program = self.make_program()
        main_ctx, state = make_vertex(program, sampler_id(0))
        for index in range(10):
            program.gather(main_ctx, None, Delta(
                ADD_INSTANCE, self.instance([1.0, float(index)])))
        program.gather(main_ctx, PARAM, np.zeros(2))
        branch_ctx = VertexContext(state, branch_name(1), 0)
        program.scatter(branch_ctx)
        _grad, _obj, count, _before = branch_ctx.take_emitted()[PARAM]
        assert count == 10  # full reservoir, not a mini-batch

    def test_param_always_activates_on_fork(self):
        program = self.make_program()
        ctx, _ = make_vertex(program, PARAM)
        assert program.activate_on_fork(ctx, recently_updated=False)

    def test_snapshot_preserves_sampler_class(self):
        program = self.make_program(use_reservoir=False)
        ctx, state = make_vertex(program, sampler_id(0))
        snapshot = program.snapshot_value(state.value)
        from repro.streams.sampling import RecencyBiasedBuffer

        assert isinstance(snapshot.reservoir, RecencyBiasedBuffer)
