"""Tests for branch-loop admission control, load shedding, and the
multi-tenant JobManager's typed admission paths."""

import math
import threading

import pytest

from repro.algorithms.sssp import reference_sssp
from repro.core import JobManager, ProcessorPool, TenantQuota
from repro.errors import (AdmissionError, BackpressureError,
                          DuplicateTenantError, PoolExhaustedError,
                          QueryError, QuotaExceededError)

from .conftest import SSSP_EDGES


def distances(values):
    return {vid: v.distance for vid, v in values.items()
            if not math.isinf(v.distance)}


class TestAdmission:
    def test_queued_queries_all_complete(self, make_job):
        job = make_job(max_concurrent_branches=1)
        queries = [job.query(full_activation=True) for _ in range(4)]
        results = [job.wait_for_query(q) for q in queries]
        expected = {v: d
                    for v, d in reference_sssp(SSSP_EDGES, "s").items()
                    if not math.isinf(d)}
        for result in results:
            assert distances(result.values) == expected

    def test_excess_queries_shed(self, make_job):
        job = make_job(max_concurrent_branches=1,
                       branch_admission="shed")
        first = job.query(full_activation=True)
        second = job.query(full_activation=True)
        result = job.wait_for_query(first)
        assert result.converged_iteration >= 0
        with pytest.raises(QueryError):
            job.wait_for_query(second)
        assert job.master.queries_shed == 1

    def test_shedding_frees_capacity_for_later_queries(self, make_job):
        job = make_job(max_concurrent_branches=1,
                       branch_admission="shed")
        first = job.query(full_activation=True)
        shed = job.query(full_activation=True)
        job.wait_for_query(first)
        assert job.query_rejected(shed) or True  # shed notice may lag
        third = job.query(full_activation=True)
        result = job.wait_for_query(third)
        assert result.converged_iteration >= 0

    def test_under_capacity_unaffected(self, make_job):
        job = make_job(max_concurrent_branches=8)
        queries = [job.query(full_activation=True) for _ in range(3)]
        for query in queries:
            job.wait_for_query(query)
        assert job.master.queries_shed == 0

    def test_backlog_preserves_issue_order(self, make_job):
        job = make_job(max_concurrent_branches=1)
        queries = [job.query(full_activation=True) for _ in range(3)]
        for query in queries:
            job.wait_for_query(query)
        records = [job.branch_record(q) for q in queries]
        forked = [record.forked_at for record in records]
        assert forked == sorted(forked)

    def test_tenant_branch_limit_tightens_admission(self, make_job):
        # A JobManager quota tightens the master's cap below the config.
        job = make_job(max_concurrent_branches=8,
                       branch_admission="shed")
        job.master.set_branch_limit(1)
        first = job.query(full_activation=True)
        second = job.query(full_activation=True)
        job.wait_for_query(first)
        assert job.master.queries_shed == 1
        # And it can never loosen past the config ceiling.
        job.master.set_branch_limit(99)
        assert job.master.branch_limit == 8
        assert second is not None


class TestTypedAdmissionErrors:
    def test_hierarchy_roots_at_query_error(self):
        for err in (AdmissionError, DuplicateTenantError,
                    PoolExhaustedError, QuotaExceededError,
                    BackpressureError):
            assert issubclass(err, QueryError)
            assert issubclass(err, AdmissionError)

    def test_duplicate_tenant_rejected(self, make_tenant_spec):
        manager = JobManager(pool_size=6)
        manager.submit(make_tenant_spec("alice", seed=1))
        with pytest.raises(DuplicateTenantError):
            manager.submit(make_tenant_spec("alice", seed=2))

    def test_pool_exhausted_rejected(self, make_tenant_spec):
        manager = JobManager(pool_size=3)
        manager.submit(make_tenant_spec("alice", n_processors=2))
        with pytest.raises(PoolExhaustedError):
            manager.submit(make_tenant_spec("bob", n_processors=2))
        # The 1 remaining slot is still grantable.
        manager.submit(make_tenant_spec("carol", n_processors=1))
        assert manager.pool.free_slots == 0

    def test_processor_quota_rejected(self, make_tenant_spec):
        manager = JobManager(pool_size=8)
        with pytest.raises(QuotaExceededError):
            manager.submit(make_tenant_spec(
                "greedy", n_processors=4,
                quota=TenantQuota(max_processors=2)))
        assert manager.pool.free_slots == 8

    def test_backpressure_rejected_without_residue(self, make_tenant_spec):
        manager = JobManager(pool_size=4)
        spec = make_tenant_spec(
            "firehose",
            quota=TenantQuota(max_processors=2, max_pending_inputs=3))
        assert len(spec.feeds) > 3
        with pytest.raises(BackpressureError):
            manager.submit(spec)
        # Rejection leaves no residue: slots and records rolled back.
        assert manager.pool.free_slots == 4
        assert "firehose" not in manager.tenants

    def test_runtime_feed_backpressure(self, make_tenant_spec):
        manager = JobManager(pool_size=4)
        spec = make_tenant_spec(
            "alice", query_times=(),
            quota=TenantQuota(max_processors=2,
                              max_pending_inputs=len(SSSP_EDGES)))
        manager.submit(spec)
        with pytest.raises(BackpressureError):
            manager.feed("alice", spec.feeds)  # initial feed still pending
        manager.round_robin_once()  # drains the backlog
        assert manager.feed("alice", spec.feeds[:2]) == 2


class TestQuotaAccounting:
    def test_accounting_zero_on_completion(self, make_tenant_spec):
        manager = JobManager(pool_size=4)
        manager.submit(make_tenant_spec("alice", horizon=1.0,
                                        query_times=()))
        assert manager.pool.free_slots == 2
        manager.run_until_all_done(max_rounds=500)
        assert manager.states() == {"alice": "done"}
        assert manager.pool.free_slots == 4
        assert manager.pool.leased("alice") == ()
        assert manager._effective_weight("alice") == 1  # base floor only

    def test_accounting_zero_on_crash(self, make_tenant_spec,
                                      monkeypatch):
        manager = JobManager(pool_size=4)
        record = manager.submit(make_tenant_spec("alice", horizon=1.0,
                                                 query_times=()))
        boom = RuntimeError("tenant blew up mid-window")

        def explode(*args, **kwargs):
            raise boom

        monkeypatch.setattr(record.job.sim, "run", explode)
        manager.round_robin_once()
        assert manager.states() == {"alice": "failed"}
        assert record.error is boom
        assert manager.pool.free_slots == 4
        assert manager.pool.leased("alice") == ()

    def test_crash_frees_capacity_for_new_tenant(self, make_tenant_spec,
                                                 monkeypatch):
        manager = JobManager(pool_size=2)
        record = manager.submit(make_tenant_spec("alice", horizon=1.0,
                                                 query_times=()))
        monkeypatch.setattr(
            record.job.sim, "run",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")))
        manager.round_robin_once()
        # The freed slots admit the next tenant.
        manager.submit(make_tenant_spec("bob", horizon=0.5,
                                        query_times=()))
        manager.run_until_all_done(max_rounds=500)
        assert manager.states()["bob"] == "done"

    def test_no_over_admission_under_concurrent_submits(
            self, make_tenant_spec):
        manager = JobManager(pool_size=4)
        outcomes = {}

        def submit(name):
            try:
                manager.submit(make_tenant_spec(name, n_processors=2,
                                                query_times=()))
                outcomes[name] = "admitted"
            except AdmissionError as exc:
                outcomes[name] = type(exc).__name__

        threads = [threading.Thread(target=submit, args=(f"t{i}",))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        admitted = [n for n, o in outcomes.items() if o == "admitted"]
        assert len(admitted) == 2
        leased = sum(len(manager.pool.leased(name)) for name in admitted)
        assert leased == 4
        assert manager.pool.free_slots == 0
        rejected = {o for n, o in outcomes.items() if o != "admitted"}
        assert rejected == {"PoolExhaustedError"}

    def test_pool_lease_is_deterministic_and_atomic(self):
        pool = ProcessorPool(4)
        assert pool.lease("a", 2) == (0, 1)
        assert pool.lease("b", 2) == (2, 3)
        with pytest.raises(PoolExhaustedError):
            pool.lease("c", 1)
        with pytest.raises(DuplicateTenantError):
            pool.lease("a", 1)
        assert pool.release("a") == (0, 1)
        assert pool.release("a") == ()  # idempotent
        assert pool.lease("c", 2) == (0, 1)
