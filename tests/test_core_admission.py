"""Tests for branch-loop admission control and load shedding."""

import math

import pytest

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.core import Application, TornadoConfig, TornadoJob
from repro.errors import QueryError
from repro.streams import UniformRate, edge_stream

EDGES = [("s", "a"), ("s", "b"), ("a", "c"), ("b", "c"), ("c", "d"),
         ("d", "e"), ("e", "f"), ("f", "g"), ("b", "h"), ("h", "g")]


def make_job(**config_kwargs):
    config_kwargs.setdefault("n_processors", 2)
    config_kwargs.setdefault("report_interval", 0.01)
    config_kwargs.setdefault("storage_backend", "memory")
    # Batch mode keeps branches slow enough to overlap.
    config_kwargs.setdefault("main_loop_mode", "batch")
    config_kwargs.setdefault("merge_policy", "never")
    app = Application(SSSPProgram("s"), EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(**config_kwargs))
    job.feed(edge_stream(EDGES, UniformRate(rate=1000.0)))
    job.run_for(1.0)
    return job


def distances(values):
    return {vid: v.distance for vid, v in values.items()
            if not math.isinf(v.distance)}


class TestAdmission:
    def test_queued_queries_all_complete(self):
        job = make_job(max_concurrent_branches=1)
        queries = [job.query(full_activation=True) for _ in range(4)]
        results = [job.wait_for_query(q) for q in queries]
        expected = {v: d for v, d in reference_sssp(EDGES, "s").items()
                    if not math.isinf(d)}
        for result in results:
            assert distances(result.values) == expected

    def test_excess_queries_shed(self):
        job = make_job(max_concurrent_branches=1,
                       branch_admission="shed")
        first = job.query(full_activation=True)
        second = job.query(full_activation=True)
        result = job.wait_for_query(first)
        assert result.converged_iteration >= 0
        with pytest.raises(QueryError):
            job.wait_for_query(second)
        assert job.master.queries_shed == 1

    def test_shedding_frees_capacity_for_later_queries(self):
        job = make_job(max_concurrent_branches=1,
                       branch_admission="shed")
        first = job.query(full_activation=True)
        shed = job.query(full_activation=True)
        job.wait_for_query(first)
        assert job.query_rejected(shed) or True  # shed notice may lag
        third = job.query(full_activation=True)
        result = job.wait_for_query(third)
        assert result.converged_iteration >= 0

    def test_under_capacity_unaffected(self):
        job = make_job(max_concurrent_branches=8)
        queries = [job.query(full_activation=True) for _ in range(3)]
        for query in queries:
            job.wait_for_query(query)
        assert job.master.queries_shed == 0

    def test_backlog_preserves_issue_order(self):
        job = make_job(max_concurrent_branches=1)
        queries = [job.query(full_activation=True) for _ in range(3)]
        for query in queries:
            job.wait_for_query(query)
        records = [job.branch_record(q) for q in queries]
        forked = [record.forked_at for record in records]
        assert forked == sorted(forked)
