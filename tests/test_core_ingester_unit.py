"""Unit-level tests for the ingester, with a stub master."""

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram
from repro.core import Application, TornadoConfig
from repro.core.ingester import Ingester
from repro.core.messages import (BranchDone, PauseIngest, QueryRejected,
                                 QueryRequest, ResumeIngest, VertexInput)
from repro.core.partition import PartitionScheme
from repro.core.transport import ReliableEndpoint
from repro.simulator import Actor, Network, Simulator
from repro.streams import UniformRate, edge_stream


class Sink(Actor):
    def __init__(self, sim, name, network):
        super().__init__(sim, name)
        self.transport = ReliableEndpoint(sim, network, name)
        self.received = []

    def handle(self, message, sender):
        payload = self.transport.on_message(message, sender)
        if payload is not None:
            self.received.append(payload)
        return 0.0

    def of_type(self, kind):
        return [p for p in self.received if isinstance(p, kind)]


def make_ingester():
    sim = Simulator()
    network = Network(sim, latency=1e-4)
    master = Sink(sim, "master", network)
    processor = Sink(sim, "p0", network)
    app = Application(SSSPProgram("s"), EdgeStreamRouter(), name="sssp")
    ingester = Ingester(sim, "ing", TornadoConfig(control_cost=0.0), app,
                        PartitionScheme(["p0"]), network, "master")
    return sim, ingester, master, processor


class TestIngestion:
    def test_routes_inputs_to_owners(self):
        sim, ingester, _master, processor = make_ingester()
        ingester.schedule_stream(edge_stream([("a", "b"), ("b", "c")],
                                             UniformRate(rate=100.0)))
        sim.run(until=1.0)
        inputs = processor.of_type(VertexInput)
        assert [i.vertex for i in inputs] == ["a", "b"]
        assert ingester.tuples_ingested == 2
        assert ingester.inputs_routed == 2

    def test_late_feed_uses_current_time(self):
        sim, ingester, _master, processor = make_ingester()
        sim.schedule(5.0, lambda: None)
        sim.run()
        # Timestamps in the past are clamped to "now".
        count = ingester.schedule_stream(
            edge_stream([("a", "b")], UniformRate(rate=100.0)))
        assert count == 1
        sim.run(until=6.0)
        assert len(processor.of_type(VertexInput)) == 1

    def test_pause_holds_and_resume_releases(self):
        sim, ingester, _master, processor = make_ingester()
        ingester.deliver(PauseIngest(), "master")
        ingester.schedule_stream(edge_stream([("a", "b"), ("b", "c")],
                                             UniformRate(rate=100.0)))
        sim.run(until=1.0)
        assert processor.of_type(VertexInput) == []
        assert ingester.tuples_ingested == 0
        ingester.deliver(ResumeIngest(), "master")
        sim.run(until=2.0)
        assert len(processor.of_type(VertexInput)) == 2
        assert ingester.tuples_ingested == 2


class TestQueries:
    def test_query_request_reaches_master(self):
        sim, ingester, master, _p = make_ingester()
        query_id = ingester.issue_query()
        sim.run(until=1.0)
        requests = master.of_type(QueryRequest)
        assert [r.query_id for r in requests] == [query_id]

    def test_branch_done_recorded(self):
        sim, ingester, _master, _p = make_ingester()
        ingester.deliver(BranchDone("branch-1", 7, 4, 0.5), "master")
        sim.run(until=0.5)
        assert ingester.query_done(7)
        assert ingester.results[7].converged_iteration == 4

    def test_rejection_recorded(self):
        sim, ingester, _master, _p = make_ingester()
        ingester.deliver(QueryRejected(9, 0.1, "capacity"), "master")
        sim.run(until=0.5)
        assert 9 in ingester.rejections
        assert not ingester.query_done(9)
