"""Unit tests for PartitionScheme epochs, the migration planner's scoring,
and the store's delta-handoff write."""

import pytest

from repro.core import TornadoConfig
from repro.core.migration import MigrationPlanner
from repro.core.partition import PartitionScheme
from repro.errors import StorageError
from repro.storage import VersionedStore


class TestPartitionEpochs:
    def test_batch_reassign_bumps_epoch_once(self):
        scheme = PartitionScheme(["p0", "p1", "p2"])
        epoch = scheme.reassign_batch(
            [(v, "p1") for v in range(10)])
        assert epoch == 1
        assert scheme.epoch == 1
        assert scheme.version == 1  # legacy alias
        assert all(scheme.owner(v) == "p1" for v in range(10))

    def test_single_reassign_bumps_epoch_once(self):
        scheme = PartitionScheme(["p0", "p1"])
        scheme.reassign("a", "p0")
        scheme.reassign("b", "p1")
        assert scheme.epoch == 2

    def test_empty_batch_is_epoch_neutral(self):
        scheme = PartitionScheme(["p0", "p1"])
        assert scheme.reassign_batch([]) == 0
        assert scheme.epoch == 0

    def test_batch_validates_before_applying(self):
        scheme = PartitionScheme(["p0", "p1"])
        with pytest.raises(ValueError):
            scheme.reassign_batch([("a", "p1"), ("b", "nope")])
        # Atomic: the valid half must not have been applied.
        assert scheme.epoch == 0
        assert scheme.owner("a") == scheme.hash_home("a")

    def test_override_evicted_at_hash_home(self):
        scheme = PartitionScheme([f"p{i}" for i in range(4)])
        vertices = list(range(50))
        scheme.reassign_batch([(v, "p0") for v in vertices])
        assert scheme.override_count() == sum(
            1 for v in vertices if scheme.hash_home(v) != "p0")
        # Sending every vertex home empties the override table.
        scheme.reassign_batch(
            [(v, scheme.hash_home(v)) for v in vertices])
        assert scheme.override_count() == 0
        assert scheme.epoch == 2

    def test_owner_stable_across_processor_list_order(self):
        names = [f"p{i}" for i in range(5)]
        forward = PartitionScheme(names)
        backward = PartitionScheme(list(reversed(names)))
        for vertex in range(200):
            assert forward.owner(vertex) == backward.owner(vertex)
        assert forward.hash_home("x") == backward.hash_home("x")


class TestPutIfNewer:
    def test_writes_fresh_key(self):
        store = VersionedStore()
        assert store.put_if_newer("main", "v", 3, "a")
        assert store.get("main", "v") == "a"

    def test_skips_when_chain_covers_iteration(self):
        store = VersionedStore()
        store.put("main", "v", 5, "newer")
        assert not store.put_if_newer("main", "v", 5, "stale")
        assert not store.put_if_newer("main", "v", 4, "stale")
        assert store.get("main", "v") == "newer"
        assert store.put_if_newer("main", "v", 6, "newest")
        assert store.get("main", "v") == "newest"

    def test_rejects_negative_iteration(self):
        store = VersionedStore()
        with pytest.raises(StorageError):
            store.put_if_newer("main", "v", -1, "x")


def make_planner(**overrides):
    overrides.setdefault("rebalance_factor", 1.5)
    overrides.setdefault("rebalance_min_gap", 0.01)
    overrides.setdefault("migration_max_batch", 4)
    return MigrationPlanner(TornadoConfig(**overrides))


def feed(planner, processor, rates, load=()):
    """Feed a sequence of (now, cumulative_busy) observations."""
    for now, busy in rates:
        planner.observe(processor, busy, now, load)


class TestMigrationPlanner:
    def test_no_plan_without_full_observation(self):
        planner = make_planner()
        feed(planner, "p0", [(0.0, 0.0), (1.0, 1.0)],
             load=(("v", 10),))
        assert planner.plan(["p0", "p1"], lambda v: "p0") == ()

    def test_no_plan_when_balanced(self):
        planner = make_planner()
        for name in ("p0", "p1"):
            feed(planner, name, [(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)],
                 load=(("v" + name, 10),))
        assert planner.plan(["p0", "p1"], lambda v: "p0") == ()

    def test_skew_produces_batched_moves(self):
        planner = make_planner()
        feed(planner, "p0", [(0.0, 0.0), (1.0, 0.9), (2.0, 1.8)],
             load=(("a", 30), ("b", 20), ("c", 10)))
        feed(planner, "p1", [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)])
        feed(planner, "p2", [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)])
        moves = planner.plan(["p0", "p1", "p2"], lambda v: "p0")
        assert len(moves) > 1  # a batch, not one hot vertex
        assert all(source == "p0" for _v, source, _t in moves)
        assert {target for _v, _s, target in moves} <= {"p1", "p2"}
        # The heaviest vertex moves first.
        assert moves[0][0] == "a"

    def test_batch_capped(self):
        planner = make_planner(migration_max_batch=2)
        load = tuple((f"v{i}", 10) for i in range(8))
        feed(planner, "p0", [(0.0, 0.0), (1.0, 0.9), (2.0, 1.8)],
             load=load)
        feed(planner, "p1", [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)])
        moves = planner.plan(["p0", "p1"], lambda v: "p0")
        assert len(moves) <= 2

    def test_stale_samples_skipped(self):
        """Vertices whose ownership already changed are not re-moved."""
        planner = make_planner()
        feed(planner, "p0", [(0.0, 0.0), (1.0, 0.9), (2.0, 1.8)],
             load=(("a", 10), ("b", 10)))
        feed(planner, "p1", [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)])
        moves = planner.plan(["p0", "p1"],
                             lambda v: "p1" if v == "a" else "p0")
        assert all(vertex != "a" for vertex, _s, _t in moves)

    def test_forget_invalidates_rates(self):
        planner = make_planner()
        feed(planner, "p0", [(0.0, 0.0), (1.0, 0.9)],
             load=(("a", 10),))
        feed(planner, "p1", [(0.0, 0.0), (1.0, 0.0)])
        assert planner.imbalanced(["p0", "p1"])
        planner.forget("p1")
        assert not planner.imbalanced(["p0", "p1"])
        assert planner.plan(["p0", "p1"], lambda v: "p0") == ()

    def test_move_only_when_beneficial(self):
        """A vertex carrying the whole source load is not shifted onto an
        equally busy target (that would just invert the imbalance)."""
        planner = make_planner()
        feed(planner, "p0", [(0.0, 0.0), (1.0, 0.9), (2.0, 1.8)],
             load=(("a", 100),))
        feed(planner, "p1", [(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)])
        feed(planner, "p2", [(0.0, 0.0), (1.0, 0.0), (2.0, 0.1)])
        moves = planner.plan(["p0", "p1", "p2"], lambda v: "p0")
        # Moving "a" (the whole of p0's load) to p2 leaves p2 hotter than
        # p0 was; the benefit check must reject it.
        assert moves == ()
