"""Unit tests for the DES kernel: clock, event ordering, cancellation."""

import pytest

from repro.errors import SimulationError
from repro.simulator import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, fired.append, "b")
        queue.push(1.0, fired.append, "a")
        queue.push(3.0, fired.append, "c")
        while (event := queue.pop()) is not None:
            event.callback(*event.args)
        assert fired == ["a", "b", "c"]

    def test_fifo_within_same_time(self):
        queue = EventQueue()
        order = [queue.push(1.0, lambda: None).seq for _ in range(5)]
        popped = []
        while (event := queue.pop()) is not None:
            popped.append(event.seq)
        assert popped == order

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        drop = queue.push(0.5, lambda: None)
        drop.cancel()
        assert queue.pop() is keep
        assert queue.pop() is None

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        drop = queue.push(0.5, lambda: None)
        queue.push(2.0, lambda: None)
        drop.cancel()
        assert queue.peek_time() == 2.0

    def test_nan_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.push(float("nan"), lambda: None)


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5, 1.5]
        assert sim.now == 1.5

    def test_run_until_time_bound(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, seen.append, t)
        sim.run(until=2.5)
        assert seen == [1.0, 2.0]
        assert sim.now == 2.5
        sim.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_run_max_events(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, seen.append, t)
        sim.run(max_events=2)
        assert seen == [1.0, 2.0]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0

    def test_stop_interrupts_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]

    def test_run_until_predicate(self):
        sim = Simulator()
        box = {"n": 0}

        def bump():
            box["n"] += 1
            sim.schedule(1.0, bump)

        sim.schedule(1.0, bump)
        sim.run_until(lambda: box["n"] >= 5)
        assert box["n"] == 5

    def test_run_until_raises_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False)

    def test_duplicate_actor_names_rejected(self):
        from repro.simulator import Actor

        class Noop(Actor):
            def handle(self, message, sender):
                return 0.0

        sim = Simulator()
        Noop(sim, "a")
        with pytest.raises(SimulationError):
            Noop(sim, "a")

    def test_unknown_actor_lookup_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.actor("ghost")
