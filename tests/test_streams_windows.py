"""Unit + property tests for stream windowing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams import ADD_EDGE, StreamTuple, prefix_at
from repro.streams.windows import sliding_window, tumbling_windows


def tup(t, payload, weight=1):
    return StreamTuple(t, ADD_EDGE, payload, weight)


class TestSlidingWindow:
    def test_items_expire_after_window(self):
        stream = sliding_window([tup(1.0, "a"), tup(2.0, "b")], window=5.0)
        live_at_3 = prefix_at(stream, 3.0)
        assert live_at_3.multiplicity(ADD_EDGE, "a") == 1
        live_at_7 = prefix_at(stream, 7.0)
        assert live_at_7.multiplicity(ADD_EDGE, "a") == 0
        assert live_at_7.multiplicity(ADD_EDGE, "b") == 0

    def test_retraction_timestamps(self):
        stream = sliding_window([tup(1.0, "a")], window=2.5)
        assert [s.timestamp for s in stream] == [1.0, 3.5]
        assert [s.weight for s in stream] == [1, -1]

    def test_existing_retractions_pass_through(self):
        stream = sliding_window([tup(1.0, "a"), tup(2.0, "a", weight=-1)],
                                window=10.0)
        live_at_5 = prefix_at(stream, 5.0)
        assert live_at_5.multiplicity(ADD_EDGE, "a") == 0

    def test_output_sorted(self):
        stream = sliding_window([tup(5.0, "x"), tup(1.0, "y")], window=1.0)
        times = [s.timestamp for s in stream]
        assert times == sorted(times)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            sliding_window([], window=0.0)

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.integers(0, 5)), max_size=30),
        st.floats(min_value=0.1, max_value=10))
    def test_property_window_content_matches_naive(self, items, window):
        """At any probe instant, the windowed stream's live multiset equals
        the naive 'items inserted within the last `window` seconds'."""
        stream = sliding_window([tup(t, p) for t, p in items], window)
        for probe in (0.0, 5.0, 50.0, 100.0):
            live = prefix_at(stream, probe)
            for _t, payload in items:
                expected = sum(
                    1 for t, p in items
                    if p == payload and t <= probe and t + window > probe)
                assert live.multiplicity(ADD_EDGE, payload) == expected


class TestTumblingWindows:
    def test_groups_by_width(self):
        stream = [tup(0.5, "a"), tup(1.5, "b"), tup(1.7, "c"),
                  tup(3.2, "d")]
        windows = list(tumbling_windows(stream, width=1.0))
        assert [(i, [s.payload for s in ts]) for i, ts in windows] == [
            (0, ["a"]), (1, ["b", "c"]), (3, ["d"])]

    def test_unsorted_input_ok(self):
        stream = [tup(3.0, "late"), tup(0.1, "early")]
        windows = list(tumbling_windows(stream, width=1.0))
        assert windows[0][1][0].payload == "early"

    def test_width_validation(self):
        with pytest.raises(ValueError):
            list(tumbling_windows([], width=-1.0))

    def test_empty_stream(self):
        assert list(tumbling_windows([], width=1.0)) == []
