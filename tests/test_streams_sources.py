"""Unit tests for stream sources, rate schedules and reservoir sampling."""

import numpy as np
import pytest

from repro.streams import (ADD_EDGE, REMOVE_EDGE, BurstyRate, PoissonRate,
                           RecencyBiasedBuffer, ReservoirSampler, UniformRate,
                           edge_stream, instance_stream, point_stream,
                           sample_is_uniform, split_prefix)


class TestRateSchedules:
    def test_uniform_rate_spacing(self):
        times = list(UniformRate(rate=4.0).timestamps(4))
        assert times == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_uniform_rate_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            UniformRate(rate=0.0)

    def test_poisson_rate_deterministic_per_seed(self):
        a = list(PoissonRate(2.0, np.random.default_rng(1)).timestamps(10))
        b = list(PoissonRate(2.0, np.random.default_rng(1)).timestamps(10))
        assert a == b

    def test_poisson_mean_rate(self):
        times = list(PoissonRate(10.0,
                                 np.random.default_rng(0)).timestamps(2000))
        assert times[-1] == pytest.approx(200.0, rel=0.15)

    def test_bursty_rate_groups(self):
        times = list(BurstyRate(burst_size=3, period=1.0).timestamps(7))
        assert times == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0]


class TestEdgeStream:
    def test_insert_only(self):
        stream = edge_stream([(1, 2), (2, 3)], UniformRate(1.0))
        assert [s.kind for s in stream] == [ADD_EDGE, ADD_EDGE]
        assert [s.weight for s in stream] == [1, 1]
        assert stream[0].timestamp < stream[1].timestamp

    def test_deletions_interleaved(self):
        rng = np.random.default_rng(0)
        edges = [(i, i + 1) for i in range(50)]
        stream = edge_stream(edges, UniformRate(1.0),
                             delete_fraction=0.2, rng=rng)
        removes = [s for s in stream if s.kind == REMOVE_EDGE]
        assert len(removes) == 10
        assert all(s.weight == -1 for s in removes)
        # Every retraction is of an edge that is actually inserted.
        inserted = {s.payload for s in stream if s.kind == ADD_EDGE}
        assert all(s.payload in inserted for s in removes)

    def test_delete_fraction_requires_rng(self):
        with pytest.raises(ValueError):
            edge_stream([(1, 2)], UniformRate(1.0), delete_fraction=0.5)

    def test_point_and_instance_streams(self):
        points = point_stream([(0.0, 1.0), (2.0, 3.0)], UniformRate(1.0))
        instances = instance_stream(["i1"], UniformRate(1.0))
        assert len(points) == 2 and len(instances) == 1

    def test_split_prefix(self):
        stream = edge_stream([(i, i + 1) for i in range(10)],
                             UniformRate(1.0))
        head, tail = split_prefix(stream, 0.3)
        assert len(head) == 3 and len(tail) == 7
        with pytest.raises(ValueError):
            split_prefix(stream, 1.5)


class TestReservoirSampler:
    def test_fills_then_caps(self):
        sampler = ReservoirSampler(5, np.random.default_rng(0))
        sampler.extend(range(3))
        assert sorted(sampler) == [0, 1, 2]
        sampler.extend(range(3, 100))
        assert len(sampler) == 5
        assert sampler.seen == 100

    def test_uniform_inclusion_over_trials(self):
        """Old and new items are equally likely to be retained — the
        property that makes SGD initial guesses valid (paper §3.2)."""
        population, capacity, trials = 20, 5, 3000
        counts = {i: 0 for i in range(population)}
        rng = np.random.default_rng(7)
        for _ in range(trials):
            sampler = ReservoirSampler(capacity, rng)
            sampler.extend(range(population))
            for item in sampler:
                counts[item] += 1
        assert sample_is_uniform(counts, trials, capacity, population,
                                 tolerance=0.2)

    def test_recency_buffer_is_biased(self):
        """Contrast case: the naive buffer forgets everything old."""
        buffer = RecencyBiasedBuffer(5)
        for item in range(100):
            buffer.offer(item)
        assert sorted(buffer) == [95, 96, 97, 98, 99]

    def test_draw_with_replacement(self):
        sampler = ReservoirSampler(3, np.random.default_rng(0))
        sampler.extend("abc")
        drawn = sampler.draw(10)
        assert len(drawn) == 10
        assert set(drawn) <= {"a", "b", "c"}

    def test_draw_from_empty(self):
        sampler = ReservoirSampler(3, np.random.default_rng(0))
        assert sampler.draw(4) == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            RecencyBiasedBuffer(-1)
