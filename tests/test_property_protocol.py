"""Property-based tests for the three-phase update protocol.

A miniature in-memory network executes the protocol over arbitrary
dependency graphs with adversarial (randomised) message interleavings and
checks the paper's claims: no deadlock, no starvation, exactly one commit
per scheduled update, and monotone iteration numbers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lamport import LamportClock
from repro.core.protocol import (CommitUpdate, SendAck, SendPrepare,
                                 VertexProtocol)


def run_network(n_vertices, edge_bits, dirty_bits, order_seed,
                changed_on_update=False):
    """Execute one protocol round over a random digraph, delivering
    messages in a seed-determined adversarial order.

    Returns (protocols, commit_counts).
    """
    import random

    rng = random.Random(order_seed)
    vertices = list(range(n_vertices))
    consumers = {v: set() for v in vertices}
    bit = 0
    for u in vertices:
        for v in vertices:
            if u != v:
                if (edge_bits >> bit) & 1:
                    consumers[u].add(v)
                bit += 1
    protocols = {v: VertexProtocol(v) for v in vertices}
    clocks = {v: LamportClock(f"p{v}") for v in vertices}
    commits = {v: 0 for v in vertices}
    queue = []

    def execute(vertex, actions):
        for action in actions:
            if isinstance(action, SendPrepare):
                queue.append(("prepare", action.consumer, vertex,
                              action.update_time))
            elif isinstance(action, SendAck):
                queue.append(("ack", action.producer, vertex,
                              action.iteration))
            elif isinstance(action, CommitUpdate):
                commits[vertex] += 1
                for consumer in consumers[vertex]:
                    queue.append(("update", consumer, vertex,
                                  action.iteration))

    initially_dirty = [v for v in vertices if (dirty_bits >> v) & 1]
    for vertex in initially_dirty:
        protocols[vertex].gathered_input(0, changed=True)
        execute(vertex, protocols[vertex].try_prepare(
            clocks[vertex], consumers[vertex]))

    steps = 0
    while queue and steps < 100_000:
        steps += 1
        index = rng.randrange(len(queue))
        kind, target, sender, value = queue.pop(index)
        protocol = protocols[target]
        if kind == "prepare":
            clocks[target].observe(value)
            execute(target, protocol.received_prepare(sender, value))
        elif kind == "ack":
            execute(target, protocol.received_ack(sender, value))
        elif kind == "update":
            protocol.gathered_update(sender, value,
                                     changed=changed_on_update
                                     and commits[target] == 0)
            execute(target, protocol.try_prepare(
                clocks[target], consumers[target]))
    assert steps < 100_000, "protocol did not quiesce"
    return protocols, commits, initially_dirty


graphs = st.tuples(
    st.integers(min_value=2, max_value=6),       # n vertices
    st.integers(min_value=0),                    # edge bits
    st.integers(min_value=1),                    # dirty bits
    st.integers(min_value=0, max_value=2**32),   # interleaving seed
)


class TestProtocolProperties:
    @settings(max_examples=120, deadline=None)
    @given(graphs)
    def test_no_deadlock_and_exactly_one_commit(self, params):
        """Every initially-dirty vertex commits exactly once; nothing is
        left mid-prepare — under any topology and message order."""
        n, edges, dirty, seed = params
        protocols, commits, initially_dirty = run_network(
            n, edges, dirty % (2 ** n) or 1, seed)
        for vertex, protocol in protocols.items():
            assert not protocol.preparing, f"{vertex} stuck preparing"
            assert not protocol.dirty, f"{vertex} left dirty"
            assert protocol.pending_list == []
        for vertex in initially_dirty:
            assert commits[vertex] == 1

    @settings(max_examples=60, deadline=None)
    @given(graphs)
    def test_cascading_updates_quiesce(self, params):
        """Even when updates trigger downstream changes (one round each),
        the network quiesces and consumers end at later iterations than
        the updates they observed."""
        n, edges, dirty, seed = params
        protocols, commits, _dirty = run_network(
            n, edges, dirty % (2 ** n) or 1, seed,
            changed_on_update=True)
        for protocol in protocols.values():
            assert not protocol.preparing
            assert not protocol.dirty

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["update", "input"]),
                              st.integers(min_value=0, max_value=50)),
                    max_size=30))
    def test_iteration_monotone(self, events):
        """A vertex's iteration number never decreases (causality)."""
        protocol = VertexProtocol("x")
        last = protocol.iteration
        for kind, value in events:
            if kind == "update":
                protocol.gathered_update(f"p{value}", value, changed=False)
            else:
                protocol.gathered_input(value, changed=False)
            assert protocol.iteration >= last
            last = protocol.iteration

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16),
           st.integers(min_value=0, max_value=2**32))
    def test_commit_iteration_at_least_max_consumer(self, consumer_iters,
                                                    seed):
        """τ'(x) = max(τ(x), τ(consumers)) — the commit happens at an
        iteration no earlier than any consumer's (paper §4.2)."""
        import random

        rng = random.Random(seed)
        iters = [(consumer_iters >> (4 * i)) & 0xF for i in range(4)]
        protocol = VertexProtocol("x")
        protocol.gathered_input(0, changed=True)
        clock = LamportClock("p")
        consumers = [f"c{i}" for i in range(4)]
        actions = protocol.try_prepare(clock, consumers)
        assert len(actions) == 4
        order = list(range(4))
        rng.shuffle(order)
        commit = None
        for index in order:
            for action in protocol.received_ack(consumers[index],
                                                iters[index]):
                if isinstance(action, CommitUpdate):
                    commit = action
        assert commit is not None
        assert commit.iteration >= max(iters)
