"""Unit tests for progress tracking and termination detection."""

import math

from repro.core.messages import ProgressReport
from repro.core.progress import ProgressTracker


def report(processor, seq, counters, watermark=math.inf, loop="main",
           inputs=0, unacked=0, buffered=0):
    return ProgressReport(loop=loop, processor=processor, seq=seq,
                          counters=counters, watermark=watermark,
                          inputs_gathered=inputs, unacked=unacked,
                          buffered=buffered)


class TestReportHandling:
    def test_stale_reports_rejected(self):
        tracker = ProgressTracker("main", ["p0"])
        assert tracker.apply_report(report("p0", 2, {0: (1, 0, 0)}))
        assert not tracker.apply_report(report("p0", 1, {}))
        assert tracker.totals(0) == (1, 0, 0)

    def test_unknown_processor_ignored(self):
        tracker = ProgressTracker("main", ["p0"])
        assert not tracker.apply_report(report("ghost", 1, {}))

    def test_totals_aggregate_processors(self):
        tracker = ProgressTracker("main", ["p0", "p1"])
        tracker.apply_report(report("p0", 1, {0: (2, 3, 1)}))
        tracker.apply_report(report("p1", 1, {0: (1, 1, 3)}))
        assert tracker.totals(0) == (3, 4, 4)
        assert tracker.total_commits() == 3


class TestTermination:
    def test_no_advance_until_all_reported(self):
        tracker = ProgressTracker("main", ["p0", "p1"])
        tracker.apply_report(report("p0", 1, {0: (1, 0, 0)}))
        assert tracker.advance() == []
        tracker.apply_report(report("p1", 1, {}))
        assert tracker.advance() == [0]

    def test_watermark_blocks_frontier(self):
        tracker = ProgressTracker("main", ["p0"])
        tracker.apply_report(report("p0", 1, {0: (1, 2, 0)}, watermark=0))
        assert tracker.advance() == []
        tracker.apply_report(report("p0", 2, {0: (1, 2, 0)}, watermark=1))
        assert tracker.advance() == [0]

    def test_inflight_messages_block_next_iteration(self):
        tracker = ProgressTracker("main", ["p0"])
        # Iteration 0 committed and sent 2 updates; none gathered yet.
        tracker.apply_report(report("p0", 1, {0: (1, 2, 0), 1: (1, 0, 0)},
                                    watermark=math.inf))
        # 0 terminates (its own sends do not block it)...
        assert tracker.advance() == [0]
        # ...but 1 cannot terminate until the sends of 0 are gathered.
        assert tracker.advance() == []
        tracker.apply_report(report("p0", 2, {0: (1, 2, 2), 1: (1, 0, 0)}))
        assert tracker.advance() == [1]

    def test_frontier_never_passes_activity(self):
        tracker = ProgressTracker("main", ["p0"])
        tracker.apply_report(report("p0", 1, {0: (1, 0, 0)}))
        assert tracker.advance() == [0]
        # No activity at iteration 1 -> frontier stays at 1.
        assert tracker.advance() == []
        assert tracker.frontier == 1

    def test_multiple_iterations_terminate_at_once(self):
        tracker = ProgressTracker("main", ["p0"])
        tracker.apply_report(report("p0", 1, {
            0: (1, 1, 1), 1: (1, 1, 1), 2: (1, 0, 0)}))
        assert tracker.advance() == [0, 1, 2]
        assert tracker.last_terminated == 2


class TestConvergence:
    def test_quiescent_loop_converges(self):
        tracker = ProgressTracker("b", ["p0", "p1"])
        tracker.apply_report(report("p0", 1, {0: (1, 1, 0)}, loop="b"))
        tracker.apply_report(report("p1", 1, {0: (0, 0, 1), 1: (1, 0, 0)},
                                    loop="b"))
        tracker.advance()
        assert tracker.converged

    def test_inflight_update_prevents_convergence(self):
        tracker = ProgressTracker("b", ["p0"])
        # One session message still unacknowledged: work is in flight.
        tracker.apply_report(report("p0", 1, {0: (1, 1, 0)}, loop="b",
                                    unacked=1))
        tracker.advance()
        assert not tracker.converged
        # Once the ack lands (and nothing else is pending), quiescent.
        tracker.apply_report(report("p0", 2, {0: (1, 1, 1)}, loop="b"))
        assert tracker.converged

    def test_buffered_updates_prevent_convergence(self):
        tracker = ProgressTracker("b", ["p0"])
        tracker.apply_report(report("p0", 1, {0: (1, 1, 1)}, loop="b",
                                    buffered=2))
        tracker.advance()
        assert not tracker.converged

    def test_pending_work_prevents_convergence(self):
        tracker = ProgressTracker("b", ["p0"])
        tracker.apply_report(report("p0", 1, {0: (1, 0, 0)}, watermark=1,
                                    loop="b"))
        tracker.advance()
        assert not tracker.converged

    def test_zero_work_branch_converges(self):
        """A fork that activates nothing converges as soon as every
        processor has reported once."""
        tracker = ProgressTracker("b", ["p0", "p1"])
        tracker.apply_report(report("p0", 1, {}, loop="b"))
        assert not tracker.converged
        tracker.apply_report(report("p1", 1, {}, loop="b"))
        assert tracker.converged

    def test_forget_processor_blocks_until_fresh_report(self):
        tracker = ProgressTracker("b", ["p0"])
        tracker.apply_report(report("p0", 5, {0: (1, 0, 0)}, loop="b"))
        tracker.advance()
        assert tracker.converged
        tracker.forget_processor("p0")
        assert not tracker.converged
        assert tracker.advance() == []
        # Fresh post-recovery report (seq restarts) is accepted.
        assert tracker.apply_report(report("p0", 1, {0: (1, 0, 0)},
                                           loop="b"))
        assert tracker.converged

    def test_inputs_tracked_for_merge_decision(self):
        tracker = ProgressTracker("main", ["p0", "p1"])
        tracker.apply_report(report("p0", 1, {}, inputs=10))
        tracker.apply_report(report("p1", 1, {}, inputs=5))
        assert tracker.total_inputs() == 15
