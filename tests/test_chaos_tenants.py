"""Multi-tenant chaos regressions (ISSUE satellite).

The campaign's :class:`repro.chaos.MultiTenantWorkload` pairs a chaos'd
tenant (SSSP, planted hot spot, live migrator, disk-backed) with a
clean tenant on one shared JobManager pool.  This suite pins the two
harshest schedules from the development campaigns — each shrunk to its
1-minimal single fault — plus a fault-free determinism check and the
planted-mutation teeth test, so the isolation oracle under fire can
never silently regress.
"""

from repro.chaos import (ChaosSchedule, FaultSpec, MultiTenantWorkload,
                         run_campaign)
from repro.chaos.campaign import T_MID
from repro.core import TornadoJob


def outcome_for(faults, skew=0):
    workload = MultiTenantWorkload(planted_restart_skew=skew)
    return workload.run_chaos(ChaosSchedule(seed=0, faults=faults))


class TestPinnedSchedules:
    def test_master_kill_mid_query_1minimal(self):
        # 1-minimal: kill the chaotic tenant's master exactly at its
        # mid-chaos query instant, while the hot-spot migration is in
        # flight.  The clean neighbour must not notice.
        outcome = outcome_for([
            FaultSpec(kind="kill", start=T_MID, duration=0.4,
                      a=TornadoJob.MASTER)])
        assert outcome.passed, [r.line() for r in outcome.failures()]

    def test_disk_stall_under_hot_spot_1minimal(self):
        # 1-minimal: stall the hot processor's disk while it owns every
        # vertex of the chaotic tenant.
        outcome = outcome_for([
            FaultSpec(kind="disk_stall", start=1.0, duration=0.5,
                      a="proc-0")])
        assert outcome.passed, [r.line() for r in outcome.failures()]

    def test_fault_free_run_is_deterministic(self):
        workload = MultiTenantWorkload()
        schedule = ChaosSchedule(seed=0, faults=[])
        first = workload.run_chaos(schedule)
        second = workload.run_chaos(schedule)
        assert first.passed, [r.line() for r in first.failures()]
        assert first.digest == second.digest


class TestOracleTeeth:
    def test_planted_skew_caught_on_the_chaotic_tenant_only(self):
        # The restart-skew mutation is planted in tenant A's manifest;
        # A's manifest-consistency oracle must catch it while every
        # isolation oracle for the clean tenant still holds.
        outcome = outcome_for([], skew=1)
        assert not outcome.passed
        failed = {r.oracle for r in outcome.failures()}
        assert failed == {"chaotic:manifest-consistency"}


class TestQuickCampaign:
    def test_seeded_schedules_all_pass(self):
        report = run_campaign([MultiTenantWorkload()],
                              schedules_per_workload=3, base_seed=1,
                              out_dir=None, log=lambda *_: None,
                              shrink_failures=False)
        assert report.passed, [r.line()
                               for o in report.failed
                               for r in o.failures()]
