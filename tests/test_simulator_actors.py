"""Unit tests for actors: service discipline, costs, failure semantics."""

from repro.simulator import Actor, Simulator


class Recorder(Actor):
    """Actor that records (time, message) and charges a fixed cost."""

    def __init__(self, sim, name, cost=1.0):
        super().__init__(sim, name)
        self.cost = cost
        self.seen = []

    def handle(self, message, sender):
        self.seen.append((self.sim.now, message, sender))
        return self.cost


class TestServiceDiscipline:
    def test_messages_served_serially_with_cost(self):
        sim = Simulator()
        actor = Recorder(sim, "worker", cost=2.0)
        actor.deliver("a", "x")
        actor.deliver("b", "x")
        sim.run()
        times = [t for t, _m, _s in actor.seen]
        # Second message waits for the first to finish its 2s service.
        assert times == [0.0, 2.0]
        assert actor.busy_time == 4.0
        assert actor.messages_handled == 2

    def test_speed_factor_scales_cost(self):
        sim = Simulator()
        actor = Recorder(sim, "slow", cost=1.0)
        actor.speed_factor = 3.0
        actor.deliver("a", "x")
        actor.deliver("b", "x")
        sim.run()
        assert [t for t, _m, _s in actor.seen] == [0.0, 3.0]

    def test_on_idle_called_when_inbox_drains(self):
        sim = Simulator()
        calls = []

        class Idler(Recorder):
            def on_idle(self):
                calls.append(self.sim.now)

        actor = Idler(sim, "w", cost=1.0)
        actor.deliver("a", "x")
        sim.run()
        assert calls == [1.0]

    def test_messages_during_service_queue_up(self):
        sim = Simulator()
        actor = Recorder(sim, "w", cost=5.0)
        actor.deliver("a", "x")
        sim.schedule(1.0, actor.deliver, "b", "x")
        sim.run()
        assert [t for t, _m, _s in actor.seen] == [0.0, 5.0]


class TestFailureSemantics:
    def test_down_actor_loses_messages(self):
        sim = Simulator()
        actor = Recorder(sim, "w")
        actor.fail()
        actor.deliver("lost", "x")
        sim.run()
        assert actor.seen == []

    def test_fail_clears_inbox(self):
        sim = Simulator()
        actor = Recorder(sim, "w", cost=10.0)
        actor.deliver("a", "x")
        actor.deliver("b", "x")
        sim.schedule(1.0, actor.fail)
        sim.run()
        # "a" started service at t=0; "b" was still queued and is lost.
        assert [m for _t, m, _s in actor.seen] == ["a"]

    def test_recover_resumes_service(self):
        sim = Simulator()
        actor = Recorder(sim, "w", cost=1.0)
        actor.fail()
        sim.schedule(5.0, actor.recover)
        sim.schedule(6.0, actor.deliver, "after", "x")
        sim.run()
        assert [m for _t, m, _s in actor.seen] == ["after"]

    def test_failure_hooks_fire(self):
        sim = Simulator()
        events = []

        class Hooked(Recorder):
            def on_failure(self):
                events.append("fail")

            def on_recover(self):
                events.append("recover")

        actor = Hooked(sim, "w")
        actor.fail()
        actor.recover()
        assert events == ["fail", "recover"]
