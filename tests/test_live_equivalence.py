"""Live-vs-sim equivalence suite (the DES-digest cross-check).

The same Tornado program runs once on the multiprocessing backend and
once on the discrete-event simulator with the same seed; the oracle in
``repro.live.oracle`` then asserts what the workload makes provable:

* **always** — identical final main-loop vertex state;
* **sync mode on tree dataflow with burst feeding** — identical
  protocol-phase totals (commits, updates sent/gathered, prepares,
  inputs) and therefore identical canonical digests.  In-degree ≤ 1
  plus per-link FIFO forces every gather sequence; feeding the whole
  stream at t≈0 removes the input-vs-update interleaving that changes
  re-announcement counts (see DESIGN.md §3h);
* **async mode** — both backends actually exercise the three-phase
  protocol (prepares > 0), final state still equal.

Plus the recovery path: SIGKILL a live worker mid-run, respawn it, and
require the byte-exact Dijkstra answer through the chaos exactness
oracle.
"""

import math

import pytest

from repro.algorithms import (EdgeStreamRouter, PageRankProgram,
                              reference_pagerank)
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.chaos.oracles import exactness
from repro.core import Application, TornadoConfig, TornadoJob
from repro.live import LiveJob, canonical_digest, cross_check
from repro.streams import UniformRate, edge_stream

#: Out-tree from "s": in-degree ≤ 1 everywhere, so per-link FIFO makes
#: every gather sequence — and hence the phase totals — deterministic.
TREE_EDGES = [("s", "a"), ("a", "b"), ("a", "c"), ("b", "d"),
              ("c", "e"), ("e", "f"), ("b", "g")]
#: Diamond-heavy general graph: multi-producer vertices, so only final
#: state (not counts) is comparable across backends.
GENERAL_EDGES = [("s", "a"), ("s", "b"), ("a", "c"), ("b", "c"),
                 ("c", "d"), ("d", "e"), ("b", "e"), ("e", "f")]
PR_TREE_EDGES = [("r", "a"), ("r", "b"), ("a", "c"), ("a", "d"),
                 ("b", "e"), ("e", "f")]

#: Rate high enough that every tuple lands at t≈0 (burst feeding).
BURST = UniformRate(rate=1e9)


def sssp_app():
    return Application(SSSPProgram("s"), EdgeStreamRouter(), name="sssp")


def pagerank_app():
    return Application(PageRankProgram(tolerance=1e-4), EdgeStreamRouter(),
                       name="pagerank")


def config(backend, **kwargs):
    kwargs.setdefault("n_processors", 2)
    kwargs.setdefault("report_interval",
                      0.02 if backend == "live" else 0.01)
    kwargs.setdefault("storage_backend", "memory")
    kwargs.setdefault("trace_enabled", True)
    kwargs.setdefault("seed", 7)
    return TornadoConfig(backend=backend, **kwargs)


def run_live(app, edges, **kwargs):
    job = TornadoJob(app(), config("live", **kwargs))
    try:
        job.feed(edge_stream(edges, BURST))
        job.run_until_converged(timeout=60.0)
        job.finalize(timeout=30.0)
    except BaseException:
        job.shutdown()
        raise
    return job


def run_sim(app, edges, **kwargs):
    job = TornadoJob(app(), config("sim", **kwargs))
    job.feed(edge_stream(edges, BURST))
    job.run_for(3.0)
    return job


def finite_distances(values):
    return {vid: value.distance for vid, value in values.items()
            if not math.isinf(value.distance)}


class TestBackendDispatch:
    def test_live_config_builds_livejob(self):
        job = TornadoJob(sssp_app(), config("live", n_processors=1))
        try:
            assert isinstance(job, LiveJob)
        finally:
            job.shutdown()

    def test_default_backend_is_sim(self):
        job = TornadoJob(sssp_app(), config("sim"))
        assert type(job) is TornadoJob

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            TornadoConfig(backend="threads")

    def test_live_rejects_rebalancer(self):
        with pytest.raises(ValueError):
            TornadoJob(sssp_app(), config("live", rebalance_enabled=True))


class TestSyncTreeEquivalence:
    def test_sssp_exact_digest_match(self):
        live = run_live(sssp_app, TREE_EDGES, delay_bound=1)
        try:
            sim = run_sim(sssp_app, TREE_EDGES, delay_bound=1)
            report = cross_check(live, sim)
            assert report["ok"]
            assert report["live_digest"] == report["sim_digest"]
            # Sync mode really ran without PREPAREs on both backends.
            assert live.total_prepares == 0
            assert sim.total_prepares == 0
            assert live.loop_totals("main") == sim.loop_totals("main")
        finally:
            live.shutdown()

    def test_pagerank_exact_digest_match(self):
        live = run_live(pagerank_app, PR_TREE_EDGES, delay_bound=1)
        try:
            sim = run_sim(pagerank_app, PR_TREE_EDGES, delay_bound=1)
            report = cross_check(live, sim)
            assert report["ok"]
            assert report["live_digest"] == report["sim_digest"]
            expected = reference_pagerank(PR_TREE_EDGES)
            for vertex, rank in expected.items():
                assert live.main_values()[vertex].rank == pytest.approx(
                    rank, abs=0.02)
        finally:
            live.shutdown()

    def test_live_digest_stable_across_runs(self):
        """Two live runs of the same seed digest identically — the
        determinism the bug batch (sorted scatter/fan-out/window
        iteration) exists to protect."""
        first = run_live(sssp_app, TREE_EDGES, delay_bound=1)
        try:
            first_digest = canonical_digest(first)
        finally:
            first.shutdown()
        second = run_live(sssp_app, TREE_EDGES, delay_bound=1)
        try:
            assert canonical_digest(second) == first_digest
        finally:
            second.shutdown()


class TestAsyncGeneralEquivalence:
    def test_sssp_final_state_matches_sim_and_dijkstra(self):
        live = run_live(sssp_app, GENERAL_EDGES, delay_bound=65536,
                        n_processors=3)
        try:
            sim = run_sim(sssp_app, GENERAL_EDGES, delay_bound=65536,
                          n_processors=3)
            # Counts are interleaving-dependent on multi-producer
            # vertices; final state must still agree exactly.
            report = cross_check(live, sim, include_counts=False)
            assert report["ok"]
            # Both backends genuinely exercised the three-phase protocol.
            assert live.total_prepares > 0
            assert sim.total_prepares > 0
            want = {v: d for v, d in
                    reference_sssp(GENERAL_EDGES, "s").items()
                    if not math.isinf(d)}
            assert finite_distances(live.main_values()) == want
        finally:
            live.shutdown()


class TestLiveRecovery:
    def test_worker_kill_and_respawn_exact(self):
        """SIGKILL one worker mid-loop; after respawn + hydration the
        deployment must still produce the byte-exact Dijkstra answer
        (the chaos campaigns' exactness oracle, now against real
        process death)."""
        job = TornadoJob(sssp_app(), config("live", n_processors=3,
                                            seed=3))
        try:
            job.feed(edge_stream(GENERAL_EDGES, BURST))
            job.pump_for(0.15)
            job.kill_worker("proc-1")
            job.pump_for(0.1)
            job.respawn_worker("proc-1")
            job.run_until_converged(timeout=60.0)
            got = finite_distances(job.main_values())
            want = {v: d for v, d in
                    reference_sssp(GENERAL_EDGES, "s").items()
                    if not math.isinf(d)}
            verdict = exactness("live-crash-exactness", got, want)
            assert verdict.passed, verdict.detail
            # The respawned worker reported under its new incarnation.
            assert job.reports["proc-1"].incarnation == 1
            assert job.reports["proc-0"].incarnation == 0
        finally:
            job.shutdown()
