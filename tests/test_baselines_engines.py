"""Unit tests for the baseline engines and the mini-batch runner."""

import pytest

from repro.algorithms import reference_pagerank, reference_sssp
from repro.baselines import (KMeansSolver, MemoryBudgetExceeded,
                             MiniBatchRunner, NaiadLikeEngine,
                             PageRankSolver, SSSPSolver, graphlab_like,
                             spark_like)
from repro.datagen import gaussian_mixture, livejournal_like
from repro.streams import UniformRate, edge_stream, point_stream


def graph_tuples(n_vertices=200, n_edges=800, seed=0):
    edges = livejournal_like(n_vertices, n_edges, seed=seed)
    return edges, edge_stream(edges, UniformRate(rate=1e6))


class TestBatchEngines:
    def test_spark_like_results_exact(self):
        edges, tuples = graph_tuples()
        engine = spark_like(SSSPSolver(0))
        engine.feed(tuples)
        run = engine.query()
        assert run.result == reference_sssp(edges, 0)
        assert run.latency > 0

    def test_graphlab_faster_than_spark(self):
        """GraphLab's in-memory execution beats Spark on every workload in
        the paper's Table 3."""
        edges, tuples = graph_tuples()
        spark = spark_like(SSSPSolver(0))
        graphlab = graphlab_like(SSSPSolver(0))
        spark.feed(tuples)
        graphlab.feed(tuples)
        assert graphlab.query().latency < spark.query().latency

    def test_spark_reload_grows_with_history(self):
        """Spark reloads everything per query, so latency grows with the
        accumulated input even when nothing changed."""
        _edges, tuples = graph_tuples()
        engine = spark_like(SSSPSolver(0))
        engine.feed(tuples[:400])
        first = engine.query().latency
        engine.feed(tuples[400:])
        second = engine.query().latency
        assert second > first

    def test_pagerank_through_engines(self):
        edges, tuples = graph_tuples(100, 400)
        engine = graphlab_like(PageRankSolver(tolerance=1e-8))
        engine.feed(tuples)
        run = engine.query()
        expected = reference_pagerank(edges)
        sample = list(expected)[:10]
        for vertex in sample:
            assert run.result[vertex] == pytest.approx(expected[vertex],
                                                       abs=5e-2)


class TestNaiadLikeEngine:
    def test_incremental_results_exact(self):
        edges, tuples = graph_tuples()
        engine = NaiadLikeEngine(SSSPSolver(0), epoch_size=100)
        engine.feed(tuples)
        run = engine.query()
        assert run.result == reference_sssp(edges, 0)
        expected_epochs = -(-len(tuples) // 100)
        assert engine.epochs_processed == expected_epochs

    def test_latency_grows_with_traces(self):
        """The difference-trace accumulation degrades Naiad linearly with
        the number of epochs (paper §6.5): the *same* work costs more on
        an engine that has accumulated more traces."""
        _edges, tuples = graph_tuples(300, 1500, seed=2)
        fresh = NaiadLikeEngine(SSSPSolver(0), epoch_size=150)
        aged = NaiadLikeEngine(SSSPSolver(0), epoch_size=150)
        aged.traces = 500  # pretend many epochs already happened
        fresh.feed(list(tuples))
        aged.feed(list(tuples))
        fresh_run = fresh.query()
        aged_run = aged.query()
        assert aged_run.latency > fresh_run.latency
        assert aged_run.traces > fresh_run.traces

    def test_memory_budget_exhaustion_on_kmeans(self):
        """KMeans difference traces touch every point every iteration —
        Naiad runs out of memory (paper Table 3: '-')."""
        points, _centres = gaussian_mixture(400, k=4, dim=5, seed=0)
        tuples = point_stream(points, UniformRate(rate=1e6))
        engine = NaiadLikeEngine(
            KMeansSolver([points[0], points[100], points[200],
                          points[300]]),
            epoch_size=50, memory_budget=2e5, dense_iterations=True)
        engine.feed(tuples)
        with pytest.raises(MemoryBudgetExceeded):
            engine.query()

    def test_epoch_size_validation(self):
        with pytest.raises(ValueError):
            NaiadLikeEngine(SSSPSolver(0), epoch_size=0)


class TestMiniBatchRunner:
    def test_results_exact_per_epoch(self):
        edges, tuples = graph_tuples(150, 600, seed=1)
        runner = MiniBatchRunner(SSSPSolver(0), batch_size=200)
        epochs = runner.run(tuples)
        assert len(epochs) == -(-len(tuples) // 200)
        assert epochs[-1].result == reference_sssp(edges, 0)

    def test_latency_flattens_at_small_batches(self):
        """Shrinking the batch stops helping once the communication floor
        dominates (paper Fig. 5a)."""
        _edges, tuples = graph_tuples(300, 2400, seed=4)
        p99 = {}
        for batch in (1200, 300, 40):
            runner = MiniBatchRunner(SSSPSolver(0), batch_size=batch)
            runner.run(list(tuples))
            p99[batch] = runner.latency_percentile(99.0)
        assert p99[300] < p99[1200]
        # Going from 300 down to 40 helps far less than 1200 -> 300.
        first_gain = p99[1200] - p99[300]
        second_gain = p99[300] - p99[40]
        assert second_gain < first_gain

    def test_warm_beats_cold(self):
        _edges, tuples = graph_tuples(200, 1000, seed=5)
        warm = MiniBatchRunner(SSSPSolver(0), batch_size=250)
        warm.run(list(tuples), warm=True)
        cold = MiniBatchRunner(SSSPSolver(0), batch_size=250)
        cold.run(list(tuples), warm=False)
        warm_total = sum(e.latency for e in warm.epochs)
        cold_total = sum(e.latency for e in cold.epochs)
        assert warm_total < cold_total

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            MiniBatchRunner(SSSPSolver(0), batch_size=0)
