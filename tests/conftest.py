"""Shared test fixtures.

``make_job`` is the SSSP job factory formerly duplicated as
``test_core_admission.make_job``; ``make_tenant_spec`` wraps the same
setup as a :class:`repro.core.TenantSpec` recipe for the multi-tenant
suites (tenancy, property, chaos), so a managed tenant and its solo
reference run are built from one definition.
"""

import pytest

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.pagerank import PageRankProgram
from repro.algorithms.sssp import SSSPProgram
from repro.core import (Application, TenantQuota, TenantSpec,
                        TornadoConfig, TornadoJob, reachability)
from repro.streams import UniformRate, edge_stream

SSSP_EDGES = [("s", "a"), ("s", "b"), ("a", "c"), ("b", "c"), ("c", "d"),
              ("d", "e"), ("e", "f"), ("f", "g"), ("b", "h"), ("h", "g")]


def sssp_application() -> Application:
    return Application(SSSPProgram("s"), EdgeStreamRouter(), name="sssp")


def pagerank_application() -> Application:
    return Application(PageRankProgram(tolerance=1e-4), EdgeStreamRouter(),
                       name="pagerank")


def reachability_application() -> Application:
    return Application(reachability("s"), EdgeStreamRouter(), name="reach")


#: Mixed-workload app factories, keyed by the names the tenant suites use.
TENANT_APPS = {
    "sssp": sssp_application,
    "pagerank": pagerank_application,
    "reachability": reachability_application,
}


@pytest.fixture
def sssp_edges():
    return list(SSSP_EDGES)


@pytest.fixture
def make_job():
    """Factory for a small fed-and-running SSSP job."""

    def factory(**config_kwargs):
        config_kwargs.setdefault("n_processors", 2)
        config_kwargs.setdefault("report_interval", 0.01)
        config_kwargs.setdefault("storage_backend", "memory")
        # Batch mode keeps branches slow enough to overlap.
        config_kwargs.setdefault("main_loop_mode", "batch")
        config_kwargs.setdefault("merge_policy", "never")
        job = TornadoJob(sssp_application(),
                         TornadoConfig(**config_kwargs))
        job.feed(edge_stream(SSSP_EDGES, UniformRate(rate=1000.0)))
        job.run_for(1.0)
        return job

    return factory


def tenant_spec(tenant, seed=0, app="sssp", horizon=3.0,
                query_times=((1.5, True),), quota=None, arrival=0,
                **config_kwargs):
    """Tenant recipe on the shared SSSP graph (or any app from
    ``TENANT_APPS`` via ``app=``)."""
    config_kwargs.setdefault("n_processors", 2)
    config_kwargs.setdefault("report_interval", 0.01)
    config_kwargs.setdefault("storage_backend", "memory")
    config_kwargs.setdefault("trace_enabled", True)
    config = TornadoConfig(seed=seed, **config_kwargs)
    return TenantSpec(
        tenant=tenant,
        app_factory=TENANT_APPS[app],
        config=config,
        quota=quota if quota is not None else TenantQuota(
            max_processors=config.n_processors),
        feeds=tuple(edge_stream(SSSP_EDGES, UniformRate(rate=1000.0))),
        query_times=query_times,
        horizon=horizon,
        arrival=arrival,
    )


@pytest.fixture
def make_tenant_spec():
    return tenant_spec
