"""Multi-tenant JobManager suite: the isolation oracle, fair scheduling,
quota enforcement, fault isolation, and the credit balancer.

The headline acceptance test parametrizes 3 seeds x 3 tenant mixes and
asserts, for every tenant, that its final state and flight-recorder
digest under the shared manager are byte-identical to the same spec run
alone on its own cluster (:func:`repro.core.run_solo`).
"""

import time

import pytest

from repro.core import JobManager, TenantQuota, run_solo
from repro.errors import QueryError, QuotaExceededError

MIXES = [
    ("sssp", "sssp", "pagerank"),
    ("sssp", "pagerank", "reachability"),
    ("pagerank", "reachability", "sssp"),
]


def tenant_name(index: int) -> str:
    return f"tenant-{index}"


class TestIsolationOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("mix", MIXES,
                             ids=["-".join(m) for m in MIXES])
    def test_digest_and_state_match_solo(self, seed, mix,
                                         make_tenant_spec):
        specs = [
            make_tenant_spec(
                tenant_name(index), seed=seed + index, app=app,
                horizon=2.5, query_times=((1.2, True),),
                quota=TenantQuota(weight=1 + index % 2,
                                  max_processors=2))
            for index, app in enumerate(mix)]
        manager = JobManager(pool_size=6, window=0.25)
        for spec in specs:
            manager.submit(spec)
        manager.run_until_all_done(max_rounds=2_000)
        assert set(manager.states().values()) == {"done"}
        digests = manager.digests()
        for spec in specs:
            assert not manager.unresolved_queries(spec.tenant)
            solo = run_solo(spec)
            assert digests[spec.tenant] == solo.trace.digest(), \
                f"{spec.tenant} digest diverged from its solo run"
            assert (manager.final_values(spec.tenant)
                    == solo.main_values())

    def test_event_budget_truncation_is_digest_neutral(
            self, make_tenant_spec):
        # A tiny per-window event budget forces many truncated windows;
        # the event sequence (and therefore the digest) must not change.
        spec = make_tenant_spec("alice", seed=7, horizon=2.0)
        manager = JobManager(pool_size=2, window=0.25,
                             window_max_events=200)
        manager.submit(spec)
        manager.run_until_all_done(max_rounds=10_000)
        record = manager.tenants["alice"]
        assert record.truncated > 0
        assert record.job.trace.digest() == run_solo(spec).trace.digest()

    def test_deferred_arrival_is_digest_neutral(self, make_tenant_spec):
        # bob cannot fit until alice finishes; admission is deferred and
        # retried, and bob's run is still byte-identical to solo.
        alice = make_tenant_spec("alice", seed=1, horizon=1.0,
                                 query_times=())
        bob = make_tenant_spec("bob", seed=2, horizon=1.5, arrival=1)
        manager = JobManager(pool_size=2, window=0.25)
        manager.submit(alice)
        assert manager.submit(bob) is None  # parked until arrival
        manager.run_until_all_done(max_rounds=1_000)
        assert manager.deferred_admissions > 0
        assert manager.states() == {"alice": "done", "bob": "done"}
        assert (manager.digests()["bob"]
                == run_solo(bob).trace.digest())

    def test_merged_dump_preserves_tenant_streams(self, make_tenant_spec):
        manager = JobManager(pool_size=4, window=0.25)
        for name, seed in (("alice", 1), ("bob", 2)):
            manager.submit(make_tenant_spec(name, seed=seed, horizon=1.0,
                                            query_times=()))
        manager.run_until_all_done(max_rounds=1_000)
        merged = manager.merged_dump()
        for name in ("alice", "bob"):
            slice_ = "\n".join(
                line.split("|", 1)[1] for line in merged.split("\n")
                if line.startswith(f"{name}|"))
            assert slice_ == manager.tenants[name].job.trace.dump()
        table = manager.render_digests()
        assert "alice" in table and "bob" in table


class TestFairScheduling:
    def test_weighted_round_robin_shares(self, make_tenant_spec):
        # Same horizon, 3x the weight => finishes in ~1/3 the rounds.
        manager = JobManager(pool_size=4, window=0.25)
        manager.submit(make_tenant_spec(
            "light", seed=1, horizon=3.0, query_times=(),
            quota=TenantQuota(weight=1, max_processors=2)))
        manager.submit(make_tenant_spec(
            "heavy", seed=2, horizon=3.0, query_times=(),
            quota=TenantQuota(weight=3, max_processors=2)))
        done_round = {}
        while manager.round_robin_once():
            for tenant, state in manager.states().items():
                if state == "done" and tenant not in done_round:
                    done_round[tenant] = manager.round
        for tenant, state in manager.states().items():
            if state == "done" and tenant not in done_round:
                done_round[tenant] = manager.round
        assert done_round["heavy"] < done_round["light"]
        assert manager.tenants["heavy"].windows == \
            manager.tenants["light"].windows  # same total work either way

    def test_runaway_tenant_cannot_starve_others(self, make_tenant_spec):
        # The runaway's windows are cut by the event budget every round,
        # but the well-behaved tenant still finishes (and exactly).
        manager = JobManager(pool_size=4, window=0.25,
                             window_max_events=300)
        runaway = make_tenant_spec("runaway", seed=1, horizon=50.0,
                                   query_times=())
        victim = make_tenant_spec("victim", seed=2, horizon=1.5)
        manager.submit(runaway)
        manager.submit(victim)
        for _ in range(400):
            if manager.states()["victim"] == "done":
                break
            manager.round_robin_once()
        assert manager.states()["victim"] == "done"
        assert manager.states()["runaway"] == "running"
        assert manager.tenants["runaway"].truncated > 0
        assert (manager.digests()["victim"]
                == run_solo(victim).trace.digest())


class TestFaultIsolation:
    def test_failed_tenant_does_not_corrupt_neighbour(
            self, make_tenant_spec, monkeypatch):
        manager = JobManager(pool_size=4, window=0.25)
        doomed = manager.submit(make_tenant_spec("doomed", seed=1,
                                                 horizon=3.0,
                                                 query_times=()))
        healthy = make_tenant_spec("healthy", seed=2, horizon=2.0)
        manager.submit(healthy)
        real_run = doomed.job.sim.run
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 3:
                raise RuntimeError("chaos inside tenant 'doomed'")
            return real_run(*args, **kwargs)

        monkeypatch.setattr(doomed.job.sim, "run", flaky)
        manager.run_until_all_done(max_rounds=1_000)
        assert manager.states() == {"doomed": "failed",
                                    "healthy": "done"}
        assert isinstance(doomed.error, RuntimeError)
        assert manager.pool.free_slots == 4
        solo = run_solo(healthy)
        assert manager.digests()["healthy"] == solo.trace.digest()
        assert manager.final_values("healthy") == solo.main_values()

    def test_store_quota_gc_then_eviction(self, make_tenant_spec):
        manager = JobManager(pool_size=4, window=0.25)
        manager.submit(make_tenant_spec(
            "hoarder", seed=1, horizon=3.0,
            quota=TenantQuota(max_processors=2, max_store_bytes=64)))
        bystander = make_tenant_spec("bystander", seed=2, horizon=1.5)
        manager.submit(bystander)
        manager.run_until_all_done(max_rounds=1_000)
        record = manager.tenants["hoarder"]
        assert record.state == "evicted"
        assert record.gcs >= 1  # GC ran before eviction
        assert isinstance(record.error, QuotaExceededError)
        assert manager.pool.free_slots == 4
        assert (manager.digests()["bystander"]
                == run_solo(bystander).trace.digest())

    def test_generous_store_quota_survives(self, make_tenant_spec):
        manager = JobManager(pool_size=2, window=0.25)
        manager.submit(make_tenant_spec(
            "alice", seed=1, horizon=1.5,
            quota=TenantQuota(max_processors=2,
                              max_store_bytes=1 << 30)))
        manager.run_until_all_done(max_rounds=1_000)
        record = manager.tenants["alice"]
        assert record.state == "done"
        assert record.gcs == 0


class TestLiveTenant:
    """A multiprocessing-backend tenant next to a sim tenant: the live
    oracle is final-state equality with its solo run (no virtual clock,
    so no digest), and the sim neighbour keeps its full digest oracle."""

    def test_live_tenant_matches_solo_final_state(self, make_tenant_spec):
        live = make_tenant_spec("live-alice", seed=7, backend="live",
                                query_times=(), horizon=1.0)
        sim = make_tenant_spec("sim-bob", seed=2, horizon=1.0,
                               query_times=())
        with JobManager(pool_size=4, window=0.25) as manager:
            manager.submit(live)
            manager.submit(sim)
            deadline = time.monotonic() + 90.0
            while manager.round_robin_once():
                assert time.monotonic() < deadline, manager.states()
            assert manager.states() == {"live-alice": "done",
                                        "sim-bob": "done"}
            # Live tenants have no flight recorder; sim neighbour keeps
            # its digest oracle.
            assert set(manager.digests()) == {"sim-bob"}
            assert (manager.digests()["sim-bob"]
                    == run_solo(sim).trace.digest())
            managed = manager.final_values("live-alice")
        solo = run_solo(live)
        try:
            solo_values = solo.main_values()
        finally:
            solo.shutdown()
        assert managed == solo_values

    def test_live_tenant_rejects_scheduled_queries(self, make_tenant_spec):
        manager = JobManager(pool_size=2)
        with pytest.raises(QueryError):
            manager.submit(make_tenant_spec(
                "live-alice", backend="live",
                query_times=((0.5, True),)))
        assert manager.pool.free_slots == 2  # rejection left no residue


class TestCreditBalancer:
    def test_planner_moves_credit_to_the_busy_tenant(
            self, make_tenant_spec, monkeypatch):
        manager = JobManager(pool_size=4, window=0.25, balance_every=1)
        idle_rec = manager.submit(make_tenant_spec(
            "idle-rich", seed=1, horizon=40.0, query_times=(),
            quota=TenantQuota(weight=3, max_processors=2)))
        busy_rec = manager.submit(make_tenant_spec(
            "busy", seed=2, horizon=40.0, query_times=(),
            quota=TenantQuota(weight=1, max_processors=2)))
        # Pin the load signal: one tenant reads fully idle, the other
        # fully busy (slots x clock of busy time => zero idle).
        monkeypatch.setattr(idle_rec.job.master, "total_busy_time",
                            lambda: 0.0)
        monkeypatch.setattr(
            busy_rec.job.master, "total_busy_time",
            lambda: len(busy_rec.slots) * busy_rec.job.sim.now)
        for _ in range(6):
            manager.round_robin_once()
        assert manager.credit_moves >= 1
        assert manager._effective_weight("busy") > 1
        assert manager._effective_weight("idle-rich") >= 1  # floor holds

    def test_weight_one_tenant_never_donates_its_last_credit(
            self, make_tenant_spec, monkeypatch):
        manager = JobManager(pool_size=4, window=0.25, balance_every=1)
        only = manager.submit(make_tenant_spec(
            "solo-credit", seed=1, horizon=40.0, query_times=(),
            quota=TenantQuota(weight=1, max_processors=2)))
        other = manager.submit(make_tenant_spec(
            "other", seed=2, horizon=40.0, query_times=(),
            quota=TenantQuota(weight=1, max_processors=2)))
        monkeypatch.setattr(only.job.master, "total_busy_time",
                            lambda: 0.0)
        monkeypatch.setattr(
            other.job.master, "total_busy_time",
            lambda: len(other.slots) * other.job.sim.now)
        for _ in range(6):
            manager.round_robin_once()
        # The planner's cost/benefit test charges a lone token the whole
        # rate, so a weight-1 tenant keeps its only credit.
        assert manager.credit_moves == 0
        assert manager._effective_weight("solo-credit") == 1
