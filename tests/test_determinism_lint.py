"""Satellite bugfix pin: nondeterminism-leak lint + cross-hash-seed digest.

Two layers of defence for same-seed reproducibility:

1. A grep-based lint over the source tree.  The deterministic runtime
   (``core``, ``simulator``, ``storm``, ``storage``, ``streams``,
   ``algorithms``, ``chaos``) must never read a wall clock or draw from
   unseeded/global randomness — everything flows from the virtual clock
   and ``RandomStreams``.  Wall-clock reads are whitelisted only where
   they are the point: the live backend's timers/timeouts and the bench
   harnesses' elapsed-time measurement.

2. An end-to-end check that the canonical run digest is identical under
   different ``PYTHONHASHSEED`` values — the exact leak class the bug
   batch fixed (set/dict iteration order reaching scatter order,
   PREPARE fan-out and window flushes differs per hash seed; sorting at
   those boundaries makes two OS processes agree).
"""

import pathlib
import re
import subprocess
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Packages that must stay wall-clock-free and global-randomness-free.
DETERMINISTIC_PACKAGES = ("core", "simulator", "storm", "storage",
                          "streams", "algorithms", "chaos", "datagen")

#: (pattern, why it is banned, packages it is banned in — None = all,
#: file names exempt from the rule).
RULES = [
    (re.compile(r"\btime\.time\("),
     "wall-clock epoch read; use the virtual clock (or perf_counter in "
     "host-side harness code)", None, ()),
    (re.compile(r"\btime\.monotonic\(|\btime\.perf_counter\("),
     "wall-clock read inside the deterministic runtime",
     DETERMINISTIC_PACKAGES, ()),
    (re.compile(r"^\s*(import random\b|from random\b)", re.MULTILINE),
     "global random module; use RandomStreams / np.random.default_rng("
     "seed)", None, ()),
    (re.compile(r"np\.random\.seed\(|numpy\.random\.seed\("),
     "global numpy RNG state", None, ()),
    (re.compile(r"default_rng\(\s*\)"),
     "unseeded Generator; pass an explicit seed", None, ()),
    # The columnar dependency boundary: the scalar runtime and the wire
    # format must stay importable (and unpicklable) without numpy; only
    # the columnar modules may bind it at import time.  Function-level
    # (indented, lazy) imports behind the TornadoConfig.columnar gate
    # are the sanctioned escape hatch.
    (re.compile(r"^(import numpy\b|from numpy\b)", re.MULTILINE),
     "module-top-level numpy import inside the scalar runtime; import "
     "lazily behind the columnar gate instead",
     ("core", "storage", "live"), ("columnar.py",)),
]


#: Wire-path modules that must never import numpy at all — not even
#: lazily.  The ColumnBatch vocabulary and its pack/unpack stages stage
#: plain tuples precisely so every live-wire envelope pickles without
#: the columnar dependency; a lazy import here is how an ndarray column
#: would sneak into a pickled frame unnoticed.
NUMPY_FREE_FILES = ("core/messages.py", "core/processor.py",
                    "live/wire.py")
NUMPY_IMPORT = re.compile(r"^\s*(import\s+numpy\b|from\s+numpy\b)",
                          re.MULTILINE)


def _package_of(path: pathlib.Path) -> str:
    return path.relative_to(SRC).parts[0]


def violations():
    found = []
    for path in sorted(SRC.rglob("*.py")):
        package = _package_of(path)
        text = path.read_text()
        for pattern, why, packages, exempt in RULES:
            if packages is not None and package not in packages:
                continue
            if path.name in exempt:
                continue
            for match in pattern.finditer(text):
                line = text.count("\n", 0, match.start()) + 1
                found.append(f"{path.relative_to(SRC)}:{line}: "
                             f"{match.group(0).strip()!r} — {why}")
    return found


class TestNondeterminismLint:
    def test_no_wall_clock_or_global_randomness(self):
        found = violations()
        assert not found, "nondeterminism leaks:\n" + "\n".join(found)

    def test_lint_actually_bites(self):
        """The rules match the constructs they claim to ban (guard
        against a silently dead lint)."""
        assert RULES[0][0].search("now = time.time()")
        assert RULES[1][0].search("t0 = time.monotonic()")
        assert RULES[2][0].search("import random\n")
        assert RULES[2][0].search("    from random import choice\n")
        assert not RULES[2][0].search("from repro.simulator.randomness "
                                      "import RandomStreams\n")
        assert RULES[4][0].search("rng = np.random.default_rng()")
        assert not RULES[4][0].search("rng = np.random.default_rng(7)")
        assert RULES[5][0].search("import numpy as np\n")
        assert RULES[5][0].search("from numpy import float64\n")
        # Lazy (function-level) imports are the sanctioned escape hatch.
        assert not RULES[5][0].search("    import numpy as np\n")


class TestWireStaysNumpyFree:
    def test_wire_vocabulary_never_imports_numpy(self):
        """Stricter than the top-level-import rule: the ColumnBatch
        vocabulary and its pack/unpack seams may not import numpy even
        lazily — column runs are plain tuples end to end."""
        found = []
        for rel in NUMPY_FREE_FILES:
            text = (SRC / rel).read_text()
            for match in NUMPY_IMPORT.finditer(text):
                line = text.count("\n", 0, match.start()) + 1
                found.append(f"{rel}:{line}: {match.group(0).strip()!r}")
        assert not found, "numpy on the wire path:\n" + "\n".join(found)

    def test_wire_lint_actually_bites(self):
        assert NUMPY_IMPORT.search("import numpy as np\n")
        assert NUMPY_IMPORT.search("    from numpy import float64\n")
        # Prose may say "numpy-free"; only import statements are banned.
        assert not NUMPY_IMPORT.search("# stays numpy-free\n")


DIGEST_SCRIPT = """
import hashlib
import sys
from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram
from repro.core import Application, TornadoConfig, TornadoJob
from repro.live.oracle import canonical_digest
from repro.streams import UniformRate, edge_stream

# Branching targets + async mode: both the scatter fan-out and the
# PREPARE fan-out iterate multi-element consumer sets, so any unsorted
# set iteration shows up in the digest as soon as the hash seed moves.
EDGES = [("s", "a"), ("s", "b"), ("a", "c"), ("b", "c"),
         ("c", "d"), ("c", "e"), ("b", "e"), ("e", "f")]
app = Application(SSSPProgram("s"), EdgeStreamRouter(), name="sssp")
job = TornadoJob(app, TornadoConfig(n_processors=3, report_interval=0.01,
                                    delay_bound=65536, trace_enabled=True,
                                    seed=11))
job.feed(edge_stream(EDGES, UniformRate(rate=1e9)))
job.run_for(3.0)
# Two sensitivities: the backend-portable canonical digest (final state
# + phase totals), and a sim-only digest over the *ordered* trace-event
# stream.  The DES is deterministic given the source, so the only thing
# that can move the ordered stream between interpreters is hash-order
# leaking into iteration (scatter fan-out, PREPARE fan-out, window
# flushes) — exactly the leak class under test.
stream = repr([(e.category, e.name, e.actor, e.fields)
               for e in job.trace]).encode()
sys.stdout.write(canonical_digest(job) + ":"
                 + hashlib.sha256(stream).hexdigest())
"""


def digest_under_hash_seed(hash_seed: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", DIGEST_SCRIPT],
        capture_output=True, text=True, timeout=120,
        env={"PYTHONPATH": str(SRC.parent),
             "PYTHONHASHSEED": hash_seed,
             "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


class TestHashSeedIndependence:
    def test_digest_identical_across_hash_seeds(self):
        """Same job, same seed, different interpreter hash seeds — the
        canonical digest (final state + phase totals) and the ordered
        trace-stream digest must not move.  Reverting the sorted
        fan-out in ``VertexProtocol.try_prepare`` (or the processor's
        scatter/window/recovery sorts) makes the stream digest diverge
        between hash seeds — verified by mutation when this test was
        written."""
        digests = {digest_under_hash_seed(seed)
                   for seed in ("0", "1", "31337")}
        assert len(digests) == 1, f"digest varies with hash seed: {digests}"
