"""Property test: arbitrary kill/recover schedules never break exactness.

Hypothesis draws a random subset of the cluster's actors (processors and
the master), a random kill time and a random downtime for each, runs the
SSSP job from the fault-tolerance suite under that schedule, and checks
the final distances are byte-identical to the sequential reference.  This
is the same oracle the chaos campaigns use, driven by hypothesis's own
shrinker instead of the campaign's greedy one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TornadoJob
from tests.test_core_fault_tolerance import distances, make_job, reference

ACTORS = ["proc-0", "proc-1", "proc-2", TornadoJob.MASTER]

kill_specs = st.lists(
    st.tuples(
        st.sampled_from(ACTORS),
        st.floats(min_value=0.01, max_value=1.2),   # kill time
        st.floats(min_value=0.05, max_value=0.8),   # downtime
    ),
    min_size=1, max_size=4,
    unique_by=lambda spec: spec[0],
)


@given(specs=kill_specs)
@settings(max_examples=15, deadline=None)
def test_random_kill_recover_schedule_is_exact(specs):
    job = make_job(delay_bound=65536)
    for actor, at, downtime in specs:
        job.failures.kill_at(at, actor, recover_after=downtime)
    job.run_for(6.0)
    assert distances(job.main_values()) == reference()
