"""Unit tests for the live backend's building blocks: the LiveKernel
facade, the journaling WorkerStore, the incarnation-namespaced
transport, the star router, and the oracle's canonicalisation."""

import pytest

from repro.errors import SimulationError
from repro.live.kernel import LiveKernel
from repro.live.oracle import _canon
from repro.live.store import LiveBackend, WorkerStore
from repro.live.transport import (INCARNATION_STRIDE, LiveTransport,
                                  MasterNet, WorkerNet)
from repro.live.wire import StoreWrite, Wire


class FakeQueue:
    def __init__(self):
        self.items = []

    def put(self, item):
        self.items.append(item)


class FakeLink:
    def __init__(self, alive=True):
        self.queue_in = FakeQueue()
        self.alive = alive


class TestLiveKernel:
    def test_ready_fifo_order(self):
        kernel = LiveKernel()
        ran = []
        kernel.schedule(0.5, ran.append, "first")
        kernel.schedule(0.0, ran.append, "second")
        kernel.run_ready()
        # Delay is a virtual cost, not an ordering key: FIFO wins.
        assert ran == ["first", "second"]

    def test_negative_delay_rejected(self):
        kernel = LiveKernel()
        with pytest.raises(SimulationError):
            kernel.schedule(-1.0, lambda: None)

    def test_run_ready_limit_bounds_batch(self):
        kernel = LiveKernel()
        ran = []
        for i in range(10):
            kernel.schedule(0.0, ran.append, i)
        assert kernel.run_ready(limit=4) == 4
        assert kernel.ready_count == 6

    def test_cancelled_handle_not_run(self):
        kernel = LiveKernel()
        ran = []
        handle = kernel.schedule(0.0, ran.append, "no")
        handle.cancel()
        kernel.run_ready()
        assert ran == []

    def test_timer_fires_only_after_deadline(self):
        kernel = LiveKernel()
        ran = []
        kernel.schedule_timer(30.0, ran.append, "later")
        assert kernel.fire_due_timers() == 0
        assert ran == []
        delay = kernel.next_timer_delay()
        assert delay is not None and delay > 25.0

    def test_cancelled_timer_skipped(self):
        kernel = LiveKernel()
        handle = kernel.schedule_timer(0.0, lambda: None)
        handle.cancel()
        assert kernel.fire_due_timers() == 0
        assert kernel.next_timer_delay() is None

    def test_release_parked_in_timestamp_order(self):
        kernel = LiveKernel()
        ran = []
        kernel.schedule_at(2.0, ran.append, "late")
        kernel.schedule_at(1.0, ran.append, "early")
        assert kernel.parked_count == 2
        kernel.release_parked()
        kernel.run_ready()
        assert ran == ["early", "late"]
        assert kernel.parked_count == 0

    def test_lamport_clock_merges(self):
        kernel = LiveKernel()
        first = kernel.tick()
        kernel.observe(100)
        assert kernel.tick() > 100 > first
        # now is the counter, never wall time.
        stamp = kernel.tick()
        assert kernel.now == float(stamp)


class TestWorkerStore:
    def test_puts_are_journaled(self):
        store = WorkerStore()
        store.put("main", "v", 1, "x")
        store.put_many("main", [("w", 1, "y")])
        journal = store.take_journal()
        assert journal == [("main", "v", 1, "x"), ("main", "w", 1, "y")]
        assert store.take_journal() == []

    def test_hydrate_does_not_journal(self):
        store = WorkerStore()
        assert store.hydrate([("main", "v", 3, "z")]) == 1
        assert store.take_journal() == []
        assert store.get("main", "v", 3) == "z"

    def test_backend_ships_journal_with_frontiers(self):
        store = WorkerStore()
        net_outbound = FakeQueue()

        class Net:
            @staticmethod
            def send_control(frame):
                net_outbound.put(frame)

        backend = LiveBackend(store, Net(), "proc-0")
        store.put("main", "v", 1, "x")
        called = []
        backend.flush(1, lambda *a: called.append(a), "snapshots",
                      (("main", 1),))
        assert called == [("snapshots", (("main", 1),))]
        (frame,) = net_outbound.items
        assert isinstance(frame, StoreWrite)
        assert frame.processor == "proc-0"
        assert frame.entries == (("main", "v", 1, "x"),)
        assert frame.frontiers == (("main", 1),)

    def test_empty_flush_ships_nothing(self):
        store = WorkerStore()
        net_outbound = FakeQueue()

        class Net:
            @staticmethod
            def send_control(frame):
                net_outbound.put(frame)

        backend = LiveBackend(store, Net(), "proc-0")
        backend.flush(0, lambda: None)
        assert net_outbound.items == []


class TestLiveFabric:
    def test_worker_net_wraps_remote_sends(self):
        kernel = LiveKernel()
        outbound = FakeQueue()
        net = WorkerNet(kernel, "proc-0", outbound)
        net.send("proc-0", "proc-1", "payload")
        (wire,) = outbound.items
        assert isinstance(wire, Wire)
        assert (wire.src, wire.dst, wire.payload) == \
            ("proc-0", "proc-1", "payload")
        assert wire.stamp == kernel._counter  # stamped at send time

    def test_master_net_drops_to_dead_worker(self):
        kernel = LiveKernel()
        links = {"proc-0": FakeLink(alive=True),
                 "proc-1": FakeLink(alive=False)}
        net = MasterNet(kernel, links)
        net.send("master", "proc-0", "up")
        net.send("master", "proc-1", "down")
        net.send("master", "ghost", "nowhere")
        assert len(links["proc-0"].queue_in.items) == 1
        assert links["proc-1"].queue_in.items == []
        assert net.dropped == 2

    def test_incarnation_namespaces_message_ids(self):
        """A respawned worker restarts its id counter; without the
        incarnation offset its fresh envelopes would collide with ids
        its peers' dedup windows remember from the previous life."""
        kernel = LiveKernel()
        outbound = FakeQueue()
        net = WorkerNet(kernel, "proc-0", outbound)
        old = LiveTransport(kernel, net, "proc-0", incarnation=0)
        new = LiveTransport(kernel, net, "proc-0", incarnation=1)
        old.send("proc-1", "from-first-life")
        new.send("proc-1", "from-second-life")
        old_env = outbound.items[0].payload
        new_env = outbound.items[1].payload
        assert old_env.msg_id == 1
        assert new_env.msg_id == INCARNATION_STRIDE + 1
        assert old_env.msg_id != new_env.msg_id


class TestOracleCanon:
    def test_dict_order_independent(self):
        forward = {1: "a", 2: "b", 3: "c"}
        backward = {}
        for key in reversed(list(forward)):
            backward[key] = forward[key]
        assert _canon(forward) == _canon(backward)

    def test_set_order_independent(self):
        assert _canon({"x", "y", "z"}) == _canon({"z", "x", "y"})

    def test_nested_dataclass(self):
        from repro.algorithms.sssp import SSSPValue
        a = SSSPValue(2.0, {"s": 2.0}, {"t": 1.0}, set())
        b = SSSPValue(2.0, {"s": 2.0}, {"t": 1.0}, set())
        assert _canon(a) == _canon(b)
        c = SSSPValue(3.0, {"s": 3.0}, {"t": 1.0}, set())
        assert _canon(a) != _canon(c)

    def test_negative_zero_normalised(self):
        assert _canon(-0.0) == _canon(0.0)
        assert _canon(1.5) != _canon(-1.5)
