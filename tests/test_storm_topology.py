"""Unit tests for topology building and groupings."""

import pytest

from repro.errors import TopologyError
from repro.storm import (AllGrouping, Bolt, FieldsGrouping, GlobalGrouping,
                         ShuffleGrouping, Spout, StormTuple, TopologyBuilder)


class NullSpout(Spout):
    def next_tuple(self):
        return False


class NullBolt(Bolt):
    def execute(self, tup):
        return 0.0


def make_tuple(values, component="c", stream="default"):
    return StormTuple(component, stream, values, tuple_id=1)


class TestTopologyBuilder:
    def test_builds_valid_topology(self):
        builder = TopologyBuilder("t")
        builder.set_spout("source", NullSpout, parallelism=2)
        builder.set_bolt("work", NullBolt, 3).shuffle_grouping("source")
        topology = builder.build()
        assert len(topology.spouts()) == 1
        assert len(topology.bolts()) == 1
        subscribers = topology.subscribers("source", "default")
        assert [spec.name for spec, _g in subscribers] == ["work"]

    def test_duplicate_names_rejected(self):
        builder = TopologyBuilder()
        builder.set_spout("x", NullSpout)
        with pytest.raises(TopologyError):
            builder.set_bolt("x", NullBolt)

    def test_unknown_upstream_rejected(self):
        builder = TopologyBuilder()
        builder.set_spout("s", NullSpout)
        declarer = builder.set_bolt("b", NullBolt)
        with pytest.raises(TopologyError):
            declarer.shuffle_grouping("ghost")

    def test_topology_without_spout_rejected(self):
        builder = TopologyBuilder()
        builder.set_bolt("b", NullBolt)
        with pytest.raises(TopologyError):
            builder.build()

    def test_bad_parallelism_rejected(self):
        builder = TopologyBuilder()
        with pytest.raises(TopologyError):
            builder.set_spout("s", NullSpout, parallelism=0)

    def test_multiple_streams_route_independently(self):
        builder = TopologyBuilder()
        builder.set_spout("s", NullSpout)
        builder.set_bolt("a", NullBolt).shuffle_grouping("s", "left")
        builder.set_bolt("b", NullBolt).shuffle_grouping("s", "right")
        topology = builder.build()
        assert [s.name for s, _g in topology.subscribers("s", "left")] == ["a"]
        assert [s.name for s, _g in topology.subscribers("s", "right")] == ["b"]


class TestGroupings:
    def test_shuffle_round_robins(self):
        grouping = ShuffleGrouping()
        targets = [grouping.targets(make_tuple({}), 3)[0] for _ in range(6)]
        assert targets == [0, 1, 2, 0, 1, 2]

    def test_fields_grouping_stable(self):
        grouping = FieldsGrouping(("key",))
        a1 = grouping.targets(make_tuple({"key": "a"}), 8)
        a2 = grouping.targets(make_tuple({"key": "a"}), 8)
        assert a1 == a2

    def test_fields_grouping_spreads(self):
        grouping = FieldsGrouping(("key",))
        targets = {grouping.targets(make_tuple({"key": k}), 16)[0]
                   for k in range(100)}
        assert len(targets) > 4

    def test_fields_grouping_needs_fields(self):
        with pytest.raises(TopologyError):
            FieldsGrouping(())

    def test_all_grouping_broadcasts(self):
        assert AllGrouping().targets(make_tuple({}), 4) == (0, 1, 2, 3)

    def test_global_grouping_targets_task_zero(self):
        assert GlobalGrouping().targets(make_tuple({}), 4) == (0,)
