"""The recorder as a regression oracle: same seed, identical trace.

Runs a shrunk version of the Fig. 8d workload (SSSP branch loop with a
mid-run processor failure) twice with the same seed and asserts the
flight-recorder dumps are byte-for-byte identical, then checks that the
per-iteration protocol-phase counts the bench needs are available.
"""

from dataclasses import replace

from repro.bench.workloads import SMALL, sssp_bundle
from repro.core import TornadoJob
from repro.obs import phase_counts, render_phase_table

TINY = replace(SMALL, n_vertices=80, n_edges=320, stream_rate=4000.0)


def _fig8d_style_run(seed: int, fast_path: bool = True) -> TornadoJob:
    """One shrunk Fig. 8d run: fork a branch from half the stream, kill
    proc-1 mid-branch, run to convergence."""
    bundle = sssp_bundle(TINY, delay_bound=256, main_loop_mode="batch",
                         merge_policy="never", report_interval=0.01,
                         gather_cost=1e-3, trace_enabled=True, seed=seed,
                         fast_path=fast_path)
    job = bundle.job
    job.feed(bundle.stream)
    cutoff = len(bundle.stream) // 2
    job.run_until(lambda: job.ingester.tuples_ingested >= cutoff)
    query_id = job.query(full_activation=True)
    job.failures.kill_at(job.sim.now + 0.05, "proc-1",
                         recover_after=0.3)
    job.run_until(lambda: job.ingester.query_done(query_id))
    return job


class TestTraceDeterminism:
    def test_same_seed_produces_identical_traces(self):
        first = _fig8d_style_run(seed=7)
        second = _fig8d_style_run(seed=7)
        assert first.trace.recorded == second.trace.recorded
        assert first.trace.dump() == second.trace.dump()
        assert first.trace.digest() == second.trace.digest()

    def test_fast_and_legacy_kernels_produce_identical_traces(self):
        """The fast path (timer wheel, compaction, coalescing) must not
        change a single byte of the flight-recorder trace — it only
        changes how fast the wall clock gets there."""
        fast = _fig8d_style_run(seed=7, fast_path=True)
        legacy = _fig8d_style_run(seed=7, fast_path=False)
        assert fast.trace.dump() == legacy.trace.dump()
        assert fast.trace.digest() == legacy.trace.digest()
        assert fast.sim.events_processed == legacy.sim.events_processed
        assert fast.metrics.snapshot() == legacy.metrics.snapshot()

    def test_metrics_are_deterministic_too(self):
        first = _fig8d_style_run(seed=3)
        second = _fig8d_style_run(seed=3)
        assert first.metrics.snapshot() == second.metrics.snapshot()

    def test_recorder_exposes_protocol_phases(self):
        job = _fig8d_style_run(seed=7)
        table = phase_counts(job.trace)
        assert table, "no protocol events recorded"
        branch_rows = {key: row for key, row in table.items()
                       if key[0].startswith("branch")}
        assert branch_rows, "no branch-loop phase rows"
        assert sum(row["commit"] for row in branch_rows.values()) > 0
        assert sum(row["update"] for row in branch_rows.values()) > 0
        # The rendered table is non-degenerate and parseable.
        text = render_phase_table(job.trace)
        assert len(text.splitlines()) >= 3

    def test_failure_run_records_network_drops_and_frontier(self):
        job = _fig8d_style_run(seed=7)
        counts = job.trace.counts()
        assert counts.get("progress.terminated", 0) > 0
        # The killed processor lost in-flight messages.
        assert any(key.startswith("net.drop") for key in counts)
        assert any(link.dropped > 0
                   for link in job.network.link_stats.values())

    def test_disabled_recorder_stays_empty(self):
        bundle = sssp_bundle(TINY, report_interval=0.01)
        bundle.feed_all()
        bundle.job.run_for(0.2)
        assert len(bundle.job.trace) == 0
        assert bundle.job.trace.recorded == 0
