"""Smoke tests: every bundled example runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    completed = subprocess.run([sys.executable, str(path)],
                               capture_output=True, text=True,
                               timeout=600)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "streaming_pagerank", "online_svm",
            "fault_tolerance_demo", "storm_wordcount"} <= names
