"""End-to-end integration tests for PageRank, connected components, KMeans
and SGD workloads running on the full Tornado runtime."""

import numpy as np
import pytest

from repro.algorithms import (ConnectedComponentsProgram, EdgeStreamRouter,
                              KMeansProgram, PageRankProgram, StaticRate,
                              reference_components, reference_kmeans,
                              reference_pagerank, svm_application)
from repro.algorithms.kmeans import PointRouter
from repro.algorithms.sgd import PARAM, HingeLoss
from repro.core import Application, TornadoConfig, TornadoJob
from repro.datagen import gaussian_mixture, higgs_like
from repro.streams import UniformRate, edge_stream, instance_stream, \
    point_stream


def config(**kwargs):
    kwargs.setdefault("n_processors", 3)
    kwargs.setdefault("report_interval", 0.01)
    kwargs.setdefault("storage_backend", "memory")
    return TornadoConfig(**kwargs)


class TestPageRankJob:
    EDGES = [(0, 1), (0, 2), (1, 2), (2, 0), (3, 2), (2, 3), (1, 3),
             (3, 0), (4, 0), (0, 4)]

    def run_job(self, **cfg):
        app = Application(PageRankProgram(tolerance=1e-4),
                          EdgeStreamRouter(), name="pagerank")
        job = TornadoJob(app, config(**cfg))
        job.feed(edge_stream(self.EDGES, UniformRate(rate=1000.0)))
        job.run_for(3.0)
        return job, job.query_and_wait()

    def test_matches_power_iteration(self):
        _job, result = self.run_job()
        expected = reference_pagerank(self.EDGES)
        for vertex, rank in expected.items():
            assert result.values[vertex].rank == pytest.approx(
                rank, abs=0.02)

    def test_synchronous_matches_too(self):
        _job, result = self.run_job(delay_bound=1)
        expected = reference_pagerank(self.EDGES)
        for vertex, rank in expected.items():
            assert result.values[vertex].rank == pytest.approx(
                rank, abs=0.02)

    def test_rank_mass_conserved(self):
        _job, result = self.run_job()
        total = sum(v.rank for v in result.values.values())
        assert total == pytest.approx(len(
            {u for e in self.EDGES for u in e}), rel=0.05)


class TestConnectedComponentsJob:
    EDGES = [(1, 2), (2, 3), (3, 4), (10, 11), (11, 12), (20, 21)]

    def test_labels_match_union_find(self):
        app = Application(ConnectedComponentsProgram(),
                          EdgeStreamRouter(undirected=True), name="cc")
        job = TornadoJob(app, config())
        job.feed(edge_stream(self.EDGES, UniformRate(rate=1000.0)))
        job.run_for(3.0)
        result = job.query_and_wait()
        expected = reference_components(self.EDGES)
        labels = {vid: value.label for vid, value in result.values.items()}
        assert labels == expected

    def test_components_merge_on_new_edge(self):
        app = Application(ConnectedComponentsProgram(),
                          EdgeStreamRouter(undirected=True), name="cc")
        job = TornadoJob(app, config())
        job.feed(edge_stream(self.EDGES, UniformRate(rate=1000.0)))
        job.run_for(3.0)
        before = job.query_and_wait()
        assert before.values[12].label == 10
        bridge = edge_stream([(4, 10)], UniformRate(rate=1000.0,
                                                    start=job.sim.now))
        job.feed(bridge)
        job.run_for(3.0)
        after = job.query_and_wait()
        assert after.values[12].label == 1
        assert after.values[21].label == 20  # untouched component


class TestKMeansJob:
    def make_job(self, n_points=96, k=2, dim=3, **cfg):
        points, _centres = gaussian_mixture(n_points, k=k, dim=dim,
                                            spread=8.0, noise=0.4, seed=3)
        initial = [points[0], points[-1]]
        program = KMeansProgram(k=k, n_shards=3, dim=dim, tolerance=1e-4,
                                input_batch=8)
        app = Application(program, PointRouter(k, 3, initial),
                          name="kmeans")
        job = TornadoJob(app, config(**cfg))
        job.feed(point_stream(points, UniformRate(rate=2000.0)))
        return job, points, initial

    def test_centroids_match_lloyd(self):
        job, points, initial = self.make_job()
        job.run_for(3.0)
        result = job.query_and_wait()
        positions = sorted(
            (tuple(np.round(v.position, 2))
             for vid, v in result.values.items() if vid[0] == "centroid"))
        expected = sorted(tuple(np.round(c, 2))
                          for c in reference_kmeans(points, initial))
        for got, want in zip(positions, expected):
            assert np.allclose(got, want, atol=0.3)

    def test_centroid_count_stable(self):
        job, _points, _initial = self.make_job()
        job.run_for(3.0)
        result = job.query_and_wait()
        centroids = [vid for vid in result.values if vid[0] == "centroid"]
        assert len(centroids) == 2


class TestSGDJob:
    def make_job(self, drift=0.0, **cfg):
        instances, true_w = higgs_like(400, dim=8, seed=6, noise=0.1,
                                       drift=drift)
        app = svm_application(
            dim=8, n_samplers=3,
            schedule_factory=lambda: StaticRate(0.2),
            batch_size=16, reservoir_capacity=256, input_batch=8,
            tolerance=3e-3)
        job = TornadoJob(app, config(**cfg))
        job.feed(instance_stream(instances, UniformRate(rate=2000.0)))
        return job, instances, true_w

    def accuracy(self, weights, instances):
        xs = np.stack([inst.x() for inst in instances])
        ys = np.asarray([inst.label for inst in instances], dtype=float)
        return float((np.sign(xs @ weights) == ys).mean())

    def test_branch_loop_learns_separator(self):
        job, instances, _true_w = self.make_job()
        job.run_for(1.5)
        result = job.query_and_wait()
        weights = result.values[PARAM].weights
        assert self.accuracy(weights, instances) > 0.9

    def test_main_loop_approximation_learns(self):
        """The main loop's mini-batch SGD alone reaches a decent model —
        the approximation that branch loops start from."""
        job, instances, _true_w = self.make_job()
        job.run_for(2.5)
        weights = job.main_values()[PARAM].weights
        assert self.accuracy(weights, instances) > 0.85

    def test_branch_from_approximation_converges_fast(self):
        """A branch forked from a trained main loop needs fewer gradient
        steps than one forked from scratch (the paper's core claim)."""
        warm_job, instances, _w = self.make_job()
        warm_job.run_for(2.5)
        warm = warm_job.query_and_wait()

        cold_app = svm_application(
            dim=8, n_samplers=3,
            schedule_factory=lambda: StaticRate(0.2),
            batch_size=16, reservoir_capacity=256, input_batch=8,
            tolerance=3e-3)
        cold_job = TornadoJob(cold_app, config(main_loop_mode="batch"))
        cold_job.feed(instance_stream(instances, UniformRate(rate=2000.0)))
        cold_job.run_for(2.5)
        cold = cold_job.query_and_wait()
        assert warm.latency < cold.latency

    def test_objective_decreases_over_time(self):
        job, instances, _w = self.make_job()
        xs = np.stack([inst.x() for inst in instances])
        ys = np.asarray([inst.label for inst in instances], dtype=float)
        loss = HingeLoss(1e-3)
        untrained = loss.objective(np.zeros(8), xs, ys)
        job.run_for(2.5)
        late_w = job.main_values()[PARAM]
        late = loss.objective(late_w.weights, xs, ys)
        assert late < untrained * 0.5
