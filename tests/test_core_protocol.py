"""Unit tests for the three-phase update protocol state machine."""

import pytest

from repro.core.lamport import LamportClock, Timestamp
from repro.core.protocol import (CommitUpdate, SendAck, SendPrepare,
                                 VertexProtocol)
from repro.errors import ProtocolError


def clock(owner="p0"):
    return LamportClock(owner)


class TestPhaseOne:
    def test_gathered_update_advances_iteration(self):
        protocol = VertexProtocol("x")
        protocol.gathered_update("y", iteration=4, changed=True)
        assert protocol.iteration == 5
        assert protocol.dirty

    def test_gathered_update_never_regresses_iteration(self):
        protocol = VertexProtocol("x", iteration=10)
        protocol.gathered_update("y", iteration=3, changed=True)
        assert protocol.iteration == 10

    def test_unchanged_gather_does_not_dirty(self):
        protocol = VertexProtocol("x")
        protocol.gathered_update("y", iteration=0, changed=False)
        assert not protocol.dirty
        assert protocol.iteration == 1

    def test_input_attaches_at_frontier(self):
        protocol = VertexProtocol("x", iteration=2)
        protocol.gathered_input(frontier=7, changed=True)
        assert protocol.iteration == 7
        protocol.gathered_input(frontier=3, changed=True)
        assert protocol.iteration == 7

    def test_update_removes_producer_from_prepare_list(self):
        protocol = VertexProtocol("x")
        protocol.received_prepare("y", Timestamp(1, "p1"))
        assert "y" in protocol.prepare_list
        protocol.gathered_update("y", iteration=0, changed=True)
        assert "y" not in protocol.prepare_list


class TestPrepare:
    def test_prepares_all_consumers(self):
        protocol = VertexProtocol("x")
        protocol.gathered_update("y", 0, changed=True)
        actions = protocol.try_prepare(clock(), ["a", "b"])
        assert {a.consumer for a in actions
                if isinstance(a, SendPrepare)} == {"a", "b"}
        assert protocol.preparing
        assert protocol.prepares_sent == 2

    def test_no_consumers_commits_immediately(self):
        protocol = VertexProtocol("x")
        protocol.gathered_update("y", 3, changed=True)
        actions = protocol.try_prepare(clock(), [])
        assert actions == [CommitUpdate(4)]
        assert not protocol.dirty
        assert protocol.commits == 1

    def test_skip_prepare_fast_path(self):
        protocol = VertexProtocol("x")
        protocol.gathered_update("y", 3, changed=True)
        actions = protocol.try_prepare(clock(), ["a"], skip_prepare=True)
        assert actions == [CommitUpdate(4)]
        assert protocol.prepares_sent == 0

    def test_clean_vertex_does_not_prepare(self):
        protocol = VertexProtocol("x")
        assert protocol.try_prepare(clock(), ["a"]) == []

    def test_blocked_by_producers_prepare(self):
        protocol = VertexProtocol("x")
        protocol.received_prepare("y", Timestamp(1, "p1"))
        protocol.gathered_input(frontier=0, changed=True)
        assert protocol.try_prepare(clock(), ["a"]) == []
        assert protocol.blocked
        # The producer's commit unblocks us.
        protocol.gathered_update("y", 0, changed=False)
        actions = protocol.try_prepare(clock(), ["a"])
        assert any(isinstance(a, SendPrepare) for a in actions)

    def test_cannot_prepare_twice(self):
        protocol = VertexProtocol("x")
        protocol.gathered_input(frontier=0, changed=True)
        protocol.try_prepare(clock(), ["a"])
        assert protocol.try_prepare(clock(), ["a"]) == []


class TestAckAndCommit:
    def test_commit_at_max_consumer_iteration(self):
        protocol = VertexProtocol("x")
        protocol.gathered_update("y", 1, changed=True)  # iteration -> 2
        protocol.try_prepare(clock(), ["a", "b"])
        assert protocol.received_ack("a", 9) == []
        actions = protocol.received_ack("b", 4)
        assert actions == [CommitUpdate(9)]

    def test_commit_keeps_own_iteration_when_larger(self):
        protocol = VertexProtocol("x")
        protocol.gathered_update("y", 10, changed=True)  # iteration 11
        protocol.try_prepare(clock(), ["a"])
        actions = protocol.received_ack("a", 2)
        assert actions == [CommitUpdate(11)]

    def test_pended_producers_acked_at_commit(self):
        protocol = VertexProtocol("x")
        protocol.gathered_input(frontier=0, changed=True)
        protocol.try_prepare(clock(), ["a"])
        # A producer with a LATER update-time is pended, not acked.
        later = Timestamp(99, "p9")
        assert protocol.received_prepare("y", later) == []
        assert protocol.pending_list == ["y"]
        actions = protocol.received_ack("a", 5)
        kinds = [type(a) for a in actions]
        assert kinds == [CommitUpdate, SendAck]
        assert actions[1].producer == "y"
        assert actions[1].iteration == 5

    def test_earlier_producer_prepare_acked_immediately(self):
        protocol = VertexProtocol("x", iteration=3)
        protocol.gathered_input(frontier=3, changed=True)
        protocol.try_prepare(clock(), ["a"])
        earlier = Timestamp(0, "p0")
        actions = protocol.received_prepare("y", earlier)
        assert actions == [SendAck("y", 3)]

    def test_idle_vertex_acks_prepares(self):
        protocol = VertexProtocol("x", iteration=7)
        actions = protocol.received_prepare("y", Timestamp(5, "p1"))
        assert actions == [SendAck("y", 7)]

    def test_stray_ack_ignored_but_raises_iteration(self):
        protocol = VertexProtocol("x")
        assert protocol.received_ack("a", 12) == []
        assert protocol.iteration == 12
        assert not protocol.dirty

    def test_commit_of_clean_vertex_rejected(self):
        protocol = VertexProtocol("x")
        with pytest.raises(ProtocolError):
            protocol._commit()


class TestDeadlockFreedom:
    def test_mutual_prepare_resolves_by_lamport_order(self):
        """Two vertices consuming each other both prepare; the later one
        yields and commits only after the earlier one."""
        shared = clock("p")
        x, y = VertexProtocol("x"), VertexProtocol("y")
        x.gathered_input(0, changed=True)
        y.gathered_input(0, changed=True)
        x_actions = x.try_prepare(shared, ["y"])
        y_actions = y.try_prepare(shared, ["x"])
        x_time = x_actions[0].update_time
        y_time = y_actions[0].update_time
        assert x_time < y_time
        # y receives x's earlier PREPARE: must ack (x happens first).
        assert y.received_prepare("x", x_time) == [SendAck("x", 0)]
        # x receives y's later PREPARE: pends it.
        assert x.received_prepare("y", y_time) == []
        # x commits on y's ack, releasing the pended reply to y.
        x_commit = x.received_ack("y", 0)
        assert isinstance(x_commit[0], CommitUpdate)
        ack_to_y = [a for a in x_commit if isinstance(a, SendAck)]
        assert ack_to_y and ack_to_y[0].producer == "y"
        # y now commits too: no deadlock.
        y_commit = y.received_ack("x", ack_to_y[0].iteration)
        assert isinstance(y_commit[0], CommitUpdate)


class TestRecovery:
    def test_reset_clears_protocol_state(self):
        protocol = VertexProtocol("x")
        protocol.gathered_input(0, changed=True)
        protocol.try_prepare(clock(), ["a"])
        protocol.received_prepare("y", Timestamp(50, "p3"))
        protocol.reset_after_recovery(iteration=6)
        assert protocol.iteration == 6
        assert not protocol.preparing
        assert not protocol.dirty
        assert protocol.prepare_list == set()
        assert protocol.pending_list == []
