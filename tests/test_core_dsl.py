"""Tests for the declarative algebra layer (repro.core.dsl)."""

import math

import pytest

from repro.algorithms import EdgeStreamRouter, reference_sssp
from repro.core import Application, TornadoConfig, TornadoJob
from repro.core.dsl import (AlgebraicProgram, min_label, reachability,
                            shortest_paths, widest_path)
from repro.streams import UniformRate, edge_stream
from repro.streams.model import REMOVE_EDGE, StreamTuple

EDGES = [("s", "a", 4.0), ("s", "b", 1.0), ("b", "a", 2.0),
         ("a", "c", 1.0), ("b", "c", 9.0), ("c", "d", 2.0)]


def run_dsl(program: AlgebraicProgram, edges=EDGES, undirected=False,
            extra_tuples=()):
    app = Application(program, EdgeStreamRouter(undirected=undirected),
                      name="dsl")
    job = TornadoJob(app, TornadoConfig(n_processors=2,
                                        storage_backend="memory",
                                        report_interval=0.01))
    job.feed(edge_stream(edges, UniformRate(rate=1000.0)))
    job.run_for(2.0)
    if extra_tuples:
        job.feed(list(extra_tuples))
        job.run_for(2.0)
    result = job.query_and_wait()
    return {vid: v.value for vid, v in result.values.items()}


def reference_widest(edges, source):
    """Bottleneck-maximising Dijkstra."""
    import heapq

    adjacency = {}
    vertices = set()
    for u, v, w in edges:
        adjacency.setdefault(u, []).append((v, w))
        vertices.update((u, v))
    width = {v: 0.0 for v in vertices}
    width[source] = math.inf
    heap = [(-math.inf, source)]
    while heap:
        negative, vertex = heapq.heappop(heap)
        current = -negative
        if current < width[vertex]:
            continue
        for target, weight in adjacency.get(vertex, []):
            candidate = min(current, weight)
            if candidate > width[target]:
                width[target] = candidate
                heapq.heappush(heap, (-candidate, target))
    return width


class TestShortestPathsDSL:
    def test_matches_dijkstra(self):
        values = run_dsl(shortest_paths("s"))
        expected = reference_sssp(EDGES, "s")
        finite = {v: d for v, d in expected.items() if not math.isinf(d)}
        got = {v: d for v, d in values.items() if not math.isinf(d)}
        assert got == finite

    def test_handles_deletion(self):
        retraction = StreamTuple(0.0, REMOVE_EDGE, ("s", "b", 1.0),
                                 weight=-1)
        values = run_dsl(shortest_paths("s"), extra_tuples=[retraction])
        remaining = [e for e in EDGES if e[:2] != ("s", "b")]
        expected = reference_sssp(remaining, "s")
        for vertex, distance in expected.items():
            if math.isinf(distance):
                assert math.isinf(values[vertex])
            else:
                assert values[vertex] == distance


class TestReachabilityDSL:
    def test_reachable_set(self):
        values = run_dsl(reachability("s"))
        assert all(values[v] for v in ("s", "a", "b", "c", "d"))

    def test_unreachable_after_cut(self):
        # Removing both edges into c disconnects c and d.
        cuts = [StreamTuple(0.0, REMOVE_EDGE, ("a", "c", 1.0), weight=-1),
                StreamTuple(0.0, REMOVE_EDGE, ("b", "c", 9.0), weight=-1)]
        values = run_dsl(reachability("s"), extra_tuples=cuts)
        assert values["a"] and values["b"]
        assert not values["c"]
        assert not values["d"]


class TestWidestPathDSL:
    def test_matches_bottleneck_dijkstra(self):
        values = run_dsl(widest_path("s"))
        expected = reference_widest(EDGES, "s")
        for vertex, width in expected.items():
            assert values[vertex] == pytest.approx(width)

    def test_width_improves_with_fat_edge(self):
        before = run_dsl(widest_path("s"))
        assert before["a"] == 4.0  # direct s->a edge of width 4
        fat = edge_stream([("s", "c", 50.0)], UniformRate(rate=1000.0))
        after = run_dsl(widest_path("s"), extra_tuples=fat)
        assert after["c"] == 50.0
        assert after["d"] == 2.0


class TestMinLabelDSL:
    def test_components(self):
        edges = [(1, 2, 1.0), (2, 3, 1.0), (10, 11, 1.0)]
        values = run_dsl(min_label(), edges=edges, undirected=True)
        assert values[3] == 1
        assert values[11] == 10
