"""Tests for the master's load rebalancer (paper §5.1)."""

import math

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.core import Application, TornadoConfig, TornadoJob
from repro.streams import UniformRate, edge_stream

EDGES = [(0, i) for i in range(1, 30)] + [(i, i + 1) for i in range(1, 29)]


def make_job(skewed=True, **config_kwargs):
    config_kwargs.setdefault("n_processors", 3)
    config_kwargs.setdefault("report_interval", 0.01)
    config_kwargs.setdefault("storage_backend", "memory")
    config_kwargs.setdefault("rebalance_enabled", True)
    config_kwargs.setdefault("rebalance_factor", 1.5)
    config_kwargs.setdefault("rebalance_min_gap", 0.001)
    config_kwargs.setdefault("rebalance_cooldown", 0.2)
    app = Application(SSSPProgram(0), EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(**config_kwargs))
    if skewed:
        # Pathological initial placement: everything on proc-0.
        for vertex in range(30):
            job.partition._overrides[vertex] = "proc-0"
    return job


def distances(values):
    return {vid: v.distance for vid, v in values.items()
            if not math.isinf(v.distance)}


def reference():
    return {v: d for v, d in reference_sssp(EDGES, 0).items()
            if not math.isinf(d)}


class TestRebalancing:
    def test_skewed_load_triggers_rebalance(self):
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_for(4.0)
        assert job.master.rebalances >= 1
        # Some vertices actually left the hot processor.
        owners = {job.partition.owner(v) for v in range(30)}
        assert owners != {"proc-0"}

    def test_results_exact_after_rebalance(self):
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_for(4.0)
        assert job.master.rebalances >= 1
        result = job.query_and_wait(full_activation=True)
        assert distances(result.values) == reference()

    def test_inputs_survive_the_pause(self):
        """Tuples arriving while ingestion is paused are held, not lost."""
        job = make_job()
        stream = edge_stream(EDGES, UniformRate(rate=300.0))
        job.feed(stream)
        job.run_for(4.0)
        assert job.ingester.tuples_ingested == len(stream)

    def test_disabled_by_default(self):
        job = make_job(rebalance_enabled=False)
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_for(3.0)
        assert job.master.rebalances == 0
        assert {job.partition.owner(v) for v in range(30)} == {"proc-0"}

    def test_balanced_load_is_left_alone(self):
        job = make_job(skewed=False, rebalance_factor=50.0)
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_for(3.0)
        assert job.master.rebalances == 0

    def test_forwarding_covers_in_flight_messages(self):
        """Messages addressed to the old owner are forwarded to the new
        one, so updates routed mid-rebalance still arrive."""
        job = make_job()
        stream = edge_stream(EDGES, UniformRate(rate=300.0))
        job.feed(stream)
        job.run_for(4.0)
        # Approximation converged to the truth despite the moves.
        approx = distances(job.main_values())
        assert approx == reference()
