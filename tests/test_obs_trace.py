"""Unit tests for the flight recorder and metrics registry."""

import json

import pytest

from repro.obs import (MetricsRegistry, TraceRecorder,
                       merged_phase_counts, parse_dump, parse_dump_line,
                       phase_counts, render_phase_table, split_named_dump,
                       termination_timeline)
from repro.obs.trace import merge_named_dumps


class TestTraceRecorder:
    def test_disabled_records_nothing(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record(1.0, "cat", "name", actor="a", x=1)
        assert len(recorder) == 0
        assert recorder.dump() == ""

    def test_ring_evicts_oldest(self):
        recorder = TraceRecorder(capacity=3)
        for index in range(5):
            recorder.record(float(index), "cat", "tick", i=index)
        assert len(recorder) == 3
        assert recorder.evicted == 2
        assert recorder.recorded == 5
        assert [event.field("i") for event in recorder] == [2, 3, 4]
        # Sequence numbers survive eviction (they are recorder-global).
        assert [event.seq for event in recorder] == [2, 3, 4]

    def test_dump_is_canonical_and_field_order_free(self):
        a = TraceRecorder()
        b = TraceRecorder()
        a.record(0.5, "net", "drop", actor="x", dst="y", reason="down")
        b.record(0.5, "net", "drop", actor="x", reason="down", dst="y")
        assert a.dump() == b.dump()
        assert a.digest() == b.digest()

    def test_dump_distinguishes_different_traces(self):
        a = TraceRecorder()
        b = TraceRecorder()
        a.record(0.5, "net", "drop", actor="x")
        b.record(0.6, "net", "drop", actor="x")
        assert a.digest() != b.digest()

    def test_select_filters(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "protocol", "commit", actor="p0", iteration=1)
        recorder.record(0.1, "protocol", "update", actor="p1", iteration=1)
        recorder.record(0.2, "net", "drop", actor="p0")
        assert len(recorder.select(category="protocol")) == 2
        assert len(recorder.select(name="drop")) == 1
        assert len(recorder.select(
            predicate=lambda e: e.actor == "p0")) == 2

    def test_counts(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "a", "x")
        recorder.record(0.1, "a", "x")
        recorder.record(0.2, "b", "y")
        assert recorder.counts() == {"a.x": 2, "b.y": 1}

    def test_chrome_trace_export(self):
        recorder = TraceRecorder()
        recorder.record(0.001, "protocol", "commit", actor="proc-0",
                        iteration=3, loop="main")
        blob = json.loads(recorder.chrome_trace_json())
        events = blob["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        assert meta[0]["args"]["name"] == "proc-0"
        assert instants[0]["ts"] == pytest.approx(1000.0)
        assert instants[0]["name"] == "protocol.commit"
        assert instants[0]["args"] == {"iteration": 3, "loop": "main"}

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(2)
        assert registry.counter("x").value == 3

    def test_gauge_tracks_peak(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.peak == 5

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in (2e-6, 5e-4, 5e-4, 0.3, 2000.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.min == 2e-6
        assert histogram.max == 2000.0
        assert histogram.mean == pytest.approx((2e-6 + 1e-3 + 0.3
                                                + 2000.0) / 5)
        assert histogram.quantile(0.5) == pytest.approx(1e-3)
        # The overflow observation lands past the last bound.
        assert histogram.bucket_counts[-1] == 1

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot)[:2] == ["a", "b"]
        assert snapshot["g"] == {"value": 1, "peak": 1}
        assert snapshot["h"]["count"] == 1
        assert "a  1" in registry.render()


class TestReport:
    def make_recorder(self):
        recorder = TraceRecorder()
        for iteration in (0, 0, 1):
            recorder.record(0.1, "protocol", "update", actor="p0",
                            loop="main", iteration=iteration)
        recorder.record(0.2, "protocol", "prepare", actor="p0",
                        loop="main", iteration=0)
        recorder.record(0.3, "protocol", "ack", actor="p1", loop="main",
                        iteration=0)
        recorder.record(0.4, "protocol", "commit", actor="p0",
                        loop="main", iteration=0)
        recorder.record(0.5, "protocol", "commit", actor="p0",
                        loop="branch-1", iteration=2)
        recorder.record(0.6, "progress", "terminated", actor="master",
                        loop="main", iteration=0)
        return recorder

    def test_phase_counts_by_loop_iteration(self):
        table = phase_counts(self.make_recorder())
        assert table[("main", 0)] == {"update": 2, "prepare": 1,
                                      "ack": 1, "commit": 1}
        assert table[("main", 1)]["update"] == 1
        assert table[("branch-1", 2)]["commit"] == 1

    def test_phase_counts_loop_filter(self):
        table = phase_counts(self.make_recorder(), loop="branch-1")
        assert list(table) == [("branch-1", 2)]

    def test_render_phase_table(self):
        text = render_phase_table(self.make_recorder())
        lines = text.splitlines()
        assert lines[0].split() == ["loop", "iteration", "updates",
                                    "prepares", "acks", "commits"]
        assert any("branch-1" in line for line in lines)

    def test_termination_timeline(self):
        timeline = termination_timeline(self.make_recorder())
        assert timeline == [("main", 0, 0.6)]


class TestDumpParsing:
    """Round trips for the dump grammar and the merged-dump splitter."""

    def test_parse_dump_line_round_trip(self):
        recorder = TraceRecorder()
        recorder.record(1.25, "net", "send", actor="proc-0",
                        dst="proc-1", eta=1.5)
        line = recorder.dump()
        event = parse_dump_line(line)
        assert (event.seq, event.time) == (0, 1.25)
        assert (event.category, event.name) == ("net", "send")
        assert event.actor == "proc-0"
        assert event.field("dst") == "proc-1"
        assert event.line() == line  # byte-identical re-render

    def test_parse_dump_line_empty_actor(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "sim", "start")
        event = parse_dump_line(recorder.dump())
        assert event.actor == ""

    def test_parse_dump_line_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_dump_line("not a trace line")

    def test_parse_dump_round_trip_preserves_digest(self):
        recorder = TraceRecorder()
        for index in range(5):
            recorder.record(float(index), "protocol", "update",
                            actor=f"p{index % 2}", loop="main",
                            iteration=index)
        replayed = parse_dump(recorder.dump())
        assert "\n".join(e.line() for e in replayed) == recorder.dump()

    def test_split_named_dump_inverts_merge(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record(0.1, "net", "send", actor="x")
        b.record(0.2, "net", "send", actor="y")
        b.record(0.3, "net", "recv", actor="y")
        merged = merge_named_dumps({"tenant-a": a, "tenant-b": b})
        sections = split_named_dump(merged)
        assert sections == {"tenant-a": a.dump(), "tenant-b": b.dump()}

    def test_split_named_dump_rejects_unprefixed_lines(self):
        with pytest.raises(ValueError):
            split_named_dump("0 0.1 net.send x")


class TestChromeTraceOrdering:
    def test_events_sorted_by_timestamp(self):
        """The live backend's Lamport-adjusted clocks can record events
        out of order; tracing UIs require non-decreasing ts."""
        recorder = TraceRecorder()
        recorder.record(0.5, "protocol", "commit", actor="p0")
        recorder.record(0.2, "protocol", "update", actor="p1")
        recorder.record(0.5, "protocol", "ack", actor="p0")
        ts = [event["ts"] for event in recorder.to_chrome_trace()
              if event["ph"] == "i"]
        assert ts == sorted(ts)

    def test_equal_times_keep_seq_order(self):
        recorder = TraceRecorder()
        recorder.record(0.5, "protocol", "commit", actor="p0")
        recorder.record(0.2, "protocol", "update", actor="p1")
        recorder.record(0.5, "protocol", "ack", actor="p0")
        names = [event["name"] for event in recorder.to_chrome_trace()
                 if event["ph"] == "i"]
        assert names == ["protocol.update", "protocol.commit",
                         "protocol.ack"]


class TestMergedPhaseCounts:
    def make_merged(self):
        streams = {}
        for name, offset in (("tenant-a", 0), ("tenant-b", 10)):
            recorder = TraceRecorder()
            recorder.record(0.1, "protocol", "update", actor="p0",
                            loop="main", iteration=offset)
            recorder.record(0.2, "protocol", "commit", actor="p0",
                            loop="main", iteration=offset)
            recorder.record(0.3, "protocol", "update", actor="p0",
                            loop="branch-1", iteration=offset + 1)
            streams[name] = recorder
        return merge_named_dumps(streams)

    def test_no_cross_tenant_bleed(self):
        """Both tenants run a loop named ``main``; their phase rows must
        stay separate in the merged view."""
        table = merged_phase_counts(self.make_merged())
        assert table[("tenant-a", "main", 0)]["update"] == 1
        assert table[("tenant-b", "main", 10)]["update"] == 1
        # No row ever aggregates across tenants.
        assert all(key[0] in ("tenant-a", "tenant-b") for key in table)

    def test_loop_filter_composes_with_tenant_prefix(self):
        table = merged_phase_counts(self.make_merged(), loop="main")
        assert set(table) == {("tenant-a", "main", 0),
                              ("tenant-b", "main", 10)}
        # Each tenant's main-loop row counts only its own events.
        assert table[("tenant-a", "main", 0)]["commit"] == 1

    def test_tenant_filter(self):
        table = merged_phase_counts(self.make_merged(), tenant="tenant-b")
        assert set(table) == {("tenant-b", "main", 10),
                              ("tenant-b", "branch-1", 11)}
