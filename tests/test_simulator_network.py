"""Unit tests for the simulated network and disks."""

import pytest

from repro.simulator import Network, SimulatedDisk, Simulator
from tests.test_simulator_actors import Recorder


class TestNetwork:
    def test_latency_applied(self):
        sim = Simulator()
        net = Network(sim, latency=0.25)
        dst = Recorder(sim, "dst", cost=0.0)
        Recorder(sim, "src", cost=0.0)
        net.send("src", "dst", "hello")
        sim.run()
        assert dst.seen == [(0.25, "hello", "src")]

    def test_capacity_queues_messages(self):
        sim = Simulator()
        net = Network(sim, latency=0.0, capacity=2.0)  # 2 msgs/sec
        dst = Recorder(sim, "dst", cost=0.0)
        Recorder(sim, "src", cost=0.0)
        for i in range(4):
            net.send("src", "dst", i)
        sim.run()
        times = [t for t, _m, _s in dst.seen]
        # Fabric departures are spaced 0.5s apart once saturated.
        assert times == pytest.approx([0.0, 0.5, 1.0, 1.5])

    def test_local_messages_bypass_capacity(self):
        sim = Simulator()
        net = Network(sim, latency=1.0, capacity=1.0, local_latency=0.01)
        dst = Recorder(sim, "dst", cost=0.0)
        Recorder(sim, "src", cost=0.0)
        net.colocate("src", "node1")
        net.colocate("dst", "node1")
        for i in range(3):
            net.send("src", "dst", i)
        sim.run()
        times = [t for t, _m, _s in dst.seen]
        assert times == pytest.approx([0.01, 0.01, 0.01])

    def test_messages_to_down_actor_dropped(self):
        sim = Simulator()
        net = Network(sim, latency=0.1)
        dst = Recorder(sim, "dst", cost=0.0)
        Recorder(sim, "src", cost=0.0)
        dst.fail()
        net.send("src", "dst", "lost")
        sim.run()
        assert dst.seen == []
        assert net.stats.dropped == 1

    def test_partition_blocks_direction(self):
        sim = Simulator()
        net = Network(sim, latency=0.1)
        dst = Recorder(sim, "dst", cost=0.0)
        src = Recorder(sim, "src", cost=0.0)
        net.block("src", "dst")
        net.send("src", "dst", "blocked")
        net.send("dst", "src", "ok")
        sim.run()
        assert dst.seen == []
        assert [m for _t, m, _s in src.seen] == ["ok"]
        net.unblock("src", "dst")
        net.send("src", "dst", "now ok")
        sim.run()
        assert [m for _t, m, _s in dst.seen] == ["now ok"]

    def test_stats_count_throughput(self):
        sim = Simulator()
        net = Network(sim, latency=0.0)
        Recorder(sim, "dst", cost=0.0)
        Recorder(sim, "src", cost=0.0)
        for _ in range(10):
            net.send("src", "dst", "m")
        sim.run()
        assert net.stats.sent == 10
        assert net.stats.delivered == 10
        assert net.stats.peak_messages_per_second() == 10.0

    def test_jitter_is_deterministic_per_seed(self):
        def run(seed):
            sim = Simulator(seed=seed)
            net = Network(sim, latency=0.1, jitter=0.05)
            dst = Recorder(sim, "dst", cost=0.0)
            Recorder(sim, "src", cost=0.0)
            for i in range(5):
                net.send("src", "dst", i)
            sim.run()
            return [t for t, _m, _s in dst.seen]

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestDisk:
    def test_write_cost_model(self):
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0", seek_cost=1.0, record_cost=0.1)
        done = []
        disk.write(10, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.0)]
        assert disk.records_written == 10

    def test_requests_serialise(self):
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0", seek_cost=1.0, record_cost=0.0)
        done = []
        disk.write(0, lambda tag: done.append((tag, sim.now)), "a")
        disk.write(0, lambda tag: done.append((tag, sim.now)), "b")
        sim.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_read_counters(self):
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0")
        disk.read(7)
        sim.run()
        assert disk.records_read == 7
        assert disk.requests == 1
