"""Unit tests for Lamport clocks, reliable transport and partitioning."""

import pytest

from repro.core.lamport import LamportClock, Timestamp
from repro.core.partition import PartitionScheme
from repro.core.transport import ReliableEndpoint
from repro.simulator import Actor, Network, Simulator


class TestLamportClock:
    def test_tick_monotone(self):
        clock = LamportClock("p0")
        a = clock.tick()
        b = clock.tick()
        assert a < b

    def test_observe_merges(self):
        clock = LamportClock("p0")
        clock.observe(Timestamp(50, "p1"))
        assert clock.tick().counter == 51

    def test_total_order_across_owners(self):
        assert Timestamp(3, "a") < Timestamp(3, "b")
        assert Timestamp(2, "z") < Timestamp(3, "a")


class TestPartitionScheme:
    def test_owner_stable(self):
        scheme = PartitionScheme(["p0", "p1", "p2"])
        assert scheme.owner("v") == scheme.owner("v")

    def test_spreads_vertices(self):
        scheme = PartitionScheme(["p0", "p1", "p2", "p3"])
        owners = {scheme.owner(i) for i in range(200)}
        assert owners == {"p0", "p1", "p2", "p3"}

    def test_reassign_overrides(self):
        scheme = PartitionScheme(["p0", "p1"])
        scheme.reassign("hot", "p1")
        assert scheme.owner("hot") == "p1"
        assert scheme.version == 1
        with pytest.raises(ValueError):
            scheme.reassign("hot", "ghost")

    def test_assignments_grouping(self):
        scheme = PartitionScheme(["p0", "p1"])
        grouped = scheme.assignments(list(range(10)))
        assert sorted(v for vs in grouped.values() for v in vs) == list(
            range(10))

    def test_empty_processor_list_rejected(self):
        with pytest.raises(ValueError):
            PartitionScheme([])


class Endpoint(Actor):
    """Test actor that records payloads arriving through its transport."""

    def __init__(self, sim, name, network, timeout=0.5):
        super().__init__(sim, name)
        self.transport = ReliableEndpoint(sim, network, name, timeout)
        self.received = []

    def handle(self, message, sender):
        payload = self.transport.on_message(message, sender)
        if payload is not None:
            self.received.append(payload)
        return 0.0

    def on_failure(self):
        self.transport.clear()


class TestReliableTransport:
    def make_pair(self, **net_kwargs):
        sim = Simulator()
        network = Network(sim, **net_kwargs)
        a = Endpoint(sim, "a", network)
        b = Endpoint(sim, "b", network)
        return sim, network, a, b

    def test_delivery_and_ack(self):
        sim, _net, a, b = self.make_pair(latency=0.01)
        a.transport.send("b", "hello")
        sim.run(until=1.0)
        assert b.received == ["hello"]
        assert a.transport.unacked == 0

    def test_no_duplicate_processing(self):
        sim, net, a, b = self.make_pair(latency=0.3)
        # Ack latency (0.3+0.3) exceeds the 0.5s timeout: one retransmit
        # happens, and the receiver must dedup it.
        a.transport.send("b", "once")
        sim.run(until=5.0)
        assert b.received == ["once"]
        assert a.transport.retransmissions >= 1
        assert a.transport.unacked == 0

    def test_retransmits_until_receiver_recovers(self):
        sim, _net, a, b = self.make_pair(latency=0.01)
        b.fail()
        a.transport.send("b", "persistent")
        sim.schedule(3.0, b.recover)
        sim.run(until=10.0)
        assert b.received == ["persistent"]
        assert a.transport.retransmissions >= 4

    def test_sender_crash_stops_retransmission(self):
        sim, _net, a, b = self.make_pair(latency=0.01)
        b.fail()
        a.transport.send("b", "lost")
        sim.schedule(1.0, a.fail)
        sim.schedule(2.0, b.recover)
        sim.run(until=10.0)
        assert b.received == []

    def test_unreliable_send_has_no_retransmit(self):
        sim, _net, a, b = self.make_pair(latency=0.01)
        b.fail()
        a.transport.send_unreliable("b", "gone")
        sim.schedule(1.0, b.recover)
        sim.run(until=5.0)
        assert b.received == []
        assert a.transport.unacked == 0

    def test_receiver_restart_reprocesses_inflight(self):
        """After a receiver restart the dedup table is gone; an unacked
        message is retransmitted and processed (at-least-once)."""
        sim, _net, a, b = self.make_pair(latency=0.3)
        a.transport.send("b", "dup-risk")
        # Crash b right after first delivery; dedup state is lost.
        sim.schedule(0.35, b.fail)
        sim.schedule(0.4, b.recover)
        sim.run(until=5.0)
        assert b.received.count("dup-risk") >= 1


class TestRetransmitTimerHygiene:
    """Regression pins: every path that forgets an unacked message must
    also cancel its retransmit timer.  An orphaned timer re-fires
    forever — harmless-looking in short sims, a slow leak (and ghost
    retransmissions to restarted peers) in long live runs."""

    def make_pair(self, **net_kwargs):
        sim = Simulator()
        network = Network(sim, **net_kwargs)
        a = Endpoint(sim, "a", network)
        b = Endpoint(sim, "b", network)
        return sim, network, a, b

    def test_ack_cancels_retransmit_timer(self):
        sim, _net, a, b = self.make_pair(latency=0.01)
        a.transport.send("b", "hello")
        sim.run(until=0.1)  # delivered + acked well inside the timeout
        assert a.transport.unacked == 0
        # Run far past many timeout periods: a live timer would fire.
        sim.run(until=30.0)
        assert a.transport.retransmissions == 0
        assert b.received == ["hello"]
        # The wheel is genuinely empty — no tombstones left ticking.
        assert sim.pending_events == 0

    def test_purge_unacked_cancels_timers(self):
        sim, _net, a, b = self.make_pair(latency=0.01)
        b.fail()
        a.transport.send("b", "doomed-1")
        a.transport.send("b", "doomed-2")
        sim.run(until=0.1)
        assert a.transport.purge_unacked("b", kinds=(str,)) == 2
        assert a.transport.unacked == 0
        base = a.transport.retransmissions
        sim.schedule(1.0, b.recover)
        sim.run(until=30.0)
        # No ghost retransmissions after the purge, and the recovered
        # receiver never sees the purged payloads.
        assert a.transport.retransmissions == base
        assert b.received == []
        assert sim.pending_events == 0

    def test_purge_is_selective_by_kind(self):
        sim, _net, a, b = self.make_pair(latency=0.01)
        b.fail()
        a.transport.send("b", "stale-string")
        a.transport.send("b", 42)
        sim.run(until=0.1)
        assert a.transport.purge_unacked("b", kinds=(str,)) == 1
        assert a.transport.unacked == 1
        sim.schedule(1.0, b.recover)
        sim.run(until=30.0)
        # The surviving message is still retransmitted to delivery.
        assert b.received == [42]
        assert a.transport.unacked == 0

    def test_purge_without_filter_purges_nothing(self):
        sim, _net, a, b = self.make_pair(latency=0.01)
        b.fail()
        a.transport.send("b", "kept")
        sim.run(until=0.1)
        assert a.transport.purge_unacked("b") == 0
        assert a.transport.unacked == 1
        sim.schedule(1.0, b.recover)
        sim.run(until=30.0)
        assert b.received == ["kept"]

    def test_clear_cancels_every_timer(self):
        sim, _net, a, b = self.make_pair(latency=0.01)
        b.fail()
        for i in range(5):
            a.transport.send("b", f"msg-{i}")
        sim.run(until=0.6)  # at least one retransmit round has fired
        fired = a.transport.retransmissions
        assert fired >= 5
        a.transport.clear()
        sim.schedule(1.0, b.recover)
        sim.run(until=30.0)
        assert a.transport.retransmissions == fired
        assert b.received == []
        assert sim.pending_events == 0

    def test_tags_released_on_purge(self):
        sim, _net, a, b = self.make_pair(latency=0.01)
        b.fail()
        a.transport.send("b", "tagged", tag="main")
        sim.run(until=0.1)
        assert a.transport.pending_by_tag.get("main") == 1
        a.transport.purge_unacked("b", kinds=(str,))
        assert "main" not in a.transport.pending_by_tag
