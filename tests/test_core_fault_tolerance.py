"""Fault-tolerance integration tests (paper §5.3, §6.3.2).

Kill the master or a processor mid-computation and check that the job
recovers and still produces exact results.
"""

import math

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.core import Application, TornadoConfig, TornadoJob
from repro.streams import UniformRate, edge_stream

EDGES = [
    ("s", "a"), ("s", "b"), ("a", "c"), ("b", "c"),
    ("c", "d"), ("d", "e"), ("b", "e"), ("e", "f"),
    ("f", "g"), ("d", "g"), ("a", "h"), ("h", "d"),
]


def make_job(**config_kwargs):
    config_kwargs.setdefault("n_processors", 3)
    config_kwargs.setdefault("report_interval", 0.01)
    config_kwargs.setdefault("retransmit_timeout", 0.1)
    config_kwargs.setdefault("storage_backend", "memory")
    app = Application(SSSPProgram("s"), EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(**config_kwargs))
    job.feed(edge_stream(EDGES, UniformRate(rate=1000.0)))
    return job


def distances(values):
    out = {}
    for vid, value in values.items():
        dist = value.distance if hasattr(value, "distance") else value
        if not math.isinf(dist):
            out[vid] = dist
    return out


def reference():
    return {v: d for v, d in reference_sssp(EDGES, "s").items()
            if not math.isinf(d)}


class TestMasterFailure:
    def test_async_loop_survives_master_downtime(self):
        """With a large delay bound nothing blocks on termination notices:
        the computation keeps going while the master is down (Fig. 8c)."""
        job = make_job(delay_bound=65536)
        job.failures.kill_at(0.05, TornadoJob.MASTER, recover_after=1.0)
        job.run_for(4.0)
        approx = distances(job.main_values())
        assert approx == reference()

    def test_sync_loop_stalls_then_resumes(self):
        """With B=1 everything is buffered until iterations terminate, so
        progress requires the master; it resumes after recovery."""
        job = make_job(delay_bound=1)
        job.failures.kill_at(0.02, TornadoJob.MASTER, recover_after=1.0)
        # While the master is down, commits stop growing.
        job.run(until=0.5)
        commits_during_outage = job.total_commits
        job.run(until=0.9)
        assert job.total_commits == commits_during_outage
        job.run_for(5.0)
        assert distances(job.main_values()) == reference()

    def test_query_completes_after_master_recovery(self):
        job = make_job(delay_bound=65536)
        job.run_for(2.0)
        job.failures.kill_at(job.sim.now + 0.01, TornadoJob.MASTER,
                             recover_after=0.5)
        job.run_for(1.0)
        result = job.query_and_wait()
        assert distances(result.values) == reference()


class TestProcessorFailure:
    def test_processor_recovers_and_results_exact(self):
        """A crashed processor reloads the last checkpoint, peers retransmit
        unacknowledged messages, and the final answer is exact (Fig. 8d)."""
        job = make_job(delay_bound=65536)
        job.failures.kill_at(0.05, "proc-1", recover_after=0.5)
        job.run_for(5.0)
        result = job.query_and_wait(full_activation=True)
        assert distances(result.values) == reference()

    def test_sync_loop_survives_processor_failure(self):
        job = make_job(delay_bound=1)
        job.failures.kill_at(0.05, "proc-0", recover_after=0.5)
        job.run_for(6.0)
        result = job.query_and_wait(full_activation=True)
        assert distances(result.values) == reference()

    def test_branch_loop_survives_processor_failure(self):
        """Kill a processor while a branch loop is running; the query must
        still converge to the exact answer."""
        job = make_job(delay_bound=65536, main_loop_mode="batch",
                       merge_policy="never")
        job.run_for(2.0)
        query_id = job.query(full_activation=True)
        job.failures.kill_at(job.sim.now + 0.005, "proc-2",
                             recover_after=0.3)
        result = job.wait_for_query(query_id)
        assert distances(result.values) == reference()

    def test_kill_during_ingestion_replays_inputs(self):
        """Found by the chaos property test: a processor that crashes
        while the stream is still being ingested loses inputs it had
        acknowledged but not yet committed to the store.  The ingester
        must replay its journal for the recovered processor."""
        job = make_job(delay_bound=65536)
        job.failures.kill_at(0.01, "proc-0", recover_after=0.5)
        job.failures.kill_at(0.5, "proc-2", recover_after=0.5)
        job.run_for(6.0)
        assert distances(job.main_values()) == reference()
        assert job.ingester.inputs_replayed > 0

    def test_two_processor_failures(self):
        job = make_job(delay_bound=65536)
        job.failures.kill_at(0.04, "proc-0", recover_after=0.4)
        job.failures.kill_at(0.06, "proc-2", recover_after=0.4)
        job.run_for(6.0)
        result = job.query_and_wait(full_activation=True)
        assert distances(result.values) == reference()

    def test_updates_stall_while_peer_down_async(self):
        """Asynchronous loops keep updating until the failed processor's
        silence propagates through the dependency graph (Fig. 8d)."""
        job = make_job(delay_bound=65536)
        job.run(until=0.05)
        job.failures.kill_now("proc-1")
        job.run_for(3.0)
        stalled_commits = job.total_commits
        job.run_for(1.0)
        # Eventually no more commits happen: the failure's effect has
        # reached every dependent vertex.
        assert job.total_commits == stalled_commits
