"""Unit tests for the kernel fast path: timer wheel, tombstone
compaction, same-instant message coalescing — plus the bugfixes that
rode along (run_until honouring stop(), transport tag-leak, network
stats bucketing)."""

import pytest

from repro.core.transport import ReliableEndpoint
from repro.errors import SimulationError
from repro.simulator import (Actor, EventQueue, Network, Simulator,
                             TimerWheel)
from repro.simulator.events import COMPACT_MIN_SIZE


def _noop():
    pass


class TestTimerWheel:
    def test_peek_returns_earliest_across_spokes(self):
        wheel = TimerWheel()
        late = wheel.schedule(5.0, 5.0, _noop, ())
        early = wheel.schedule(1.0, 1.0, _noop, ())
        assert wheel.peek() is early
        wheel.pop(early)
        assert wheel.peek() is late

    def test_same_time_breaks_ties_by_seq(self):
        wheel = TimerWheel()
        first = wheel.schedule(2.0, 1.0, _noop, ())
        second = wheel.schedule(2.0, 2.0, _noop, ())
        assert first.seq < second.seq
        assert wheel.peek() is first

    def test_cancel_truly_removes(self):
        wheel = TimerWheel()
        timers = [wheel.schedule(float(i), 1.0, _noop, ())
                  for i in range(1, 6)]
        timers[2].cancel()
        assert wheel.pending == 4
        assert len(wheel) == 4
        order = []
        while wheel.peek() is not None:
            timer = wheel.peek()
            wheel.pop(timer)
            order.append(timer.time)
        assert order == [1.0, 2.0, 4.0, 5.0]

    def test_cancel_after_pop_is_noop(self):
        wheel = TimerWheel()
        timer = wheel.schedule(1.0, 1.0, _noop, ())
        wheel.pop(timer)
        timer.cancel()  # the acker does this after a timeout fires
        assert wheel.pending == 0

    def test_non_monotone_deadline_refused(self):
        wheel = TimerWheel()
        wheel.schedule(5.0, 1.0, _noop, ())
        assert wheel.schedule(4.0, 1.0, _noop, ()) is None
        # A different spoke is unaffected by the first one's tail.
        assert wheel.schedule(4.0, 2.0, _noop, ()) is not None

    def test_has_deadline_lifecycle(self):
        wheel = TimerWheel()
        a = wheel.schedule(3.0, 1.0, _noop, ())
        b = wheel.schedule(3.0, 2.0, _noop, ())
        assert wheel.has_deadline(3.0)
        a.cancel()
        assert wheel.has_deadline(3.0)
        wheel.pop(b)
        assert not wheel.has_deadline(3.0)

    def test_clear(self):
        wheel = TimerWheel()
        timer = wheel.schedule(1.0, 1.0, _noop, ())
        wheel.clear()
        assert wheel.pending == 0
        assert wheel.peek() is None
        timer.cancel()  # must not blow up on an unlinked node
        assert wheel.delays == ()


class TestTombstoneCompaction:
    def test_compaction_drops_cancelled_majority(self):
        queue = EventQueue(fast_path=True)
        events = [queue.push(float(i), _noop) for i in range(2 * COMPACT_MIN_SIZE)]
        cancelled = COMPACT_MIN_SIZE + 8
        for event in events[:cancelled]:
            event.cancel()
        # Compaction fired at the majority threshold: most tombstones are
        # gone (only the post-rebuild stragglers remain) and the heap has
        # shrunk to live entries plus those stragglers.
        assert queue.pending == len(events) - cancelled
        assert queue.tombstones < cancelled // 2
        assert len(queue) == queue.pending + queue.tombstones

    def test_legacy_mode_keeps_tombstones(self):
        queue = EventQueue(fast_path=False)
        events = [queue.push(float(i), _noop) for i in range(2 * COMPACT_MIN_SIZE)]
        for event in events[: COMPACT_MIN_SIZE + 8]:
            event.cancel()
        assert queue.tombstones == COMPACT_MIN_SIZE + 8
        assert len(queue) == len(events)
        # ... but the live-unit count is accurate in both modes.
        assert queue.pending == len(events) - (COMPACT_MIN_SIZE + 8)

    def test_small_heaps_not_compacted(self):
        queue = EventQueue(fast_path=True)
        events = [queue.push(float(i), _noop) for i in range(8)]
        for event in events[:6]:
            event.cancel()
        assert queue.tombstones == 6

    def test_pop_order_survives_compaction(self):
        queue = EventQueue(fast_path=True)
        events = [queue.push(float(i), _noop, i) for i in range(200)]
        for event in events[::2]:
            event.cancel()
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append(event.args[0])
        assert popped == list(range(1, 200, 2))

    def test_double_cancel_counts_once(self):
        queue = EventQueue(fast_path=True)
        queue.push(1.0, _noop)
        event = queue.push(2.0, _noop)
        event.cancel()
        event.cancel()
        assert queue.pending == 1
        assert queue.tombstones == 1


class _Sink(Actor):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle(self, message, sender):
        self.received.append(message)
        return 0.0


class TestCoalescing:
    def _burst(self, fast_path, fanout=32):
        sim = Simulator(fast_path=fast_path)
        network = Network(sim, latency=1e-3)
        _Sink(sim, "src")
        sink = _Sink(sim, "sink")
        for index in range(fanout):
            network.send("src", "sink", index)
        return sim, network, sink

    def test_burst_folds_into_one_heap_entry(self):
        sim, _network, _sink = self._burst(True)
        assert len(sim._queue) == 1
        assert sim.pending_events == 32

    def test_legacy_burst_stays_per_message(self):
        sim, _network, _sink = self._burst(False)
        assert len(sim._queue) == 32

    def test_delivery_order_and_stats_match_legacy(self):
        fast_sim, fast_net, fast_sink = self._burst(True)
        legacy_sim, legacy_net, legacy_sink = self._burst(False)
        fast_sim.run()
        legacy_sim.run()
        assert fast_sink.received == legacy_sink.received == list(range(32))
        assert fast_net.stats.sent == legacy_net.stats.sent == 32
        assert fast_sim.events_processed == legacy_sim.events_processed

    def test_batch_survives_max_events_interruption(self):
        sim, _network, sink = self._burst(True, fanout=16)
        # A budget of 10 interrupts the run inside the 16-delivery batch
        # (each unit counts as one event); the kernel must suspend the
        # batch and resume it exactly where it left off.
        sim.run(max_events=10)
        assert sim._batch is not None
        assert 0 < sim._batch_index < 16
        sim.run()
        assert sim._batch is None
        assert sink.received == list(range(16))

    def test_timer_at_same_instant_blocks_coalescing(self):
        sim = Simulator(fast_path=True)
        deliveries = []
        sim.schedule_message(1.0, deliveries.append, "a")
        sim.schedule_timer(1.0, deliveries.append, "t")
        # The batch at t=1.0 may not absorb this send: the wheel timer in
        # between must fire before it.
        sim.schedule_message(1.0, deliveries.append, "b")
        assert len(sim._queue) == 2
        sim.run()
        assert deliveries == ["a", "t", "b"]


class TestRunUntilStop:
    def test_stop_inside_run_until_returns(self):
        sim = Simulator()
        fired = []

        def tick(n):
            fired.append(n)
            if n == 3:
                sim.stop()
            else:
                sim.schedule(1.0, tick, n + 1)

        sim.schedule(1.0, tick, 0)
        end = sim.run_until(lambda: False, max_events=1000)
        assert fired == [0, 1, 2, 3]
        assert end == pytest.approx(4.0)

    def test_run_until_still_raises_on_drain(self):
        sim = Simulator()
        sim.schedule(1.0, _noop)
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False)


class _TransportActor(Actor):
    def __init__(self, sim, name, network):
        super().__init__(sim, name)
        self.transport = ReliableEndpoint(sim, network, name, timeout=0.5)

    def handle(self, message, sender):
        self.transport.on_message(message, sender)
        return 0.0


class TestTransportTagLeak:
    def test_acked_tags_drop_their_keys(self):
        sim = Simulator()
        network = Network(sim, latency=0.01)
        a = _TransportActor(sim, "a", network)
        _TransportActor(sim, "b", network)
        for loop in ("loop-0", "loop-1"):
            for _ in range(3):
                a.transport.send("b", "payload", tag=loop)
        sim.run(until=2.0)
        assert a.transport.unacked == 0
        # The fix: fully-acked tags disappear instead of lingering at 0.
        assert a.transport.pending_by_tag == {}


class TestNetworkStatsBuckets:
    def test_record_sent_single_bucket_increment(self):
        sim = Simulator()
        network = Network(sim, latency=0.01)
        _Sink(sim, "src")
        _Sink(sim, "sink")
        network.send("src", "sink", "x")
        network.send("src", "sink", "y")
        sim.run()
        assert network.stats.sent == 2
        assert network.stats.buckets == {0: 2}
