"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.algorithms.sgd import LogisticLoss
from repro.datagen import (connected_core, degree_histogram,
                           gaussian_mixture, higgs_like, livejournal_like,
                           pubmed_like, rmat_edges)


class TestGraphs:
    def test_rmat_deterministic(self):
        a = rmat_edges(64, 200, np.random.default_rng(1))
        b = rmat_edges(64, 200, np.random.default_rng(1))
        assert a == b

    def test_rmat_size_and_bounds(self):
        edges = rmat_edges(100, 300, np.random.default_rng(0))
        assert len(edges) == 300
        assert all(0 <= u < 100 and 0 <= v < 100 for u, v in edges)

    def test_rmat_no_self_loops_or_dups_by_default(self):
        edges = rmat_edges(64, 200, np.random.default_rng(0))
        assert all(u != v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_rmat_degree_skew(self):
        """R-MAT graphs are skewed: max degree far above the mean."""
        edges = rmat_edges(256, 2000, np.random.default_rng(0))
        histogram = degree_histogram(edges)
        max_degree = max(histogram)
        mean_degree = 2000 / 256
        assert max_degree > 4 * mean_degree

    def test_rmat_validation(self):
        with pytest.raises(ValueError):
            rmat_edges(1, 10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            rmat_edges(10, 10, np.random.default_rng(0), a=0.5, b=0.5,
                       c=0.2)

    def test_livejournal_like_source_reaches_most(self):
        edges = livejournal_like(n_vertices=300, n_edges=1500, seed=3)
        reachable_edges = connected_core(edges, 0)
        assert len(reachable_edges) > len(edges) * 0.5

    def test_connected_core_filters(self):
        edges = [(0, 1), (1, 2), (5, 6)]
        assert connected_core(edges, 0) == [(0, 1), (1, 2)]


class TestPoints:
    def test_mixture_shapes(self):
        points, centres = gaussian_mixture(100, k=4, dim=20, seed=0)
        assert len(points) == 100
        assert centres.shape == (4, 20)
        assert points[0].shape == (20,)

    def test_mixture_deterministic(self):
        a, _ = gaussian_mixture(50, seed=9)
        b, _ = gaussian_mixture(50, seed=9)
        assert all((x == y).all() for x, y in zip(a, b))

    def test_points_cluster_around_centres(self):
        points, centres = gaussian_mixture(500, k=3, dim=5, spread=50.0,
                                           noise=0.5, seed=1)
        for point in points[:50]:
            nearest = min(np.linalg.norm(point - c) for c in centres)
            assert nearest < 5.0

    def test_drift_moves_centres(self):
        early, _ = gaussian_mixture(400, k=1, dim=3, noise=0.01, seed=2,
                                    drift=20.0)
        first_mean = np.mean(early[:50], axis=0)
        last_mean = np.mean(early[-50:], axis=0)
        assert np.linalg.norm(last_mean - first_mean) > 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_mixture(0)


class TestInstances:
    @pytest.mark.parametrize("factory,dim", [(higgs_like, 28),
                                             (pubmed_like, 200)])
    def test_learnable(self, factory, dim):
        """A linear model trained on the data recovers the labels —
        the property the SVM/LR workloads need."""
        instances, _w = factory(600, seed=4)
        xs = np.stack([inst.x() for inst in instances])
        ys = np.asarray([inst.label for inst in instances], dtype=float)
        loss = LogisticLoss(1e-4)
        w = np.zeros(dim)
        for _ in range(300):
            w = w - 0.5 * loss.gradient(w, xs, ys)
        accuracy = (np.sign(xs @ w) == ys).mean()
        assert accuracy > 0.8

    def test_pubmed_like_sparse(self):
        instances, _w = pubmed_like(20, dim=200, density=0.05, seed=0)
        x = instances[0].x()
        assert (x != 0).sum() <= 0.1 * 200

    def test_labels_are_binary(self):
        instances, _w = higgs_like(50, seed=0)
        assert {inst.label for inst in instances} <= {-1, 1}

    def test_drift_rotates_hyperplane(self):
        """With drift, early and late halves prefer different models."""
        instances, _w = higgs_like(1000, seed=5, noise=0.05, drift=1.5)
        loss = LogisticLoss(1e-4)

        def fit(block):
            xs = np.stack([inst.x() for inst in block])
            ys = np.asarray([inst.label for inst in block], dtype=float)
            w = np.zeros(28)
            for _ in range(200):
                w = w - 0.5 * loss.gradient(w, xs, ys)
            return w / np.linalg.norm(w), xs, ys

        w_early, _xs, _ys = fit(instances[:300])
        _w, xs_late, ys_late = fit(instances[-300:])
        accuracy_cross = (np.sign(xs_late @ w_early) == ys_late).mean()
        assert accuracy_cross < 0.9  # the early model is stale

    def test_deterministic(self):
        a, _ = higgs_like(10, seed=1)
        b, _ = higgs_like(10, seed=1)
        assert a == b
