"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.algorithms.sgd import LogisticLoss
from repro.datagen import (connected_core, degree_histogram,
                           gaussian_mixture, higgs_like, livejournal_like,
                           pubmed_like, rmat_edges, rmat_edges_fast)


class TestGraphs:
    def test_rmat_deterministic(self):
        a = rmat_edges(64, 200, np.random.default_rng(1))
        b = rmat_edges(64, 200, np.random.default_rng(1))
        assert a == b

    def test_rmat_size_and_bounds(self):
        edges = rmat_edges(100, 300, np.random.default_rng(0))
        assert len(edges) == 300
        assert all(0 <= u < 100 and 0 <= v < 100 for u, v in edges)

    def test_rmat_no_self_loops_or_dups_by_default(self):
        edges = rmat_edges(64, 200, np.random.default_rng(0))
        assert all(u != v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_rmat_degree_skew(self):
        """R-MAT graphs are skewed: max degree far above the mean."""
        edges = rmat_edges(256, 2000, np.random.default_rng(0))
        histogram = degree_histogram(edges)
        max_degree = max(histogram)
        mean_degree = 2000 / 256
        assert max_degree > 4 * mean_degree

    def test_rmat_validation(self):
        with pytest.raises(ValueError):
            rmat_edges(1, 10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            rmat_edges(10, 10, np.random.default_rng(0), a=0.5, b=0.5,
                       c=0.2)

    def test_livejournal_like_source_reaches_most(self):
        edges = livejournal_like(n_vertices=300, n_edges=1500, seed=3)
        reachable_edges = connected_core(edges, 0)
        assert len(reachable_edges) > len(edges) * 0.5

    def test_connected_core_filters(self):
        edges = [(0, 1), (1, 2), (5, 6)]
        assert connected_core(edges, 0) == [(0, 1), (1, 2)]


class TestRmatFast:
    """Vectorized R-MAT: seeded determinism including flag-independence
    of the base random stream (satellite regression)."""

    def test_deterministic_under_a_fixed_seed(self):
        for flags in ({}, {"self_loops": True}, {"deduplicate": False},
                      {"self_loops": True, "deduplicate": False}):
            a = rmat_edges_fast(64, 300, np.random.default_rng(1), **flags)
            b = rmat_edges_fast(64, 300, np.random.default_rng(1), **flags)
            assert (a[0] == b[0]).all() and (a[1] == b[1]).all()

    def test_size_bounds_and_filters(self):
        src, dst = rmat_edges_fast(100, 300, np.random.default_rng(0))
        assert len(src) == len(dst) == 300
        assert src.dtype == dst.dtype == np.int64
        assert ((0 <= src) & (src < 100)).all()
        assert ((0 <= dst) & (dst < 100)).all()
        assert (src != dst).all()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert len(pairs) == 300

    def test_flags_filter_the_same_base_stream(self):
        """Toggling ``self_loops`` / ``deduplicate`` must change which
        candidates survive, never which numbers are drawn.  With both
        filters off the first batch survives whole, so it *is* the raw
        candidate stream; the filtered run's leading edges must equal a
        manual filter over exactly those candidates."""
        n, m, seed = 64, 300, 7
        raw_src, raw_dst = rmat_edges_fast(
            n, m, np.random.default_rng(seed),
            self_loops=True, deduplicate=False)
        expected = []
        seen = set()
        for u, v in zip(raw_src.tolist(), raw_dst.tolist()):
            if u == v or (u, v) in seen:
                continue
            seen.add((u, v))
            expected.append((u, v))
        src, dst = rmat_edges_fast(n, m, np.random.default_rng(seed))
        got = list(zip(src.tolist(), dst.tolist()))[:len(expected)]
        assert got == expected

    def test_degree_skew_preserved(self):
        src, _dst = rmat_edges_fast(256, 2000, np.random.default_rng(0))
        counts = np.bincount(src, minlength=256)
        assert counts.max() > 4 * (2000 / 256)

    def test_validation(self):
        with pytest.raises(ValueError):
            rmat_edges_fast(1, 10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            rmat_edges_fast(10, 10, np.random.default_rng(0),
                            a=0.5, b=0.5, c=0.2)


class TestPoints:
    def test_mixture_shapes(self):
        points, centres = gaussian_mixture(100, k=4, dim=20, seed=0)
        assert len(points) == 100
        assert centres.shape == (4, 20)
        assert points[0].shape == (20,)

    def test_mixture_deterministic(self):
        a, _ = gaussian_mixture(50, seed=9)
        b, _ = gaussian_mixture(50, seed=9)
        assert all((x == y).all() for x, y in zip(a, b))

    def test_points_cluster_around_centres(self):
        points, centres = gaussian_mixture(500, k=3, dim=5, spread=50.0,
                                           noise=0.5, seed=1)
        for point in points[:50]:
            nearest = min(np.linalg.norm(point - c) for c in centres)
            assert nearest < 5.0

    def test_drift_moves_centres(self):
        early, _ = gaussian_mixture(400, k=1, dim=3, noise=0.01, seed=2,
                                    drift=20.0)
        first_mean = np.mean(early[:50], axis=0)
        last_mean = np.mean(early[-50:], axis=0)
        assert np.linalg.norm(last_mean - first_mean) > 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_mixture(0)


class TestInstances:
    @pytest.mark.parametrize("factory,dim", [(higgs_like, 28),
                                             (pubmed_like, 200)])
    def test_learnable(self, factory, dim):
        """A linear model trained on the data recovers the labels —
        the property the SVM/LR workloads need."""
        instances, _w = factory(600, seed=4)
        xs = np.stack([inst.x() for inst in instances])
        ys = np.asarray([inst.label for inst in instances], dtype=float)
        loss = LogisticLoss(1e-4)
        w = np.zeros(dim)
        for _ in range(300):
            w = w - 0.5 * loss.gradient(w, xs, ys)
        accuracy = (np.sign(xs @ w) == ys).mean()
        assert accuracy > 0.8

    def test_pubmed_like_sparse(self):
        instances, _w = pubmed_like(20, dim=200, density=0.05, seed=0)
        x = instances[0].x()
        assert (x != 0).sum() <= 0.1 * 200

    def test_labels_are_binary(self):
        instances, _w = higgs_like(50, seed=0)
        assert {inst.label for inst in instances} <= {-1, 1}

    def test_drift_rotates_hyperplane(self):
        """With drift, early and late halves prefer different models."""
        instances, _w = higgs_like(1000, seed=5, noise=0.05, drift=1.5)
        loss = LogisticLoss(1e-4)

        def fit(block):
            xs = np.stack([inst.x() for inst in block])
            ys = np.asarray([inst.label for inst in block], dtype=float)
            w = np.zeros(28)
            for _ in range(200):
                w = w - 0.5 * loss.gradient(w, xs, ys)
            return w / np.linalg.norm(w), xs, ys

        w_early, _xs, _ys = fit(instances[:300])
        _w, xs_late, ys_late = fit(instances[-300:])
        accuracy_cross = (np.sign(xs_late @ w_early) == ys_late).mean()
        assert accuracy_cross < 0.9  # the early model is stale

    def test_deterministic(self):
        a, _ = higgs_like(10, seed=1)
        b, _ = higgs_like(10, seed=1)
        assert a == b
