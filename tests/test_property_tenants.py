"""Property test: random tenant interleavings satisfy the isolation
oracle.

Hypothesis draws 2-4 tenants with mixed programs (SSSP / PageRank /
reachability), random seeds, weights, arrival rounds and a random
scheduler window, runs them all under one JobManager, and checks every
tenant's flight-recorder digest and final state against the same spec
run alone on its own cluster.  Whatever interleaving the weighted
round-robin (plus arrivals and the per-window event budget) produces,
each tenant must be unable to tell it shared the pool.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JobManager, TenantQuota, run_solo

from .conftest import TENANT_APPS, tenant_spec

tenant_specs = st.lists(
    st.tuples(
        st.sampled_from(sorted(TENANT_APPS)),       # program
        st.integers(min_value=0, max_value=10_000),  # seed
        st.integers(min_value=1, max_value=3),       # WRR weight
        st.integers(min_value=0, max_value=3),       # arrival round
        st.booleans(),                               # issue a query?
    ),
    min_size=2, max_size=4,
)
windows = st.sampled_from([0.125, 0.25, 0.5])
budgets = st.sampled_from([500, 250_000])


def build_spec(index, app, seed, weight, arrival, query):
    return tenant_spec(
        f"tenant-{index}", seed=seed, app=app, horizon=2.0,
        query_times=((1.1, True),) if query else (),
        quota=TenantQuota(weight=weight, max_processors=2),
        arrival=arrival,
    )


@given(drawn=tenant_specs, window=windows, budget=budgets)
@settings(max_examples=10, deadline=None)
def test_random_interleavings_satisfy_isolation_oracle(
        drawn, window, budget):
    specs = [build_spec(index, *params)
             for index, params in enumerate(drawn)]
    manager = JobManager(pool_size=2 * len(specs), window=window,
                         window_max_events=budget)
    for spec in specs:
        manager.submit(spec)
    manager.run_until_all_done(max_rounds=20_000)
    assert set(manager.states().values()) == {"done"}
    digests = manager.digests()
    for spec in specs:
        solo = run_solo(spec)
        assert digests[spec.tenant] == solo.trace.digest(), \
            f"{spec.tenant} ({spec.app_factory.__name__}) diverged"
        assert manager.final_values(spec.tenant) == solo.main_values()
