"""Columnar-engine tests (the third A/B gate).

Three oracles, mirroring how the delta path earned trust:

* **Digest parity** — the scalar path is the semantics; with
  ``columnar=True`` the same seed must produce byte-identical
  flight-recorder digests and final state, on the simulator and on the
  live multiprocessing backend (whose store journal ships column slabs
  instead of per-entry tuples).
* **Kernel exactness** — :func:`make_combine_kernel` must compute
  bit-identical values to the scalar algebra closures it replaces, and
  return plain Python scalars (numpy scalar reprs would poison the
  canonical digest).
* **Bulk sweeps** — :class:`BulkRunner`'s whole-graph passes must match
  independent scalar references, and its slab applies must commit the
  same state into any store layout.
"""

import math

import numpy as np
import pytest

from repro.algorithms import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.core import Application, TornadoConfig, TornadoJob
from repro.core.columnar import (VECTOR_MIN_SLOTS, BulkRunner,
                                 make_combine_kernel)
from repro.core.dsl import (Algebra, AlgebraicProgram, VectorSpec,
                            min_label, reachability, shortest_paths,
                            widest_path)
from repro.live.store import WorkerStore
from repro.storage import VersionedStore
from repro.streams import UniformRate, edge_stream

EDGES_W = [
    ("s", "a", 1.0), ("s", "b", 4.0), ("a", "c", 2.0), ("b", "c", 1.0),
    ("c", "d", 3.0), ("d", "e", 1.0), ("b", "e", 9.0), ("e", "f", 2.0),
    ("f", "g", 1.0), ("d", "g", 7.0), ("a", "h", 5.0), ("h", "d", 1.0),
]


def run_sim(program_factory, *, columnar, edges=EDGES_W, undirected=False,
            seed=7):
    app = Application(program_factory(), EdgeStreamRouter(
        undirected=undirected), name="columnar-ab")
    job = TornadoJob(app, TornadoConfig(
        n_processors=3, report_interval=0.01, storage_backend="memory",
        trace_enabled=True, seed=seed, columnar=columnar))
    job.feed(edge_stream(edges, UniformRate(rate=1000.0)))
    job.run_for(4.0)
    return job


# ------------------------------------------------------------ digests
class TestSimDigestParity:
    def test_sssp_digest_identical_columnar_on_off(self):
        jobs = {flag: run_sim(lambda: SSSPProgram("s"), columnar=flag)
                for flag in (False, True)}
        assert jobs[True].trace.digest() == jobs[False].trace.digest()
        assert {v: s.distance for v, s in jobs[True].main_values().items()} \
            == {v: s.distance for v, s in jobs[False].main_values().items()}

    @pytest.mark.parametrize("factory,undirected", [
        (lambda: shortest_paths("s"), False),
        (lambda: widest_path("s"), False),
        (lambda: reachability("s"), False),
        (min_label, True),
    ], ids=["shortest-paths", "widest-path", "reachability", "min-label"])
    def test_dsl_kernels_preserve_the_digest(self, factory, undirected):
        jobs = {flag: run_sim(factory, columnar=flag,
                              undirected=undirected)
                for flag in (False, True)}
        assert jobs[True].trace.digest() == jobs[False].trace.digest()
        assert {v: s.value for v, s in jobs[True].main_values().items()} \
            == {v: s.value for v, s in jobs[False].main_values().items()}
        # The vector kernel really was active on the columnar side.
        snapshot = jobs[True].metrics.snapshot()
        assert snapshot["core.vector_gathers"] > 0
        assert jobs[False].metrics.snapshot().get(
            "core.vector_gathers", 0) == 0

    def test_columnar_run_is_seed_deterministic(self):
        first = run_sim(lambda: shortest_paths("s"), columnar=True)
        second = run_sim(lambda: shortest_paths("s"), columnar=True)
        assert first.trace.digest() == second.trace.digest()


# ------------------------------------------------------------- kernels
def _many_slots(values):
    assert len(values) >= VECTOR_MIN_SLOTS
    return {f"p{i}": v for i, v in enumerate(values)}


class TestCombineKernel:
    def test_min_kernel_bit_identical_to_scalar(self):
        program = shortest_paths("s")
        kernel = make_combine_kernel(program.algebra)
        assert kernel is not None
        offers = [3.7, 1.2000000000000002, 9.0, 1.2, 5.5, 8.8, 2.1, 4.4]
        slots = _many_slots(offers)
        got = kernel("v", slots)
        assert got == program.algebra.combine("v", slots)
        assert type(got) is float

    def test_max_kernel_and_source_short_circuit(self):
        program = widest_path("s")
        kernel = make_combine_kernel(program.algebra)
        slots = _many_slots([1.0, 7.5, 3.25, 7.5, 0.5, 2.0, 6.0, 7.25])
        assert kernel("v", slots) == 7.5
        assert kernel("s", {}) == math.inf          # source wins, no slots

    def test_any_kernel_returns_python_bool(self):
        program = reachability("s")
        kernel = make_combine_kernel(program.algebra)
        got = kernel("v", _many_slots([False] * 7 + [True]))
        assert got is True
        assert kernel("v", _many_slots([False] * 8)) is False

    def test_min_label_includes_self(self):
        program = min_label()
        kernel = make_combine_kernel(program.algebra)
        got = kernel(3, _many_slots(list(range(10, 18))))
        assert got == 3                             # own id beats offers
        assert type(got) is int
        assert kernel(40, _many_slots(list(range(10, 18)))) == 10

    def test_cap_collapses_to_empty(self):
        program = shortest_paths("s", max_distance=5.0)
        kernel = make_combine_kernel(program.algebra)
        over = kernel("v", _many_slots([6.0, 7.0, 8.0, 9.0,
                                        10.0, 11.0, 12.0, 13.0]))
        assert math.isinf(over)
        assert over == program.algebra.combine(
            "v", _many_slots([6.0] * 8))

    def test_small_windows_use_the_scalar_closure(self):
        calls = []

        def scalar(vertex_id, slots):
            calls.append(vertex_id)
            return min(slots.values())

        algebra = Algebra(bottom=math.inf, combine=scalar,
                          extend=lambda v, w: v + w,
                          vector_spec=VectorSpec(reduce="min",
                                                 extend="add"))
        kernel = make_combine_kernel(algebra)
        assert kernel("v", {"p": 2.0}) == 2.0
        assert calls == ["v"]

    def test_unconvertible_values_fall_back_to_scalar(self):
        def scalar(vertex_id, slots):
            return sorted(slots.values())[0]

        algebra = Algebra(bottom=None, combine=scalar,
                          extend=lambda v, w: v,
                          vector_spec=VectorSpec(reduce="min",
                                                 extend="copy"))
        kernel = make_combine_kernel(algebra)
        slots = _many_slots([(1.0, "a")] * 7 + [(0.5, "b")])
        assert kernel("v", slots) == (0.5, "b")

    def test_unknown_spec_yields_no_kernel(self):
        algebra = Algebra(bottom=0.0,
                          combine=lambda v, s: sum(s.values()),
                          extend=lambda v, w: v,
                          vector_spec=VectorSpec(reduce="sum",
                                                 extend="copy"))
        assert make_combine_kernel(algebra) is None
        plain = Algebra(bottom=0.0,
                        combine=lambda v, s: 0.0,
                        extend=lambda v, w: v)
        assert make_combine_kernel(plain) is None

    def test_enable_columnar_kernels_is_idempotent(self):
        program = shortest_paths("s")
        scalar = program._combine
        assert program.enable_columnar_kernels() is True
        swapped = program._combine
        assert swapped is not scalar
        assert program.enable_columnar_kernels() is True
        assert program._combine is swapped          # not re-wrapped
        no_spec = Algebra(bottom=0, combine=lambda v, s: 0,
                          extend=lambda v, w: v)
        assert AlgebraicProgram(no_spec).enable_columnar_kernels() is False


# --------------------------------------------------------- bulk sweeps
def _small_graph(seed=5, n=64, m=256):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    weights = rng.integers(1, 10, size=m).astype(np.float64)
    return src, dst, weights


class TestBulkRunner:
    def test_pagerank_matches_scalar_power_iteration(self):
        n = 64
        src, dst, _w = _small_graph(n=n)
        runner = BulkRunner(store=None)
        final = None
        for _it, _ids, ranks in runner.pagerank_sweep(n, src, dst,
                                                      sweeps=10):
            final = ranks
        # Scalar reference: same damping/dangling model, python floats.
        out_degree = [0] * n
        for u in src.tolist():
            out_degree[u] += 1
        ranks = [1.0 / n] * n
        for _sweep in range(10):
            inflow = [0.0] * n
            for u, v in zip(src.tolist(), dst.tolist()):
                inflow[v] += ranks[u] / out_degree[u]
            dangling = sum(r for r, d in zip(ranks, out_degree) if d == 0)
            ranks = [0.15 / n + 0.85 * (x + dangling / n) for x in inflow]
        assert np.allclose(final, ranks, rtol=1e-12, atol=1e-15)
        assert final.sum() == pytest.approx(1.0)

    def test_sssp_matches_dijkstra(self):
        n = 64
        src, dst, weights = _small_graph(n=n)
        edges = [(int(u), int(v), float(w))
                 for u, v, w in zip(src, dst, weights)]
        # reference_sssp keeps the *last* weight per (u, v) pair, as the
        # stream path would; collapse duplicates the same way here.
        last = {}
        for u, v, w in edges:
            last[(u, v)] = w
        edges = [(u, v, w) for (u, v), w in last.items()]
        src = np.array([u for u, _v, _w in edges], dtype=np.int64)
        dst = np.array([v for _u, v, _w in edges], dtype=np.int64)
        weights = np.array([w for _u, _v, w in edges])
        runner = BulkRunner(VersionedStore(columnar=True))
        for iteration, ids, values in runner.sssp_sweep(n, src, dst,
                                                        weights, root=0):
            runner.apply(iteration, ids, values)
        got = runner.final_values()
        expected = reference_sssp(edges, 0)
        for vertex, distance in expected.items():
            if math.isinf(distance):
                assert vertex not in got
            else:
                assert got[vertex] == distance

    def test_components_find_min_reachable_label(self):
        n = 32
        src, dst, _w = _small_graph(seed=9, n=n, m=48)
        runner = BulkRunner(VersionedStore(columnar=True))
        for iteration, ids, values in runner.components_sweep(n, src,
                                                              dst):
            runner.apply(iteration, ids, values)
        got = runner.final_values()
        # Union-find reference over the undirected view.
        parent = list(range(n))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in zip(src.tolist(), dst.tolist()):
            parent[find(u)] = find(v)
        roots = {}
        for vertex in range(n):
            roots.setdefault(find(vertex), []).append(vertex)
        expected = {v: min(members) for members in roots.values()
                    for v in members}
        assert got == expected

    def test_apply_commits_identically_to_every_layout(self):
        n = 32
        src, dst, weights = _small_graph(seed=3, n=n, m=64)
        steps = list(BulkRunner(store=None).sssp_sweep(
            n, src, dst, weights, root=0))
        views = {}
        for layout in ("legacy", "columnar"):
            store = VersionedStore(delta_path=False) if layout == "legacy" \
                else VersionedStore(columnar=True)
            runner = BulkRunner(store)
            for iteration, ids, values in steps:
                runner.apply(iteration, ids, values)
            views[layout] = runner.final_values()
            assert all(type(k) is int for k in views[layout])
            assert all(type(v) is float for v in views[layout].values())
        assert views["legacy"] == views["columnar"]


# ------------------------------------------------------ live slab path
class TestWorkerStoreSlabs:
    def test_take_slabs_coalesces_same_loop_runs(self):
        store = WorkerStore(columnar=True)
        store.put("main", 0, 1, 10.0)
        store.put("main", 1, 1, 11.0)
        store.put("branch-1", 0, 1, 99.0)
        store.put("main", 2, 2, 12.0)
        slabs = store.take_slabs()
        assert [(loop, keys, iters) for loop, keys, iters, _v in slabs] \
            == [("main", (0, 1), (1, 1)),
                ("branch-1", (0,), (1,)),
                ("main", (2,), (2,))]
        assert store.take_slabs() == []             # journal drained

    def test_slabs_carry_plain_python_scalars(self):
        store = WorkerStore(columnar=True)
        store.put_columns("main", np.array([4, 5], dtype=np.int64),
                          np.array([2, 3], dtype=np.int64),
                          np.array([1.5, 2.5]))
        ((_loop, keys, iterations, values),) = store.take_slabs()
        assert all(type(k) is int for k in keys)
        assert all(type(i) is int for i in iterations)
        assert all(type(v) is float for v in values)
        assert (keys, iterations, values) == ((4, 5), (2, 3), (1.5, 2.5))

    def test_slab_replay_reproduces_the_worker_view(self):
        worker = WorkerStore(columnar=True)
        worker.put_columns("main", [0, 1, 2], 0, [5.0, 6.0, 7.0])
        worker.put("main", 1, 1, 60.0)
        worker.put("branch-1", 9, 0, "b")
        master = VersionedStore(columnar=True)
        for loop, keys, iterations, values in worker.take_slabs():
            master.put_columns(loop, keys, iterations, values)
        assert master.snapshot("main") == worker.snapshot("main")
        assert master.snapshot("branch-1") == worker.snapshot("branch-1")
        assert master.version_count() == worker.version_count()


class TestLiveColumnarDigest:
    def test_live_columnar_digest_matches_scalar_sim(self):
        """The whole slab journal path (worker journal → StoreWrite
        slab frames → master replay) is digest-invisible: a live
        columnar run digests identically to the scalar simulator run of
        the same seed (sync tree dataflow, the provable regime)."""
        from repro.live import canonical_digest
        tree = [("s", "a"), ("a", "b"), ("a", "c"), ("b", "d"),
                ("c", "e"), ("e", "f"), ("b", "g")]

        def build(backend, columnar):
            app = Application(SSSPProgram("s"), EdgeStreamRouter(),
                              name="sssp")
            return TornadoJob(app, TornadoConfig(
                backend=backend, n_processors=2, delay_bound=1,
                report_interval=0.02 if backend == "live" else 0.01,
                storage_backend="memory", trace_enabled=True, seed=7,
                columnar=columnar))

        burst = UniformRate(rate=1e9)
        live = build("live", columnar=True)
        try:
            live.feed(edge_stream(tree, burst))
            live.run_until_converged(timeout=60.0)
            live.finalize(timeout=30.0)
            live_digest = canonical_digest(live)
        finally:
            live.shutdown()
        sim = build("sim", columnar=False)
        sim.feed(edge_stream(tree, burst))
        sim.run_for(3.0)
        assert live_digest == canonical_digest(sim)
