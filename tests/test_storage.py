"""Unit + property tests for the versioned store, backends, checkpoints."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.simulator import SimulatedDisk, Simulator
from repro.storage import (CheckpointManifest, DiskBackend, InMemoryBackend,
                           VersionedStore)
from repro.storage.versioned import REBASE_INTERVAL


@pytest.fixture(params=[False, True], ids=["legacy", "delta"])
def store(request):
    """Every store contract test runs against both layouts: the flat
    legacy dict and the delta path's indexed/rebase/cached one."""
    return VersionedStore(delta_path=request.param)


class TestVersionedStore:
    def test_put_get_roundtrip(self, store):
        store.put("main", "v1", 3, "value")
        assert store.get("main", "v1") == "value"
        assert store.get_version("main", "v1") == (3, "value")

    def test_snapshot_reads_latest_at_or_below_bound(self, store):
        for iteration, value in [(1, "a"), (5, "b"), (9, "c")]:
            store.put("main", "k", iteration, value)
        assert store.get("main", "k", max_iteration=5) == "b"
        assert store.get("main", "k", max_iteration=6) == "b"
        assert store.get("main", "k", max_iteration=100) == "c"
        assert store.get_version("main", "k", max_iteration=0) is None

    def test_missing_key_raises(self, store):
        with pytest.raises(StorageError):
            store.get("main", "ghost")

    def test_same_iteration_overwrites(self, store):
        store.put("main", "k", 2, "old")
        store.put("main", "k", 2, "new")
        assert store.get("main", "k") == "new"
        assert store.version_count("main") == 1

    def test_out_of_order_puts(self, store):
        store.put("main", "k", 9, "late")
        store.put("main", "k", 2, "early")
        assert store.get("main", "k", max_iteration=3) == "early"
        assert store.get("main", "k") == "late"

    def test_negative_iteration_rejected(self, store):
        with pytest.raises(StorageError):
            store.put("main", "k", -1, "v")

    def test_loops_are_isolated(self, store):
        store.put("main", "k", 1, "main-value")
        store.put("branch-1", "k", 1, "branch-value")
        assert store.get("main", "k") == "main-value"
        assert store.get("branch-1", "k") == "branch-value"
        assert store.drop_loop("branch-1") == 1
        with pytest.raises(StorageError):
            store.get("branch-1", "k")

    def test_snapshot_whole_loop(self, store):
        store.put("main", "a", 1, 10)
        store.put("main", "a", 4, 40)
        store.put("main", "b", 2, 20)
        view = store.snapshot("main", max_iteration=3)
        assert view == {"a": 10, "b": 20}

    def test_snapshot_skips_keys_born_after_bound(self, store):
        store.put("main", "young", 8, 1)
        assert store.snapshot("main", max_iteration=3) == {}

    def test_truncate_keeps_snapshot_readable(self, store):
        for iteration in (1, 3, 5, 7):
            store.put("main", "k", iteration, iteration * 10)
        dropped = store.truncate_before("main", 5)
        assert dropped == 2  # versions 1 and 3 go; 5 stays readable
        assert store.get("main", "k", max_iteration=6) == 50
        assert store.get("main", "k") == 70

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)),
                    min_size=1, max_size=40))
    def test_property_latest_below_bound(self, puts):
        """get(max_iteration=b) always returns the value with the largest
        iteration ≤ b, regardless of put order — in both layouts."""
        for delta in (False, True):
            store = VersionedStore(delta_path=delta)
            reference = {}
            for iteration, value in puts:
                store.put("main", "k", iteration, value)
                reference[iteration] = value
            for bound in range(22):
                eligible = [i for i in reference if i <= bound]
                found = store.get_version("main", "k", max_iteration=bound)
                if eligible:
                    assert found == (max(eligible),
                                     reference[max(eligible)])
                else:
                    assert found is None


class TestDeltaStore:
    """Delta-path-only behavior: batched I/O accounting, the pending-log
    rebase, and the generation-checked snapshot cache."""

    def test_put_many_get_many_roundtrip_and_accounting(self):
        store = VersionedStore(delta_path=True)
        written = store.put_many("main", [("a", 1, 10), ("b", 2, 20),
                                          ("a", 4, 40)])
        assert written == 3
        assert store.puts == 3
        found = store.get_many("main", ["a", "b", "ghost"],
                               max_iteration=3)
        assert found == {"a": (1, 10), "b": (2, 20)}
        assert store.reads == 3           # one charge per key walked
        store.get_many("main", ["a"], internal=True)
        assert store.reads == 3
        assert store.internal_reads == 1

    def test_peek_bills_internal_reads(self):
        store = VersionedStore(delta_path=True)
        store.put("main", "k", 1, "v")
        assert store.peek_version("main", "k") == (1, "v")
        assert (store.reads, store.internal_reads) == (0, 1)

    def test_snapshot_cache_hits_until_a_put_invalidates(self):
        store = VersionedStore(delta_path=True)
        store.put("main", "a", 1, 10)
        first = store.snapshot("main", max_iteration=5)
        second = store.snapshot("main", max_iteration=5)
        assert first == second == {"a": 10}
        assert (store.cache_misses, store.cache_hits) == (1, 1)
        second["a"] = 999                 # caller views are copies
        assert store.snapshot("main", max_iteration=5) == {"a": 10}
        store.put("main", "a", 7, 70)     # generation bump
        assert store.snapshot("main", max_iteration=5) == {"a": 10}
        assert store.cache_misses == 2

    def test_put_many_bumps_generation_once(self):
        store = VersionedStore(delta_path=True)
        store.put_many("main", [("a", 1, 10)])
        store.snapshot("main")
        store.put_many("main", [("b", 2, 20), ("c", 3, 30)])
        assert store.snapshot("main") == {"a": 10, "b": 20, "c": 30}
        assert store.cache_misses == 2

    def test_pending_log_rebases_on_interval_and_reads(self):
        store = VersionedStore(delta_path=True)
        for iteration in range(REBASE_INTERVAL):
            store.put("main", "k", iteration, iteration)
        assert store.rebases == 1         # interval-triggered, ascending
        store.put("main", "k", 3, "rewrite")   # out-of-order pending
        assert store.get("main", "k", max_iteration=3) == "rewrite"
        assert store.rebases == 2         # read-triggered consolidation
        assert store.get("main", "k") == REBASE_INTERVAL - 1

    def test_put_if_newer_sees_pending_writes(self):
        store = VersionedStore(delta_path=True)
        store.put("main", "k", 5, "newer")     # still in the pending log
        assert not store.put_if_newer("main", "k", 4, "stale")
        assert store.put_if_newer("main", "k", 6, "newest")
        assert store.get("main", "k") == "newest"

    def test_drop_loop_clears_index_and_cache(self):
        store = VersionedStore(delta_path=True)
        store.put("branch-1", "k", 1, "v")
        store.put("main", "k", 1, "kept")
        store.snapshot("branch-1")
        assert store.drop_loop("branch-1") == 1
        assert store.keys("branch-1") == []
        assert store.snapshot("branch-1") == {}
        assert store.get("main", "k") == "kept"

    def test_truncate_invalidates_the_snapshot_cache(self):
        store = VersionedStore(delta_path=True)
        for iteration in (1, 3, 5):
            store.put("main", "k", iteration, iteration * 10)
        assert store.snapshot("main", max_iteration=2) == {"k": 10}
        assert store.truncate_before("main", 5) == 2
        # The GC invalidated the cached view: versions 10 and 30 are gone.
        assert store.snapshot("main", max_iteration=2) == {}
        assert store.snapshot("main") == {"k": 50}

    def test_version_count_per_loop_and_total(self):
        store = VersionedStore(delta_path=True)
        store.put("main", "a", 1, 10)
        store.put("main", "a", 2, 20)
        store.put("branch-1", "b", 1, 30)
        assert store.version_count("main") == 2
        assert store.version_count("branch-1") == 1
        assert store.version_count() == 3

    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                              st.integers(0, 12), st.integers(0, 99)),
                    min_size=1, max_size=30),
           st.integers(0, 13))
    def test_layouts_agree_on_any_workload(self, puts, bound):
        legacy = VersionedStore(delta_path=False)
        delta = VersionedStore(delta_path=True)
        for key, iteration, value in puts:
            legacy.put("main", key, iteration, value)
            delta.put("main", key, iteration, value)
        assert legacy.snapshot("main", max_iteration=bound) \
            == delta.snapshot("main", max_iteration=bound)
        assert legacy.version_count("main") == delta.version_count("main")
        legacy.truncate_before("main", bound)
        delta.truncate_before("main", bound)
        assert legacy.snapshot("main") == delta.snapshot("main")


class TestBackends:
    def test_in_memory_flush_cost(self):
        sim = Simulator()
        backend = InMemoryBackend(sim, batch_latency=0.01, record_cost=0.0)
        done = []
        backend.flush(100, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.01)]
        assert backend.flushes == 1
        assert backend.records_flushed == 100

    def test_disk_backend_charges_disk(self):
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0", seek_cost=1.0, record_cost=0.1)
        backend = DiskBackend(disk)
        done = []
        backend.flush(10, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.0)]
        assert backend.records_flushed == 10

    def test_disk_backend_read(self):
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0", seek_cost=0.5, record_cost=0.0)
        backend = DiskBackend(disk)
        done = []
        backend.read(4, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5)]


class TestCheckpointManifest:
    def test_flush_frontier_monotone(self):
        manifest = CheckpointManifest()
        manifest.record_flush("main", "p0", 5)
        manifest.record_flush("main", "p0", 3)  # stale report ignored
        assert manifest.flushed[("main", "p0")] == 5

    def test_restart_iteration(self):
        manifest = CheckpointManifest()
        assert manifest.restart_iteration("main") == -1
        manifest.record_terminated("main", 7)
        manifest.record_terminated("main", 4)
        assert manifest.restart_iteration("main") == 7

    def test_durable_frontier_is_min_over_processors(self):
        manifest = CheckpointManifest()
        manifest.record_flush("main", "p0", 9)
        manifest.record_flush("main", "p1", 4)
        assert manifest.durable_frontier("main", ["p0", "p1"]) == 4
        assert manifest.durable_frontier("main", ["p0", "p1", "p2"]) == -1
        assert manifest.durable_frontier("main", []) == -1

    def test_restart_iteration_no_terminated_iteration(self):
        # A loop that never terminated an iteration (or was never seen at
        # all) restarts from scratch, even if flushes were recorded.
        manifest = CheckpointManifest()
        manifest.record_flush("main", "p0", 3)
        assert manifest.restart_iteration("main") == -1
        assert manifest.restart_iteration("branch-1") == -1

    def test_durable_frontier_with_never_flushed_processor(self):
        manifest = CheckpointManifest()
        manifest.record_flush("main", "p0", 9)
        # p1 exists in the cluster but has never flushed: the loop-wide
        # durable frontier collapses to "nothing durable".
        assert manifest.durable_frontier("main", ["p0", "p1"]) == -1

    def test_out_of_order_record_flush_keeps_max(self):
        manifest = CheckpointManifest()
        for iteration in (2, 7, 4, 7, 1):
            manifest.record_flush("main", "p0", iteration)
        assert manifest.flushed[("main", "p0")] == 7
        assert manifest.durable_frontier("main", ["p0"]) == 7

    def test_planted_restart_skew_only_applies_after_termination(self):
        # The test-only mutation must not fire before any iteration has
        # terminated (there is nothing to skew), and must clamp at -1.
        manifest = CheckpointManifest(planted_restart_skew=1)
        assert manifest.restart_iteration("main") == -1
        manifest.record_terminated("main", 4)
        assert manifest.restart_iteration("main") == 5
        manifest.planted_restart_skew = -10
        assert manifest.restart_iteration("main") == -1

