"""Unit + property tests for the versioned store, backends, checkpoints."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.simulator import SimulatedDisk, Simulator
from repro.storage import (CheckpointManifest, DiskBackend, InMemoryBackend,
                           VersionedStore)
from repro.storage.versioned import REBASE_INTERVAL


LAYOUTS = {
    "legacy": dict(delta_path=False),
    "delta": dict(delta_path=True),
    "columnar": dict(columnar=True),
}


def make_store(layout: str, **overrides) -> VersionedStore:
    return VersionedStore(**{**LAYOUTS[layout], **overrides})


@pytest.fixture(params=list(LAYOUTS), ids=list(LAYOUTS))
def store(request):
    """Every store contract test runs against all three layouts: the
    flat legacy dict, the delta path's indexed/rebase/cached one, and
    the numpy-slab columnar engine."""
    return make_store(request.param)


@pytest.fixture(params=["delta", "columnar"])
def indexed_store(request):
    """The two indexed layouts (per-loop index + snapshot cache +
    batched I/O accounting) share these behaviors."""
    return make_store(request.param)


class TestVersionedStore:
    def test_put_get_roundtrip(self, store):
        store.put("main", "v1", 3, "value")
        assert store.get("main", "v1") == "value"
        assert store.get_version("main", "v1") == (3, "value")

    def test_snapshot_reads_latest_at_or_below_bound(self, store):
        for iteration, value in [(1, "a"), (5, "b"), (9, "c")]:
            store.put("main", "k", iteration, value)
        assert store.get("main", "k", max_iteration=5) == "b"
        assert store.get("main", "k", max_iteration=6) == "b"
        assert store.get("main", "k", max_iteration=100) == "c"
        assert store.get_version("main", "k", max_iteration=0) is None

    def test_missing_key_raises(self, store):
        with pytest.raises(StorageError):
            store.get("main", "ghost")

    def test_same_iteration_overwrites(self, store):
        store.put("main", "k", 2, "old")
        store.put("main", "k", 2, "new")
        assert store.get("main", "k") == "new"
        assert store.version_count("main") == 1

    def test_out_of_order_puts(self, store):
        store.put("main", "k", 9, "late")
        store.put("main", "k", 2, "early")
        assert store.get("main", "k", max_iteration=3) == "early"
        assert store.get("main", "k") == "late"

    def test_negative_iteration_rejected(self, store):
        with pytest.raises(StorageError):
            store.put("main", "k", -1, "v")

    def test_loops_are_isolated(self, store):
        store.put("main", "k", 1, "main-value")
        store.put("branch-1", "k", 1, "branch-value")
        assert store.get("main", "k") == "main-value"
        assert store.get("branch-1", "k") == "branch-value"
        assert store.drop_loop("branch-1") == 1
        with pytest.raises(StorageError):
            store.get("branch-1", "k")

    def test_snapshot_whole_loop(self, store):
        store.put("main", "a", 1, 10)
        store.put("main", "a", 4, 40)
        store.put("main", "b", 2, 20)
        view = store.snapshot("main", max_iteration=3)
        assert view == {"a": 10, "b": 20}

    def test_snapshot_skips_keys_born_after_bound(self, store):
        store.put("main", "young", 8, 1)
        assert store.snapshot("main", max_iteration=3) == {}

    def test_truncate_keeps_snapshot_readable(self, store):
        for iteration in (1, 3, 5, 7):
            store.put("main", "k", iteration, iteration * 10)
        dropped = store.truncate_before("main", 5)
        assert dropped == 2  # versions 1 and 3 go; 5 stays readable
        assert store.get("main", "k", max_iteration=6) == 50
        assert store.get("main", "k") == 70

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)),
                    min_size=1, max_size=40))
    def test_property_latest_below_bound(self, puts):
        """get(max_iteration=b) always returns the value with the largest
        iteration ≤ b, regardless of put order — in every layout."""
        for layout in LAYOUTS:
            store = make_store(layout)
            reference = {}
            for iteration, value in puts:
                store.put("main", "k", iteration, value)
                reference[iteration] = value
            for bound in range(22):
                eligible = [i for i in reference if i <= bound]
                found = store.get_version("main", "k", max_iteration=bound)
                if eligible:
                    assert found == (max(eligible),
                                     reference[max(eligible)])
                else:
                    assert found is None


class TestIndexedStore:
    """Behavior shared by the indexed layouts (delta + columnar):
    batched I/O accounting and the generation-checked snapshot cache."""

    def test_put_many_get_many_roundtrip_and_accounting(
            self, indexed_store):
        store = indexed_store
        written = store.put_many("main", [("a", 1, 10), ("b", 2, 20),
                                          ("a", 4, 40)])
        assert written == 3
        assert store.puts == 3
        found = store.get_many("main", ["a", "b", "ghost"],
                               max_iteration=3)
        assert found == {"a": (1, 10), "b": (2, 20)}
        assert store.reads == 3           # one charge per key walked
        store.get_many("main", ["a"], internal=True)
        assert store.reads == 3
        assert store.internal_reads == 1

    def test_peek_bills_internal_reads(self, indexed_store):
        store = indexed_store
        store.put("main", "k", 1, "v")
        assert store.peek_version("main", "k") == (1, "v")
        assert (store.reads, store.internal_reads) == (0, 1)

    def test_snapshot_reads_split_protocol_vs_internal(self,
                                                      indexed_store):
        store = indexed_store
        store.put("main", "a", 1, 10)
        store.put("main", "b", 2, 20)
        store.snapshot("main")
        assert (store.reads, store.internal_reads) == (2, 0)
        store.put("main", "c", 3, 30)
        store.snapshot("main", internal=True)
        assert (store.reads, store.internal_reads) == (2, 3)

    def test_snapshot_cache_hits_until_a_put_invalidates(
            self, indexed_store):
        store = indexed_store
        store.put("main", "a", 1, 10)
        first = store.snapshot("main", max_iteration=5)
        second = store.snapshot("main", max_iteration=5)
        assert first == second == {"a": 10}
        assert (store.cache_misses, store.cache_hits) == (1, 1)
        second["a"] = 999                 # caller views are copies
        assert store.snapshot("main", max_iteration=5) == {"a": 10}
        store.put("main", "a", 7, 70)     # generation bump
        assert store.snapshot("main", max_iteration=5) == {"a": 10}
        assert store.cache_misses == 2

    def test_put_many_bumps_generation_once(self, indexed_store):
        store = indexed_store
        store.put_many("main", [("a", 1, 10)])
        store.snapshot("main")
        store.put_many("main", [("b", 2, 20), ("c", 3, 30)])
        assert store.snapshot("main") == {"a": 10, "b": 20, "c": 30}
        assert store.cache_misses == 2

    def test_put_if_newer_sees_pending_writes(self, indexed_store):
        store = indexed_store
        store.put("main", "k", 5, "newer")     # still in the pending log
        assert not store.put_if_newer("main", "k", 4, "stale")
        assert store.put_if_newer("main", "k", 6, "newest")
        assert store.get("main", "k") == "newest"

    def test_drop_loop_clears_index_and_cache(self, indexed_store):
        store = indexed_store
        store.put("branch-1", "k", 1, "v")
        store.put("main", "k", 1, "kept")
        store.snapshot("branch-1")
        assert store.drop_loop("branch-1") == 1
        assert store.keys("branch-1") == []
        assert store.snapshot("branch-1") == {}
        assert store.get("main", "k") == "kept"

    def test_truncate_invalidates_the_snapshot_cache(self, indexed_store):
        store = indexed_store
        for iteration in (1, 3, 5):
            store.put("main", "k", iteration, iteration * 10)
        assert store.snapshot("main", max_iteration=2) == {"k": 10}
        assert store.truncate_before("main", 5) == 2
        # The GC invalidated the cached view: versions 10 and 30 are gone.
        assert store.snapshot("main", max_iteration=2) == {}
        assert store.snapshot("main") == {"k": 50}

    def test_version_count_per_loop_and_total(self, indexed_store):
        store = indexed_store
        store.put("main", "a", 1, 10)
        store.put("main", "a", 2, 20)
        store.put("branch-1", "b", 1, 30)
        assert store.version_count("main") == 2
        assert store.version_count("branch-1") == 1
        assert store.version_count() == 3


class TestDeltaStore:
    """Delta-path-only behavior: the per-chain pending-log rebase."""

    def test_pending_log_rebases_on_interval_and_reads(self):
        store = VersionedStore(delta_path=True)
        for iteration in range(REBASE_INTERVAL):
            store.put("main", "k", iteration, iteration)
        assert store.rebases == 1         # interval-triggered, ascending
        store.put("main", "k", 3, "rewrite")   # out-of-order pending
        assert store.get("main", "k", max_iteration=3) == "rewrite"
        assert store.rebases == 2         # read-triggered consolidation
        assert store.get("main", "k") == REBASE_INTERVAL - 1

    def test_custom_rebase_interval_changes_cadence(self):
        """The TornadoConfig-promoted knob really controls rebase
        cadence: interval 4 folds 16 ascending writes four times where
        the default interval folds once."""
        eager = VersionedStore(delta_path=True, rebase_interval=4)
        for iteration in range(16):
            eager.put("main", "k", iteration, iteration)
        assert eager.rebases == 4
        default = VersionedStore(delta_path=True)
        for iteration in range(16):
            default.put("main", "k", iteration, iteration)
        assert default.rebases == 1
        lazy = VersionedStore(delta_path=True, rebase_interval=100)
        for iteration in range(16):
            lazy.put("main", "k", iteration, iteration)
        assert lazy.rebases == 0          # nothing folded until a read
        assert lazy.get("main", "k") == 15
        assert lazy.rebases == 1

    def test_custom_snapshot_cache_size_evicts_lru(self):
        store = VersionedStore(delta_path=True, snapshot_cache_size=2)
        store.put("main", "k", 1, 10)
        for bound in (1, 2, 3):          # three views, cache holds two
            store.snapshot("main", max_iteration=bound)
        store.snapshot("main", max_iteration=1)   # evicted -> miss again
        assert store.cache_misses == 4
        store.snapshot("main", max_iteration=3)   # still cached -> hit
        assert store.cache_hits == 1

    def test_store_params_validated(self):
        with pytest.raises(StorageError):
            VersionedStore(rebase_interval=0)
        with pytest.raises(StorageError):
            VersionedStore(snapshot_cache_size=0)


class TestColumnarStore:
    """Columnar-only behavior: slab rebases and the dense-id fast path."""

    def test_slab_rebases_on_interval(self):
        store = VersionedStore(columnar=True, rebase_interval=4)
        for iteration in range(4):
            store.put("main", "k", iteration, iteration)
        assert store.rebases == 1         # pending log hit the interval
        store.put("main", "k", 9, 90)
        assert store.rebases == 1
        assert store.get("main", "k") == 90   # read-triggered settle
        assert store.rebases == 2

    def test_put_columns_scalar_iteration_and_arrays(self):
        store = VersionedStore(columnar=True)
        assert store.put_columns("main", [0, 1, 2], 3,
                                 [1.5, 2.5, 3.5]) == 3
        assert store.put_columns("main", [1, 2], [4, 5], ["x", "y"]) == 2
        assert store.puts == 5
        assert store.snapshot("main") == {0: 1.5, 1: "x", 2: "y"}
        assert store.get_version("main", 2, max_iteration=4) == (3, 3.5)

    def test_put_columns_keeps_python_key_and_value_types(self):
        """Keys/values must come back as the exact Python objects that
        went in — numpy scalars leaking out would poison canonical
        digests downstream."""
        store = VersionedStore(columnar=True)
        store.put_columns("main", ["s", "a"], 0, [(1.0, ("x",)), None])
        view = store.snapshot("main")
        assert list(view) == ["s", "a"]
        assert all(type(key) is str for key in view)
        assert view["s"] == (1.0, ("x",))
        assert view["a"] is None

    def test_snapshot_columns_round_trip(self):
        store = VersionedStore(columnar=True)
        store.put_columns("main", [0, 1, 2], 0, [5.0, 6.0, 7.0])
        store.put_columns("main", [1], 1, [60.0])
        keys, values = store.snapshot_columns("main")
        assert keys.tolist() == [0, 1, 2]
        assert values.tolist() == [5.0, 60.0, 7.0]
        keys_at0, values_at0 = store.snapshot_columns("main",
                                                      max_iteration=0)
        assert values_at0.tolist() == [5.0, 6.0, 7.0]
        with pytest.raises(StorageError):
            VersionedStore(delta_path=True).snapshot_columns("main")

    def test_iteration_overflow_rejected(self):
        store = VersionedStore(columnar=True)
        with pytest.raises(StorageError):
            store.put("main", "k", 1 << 33, "v")

    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                              st.integers(0, 12), st.integers(0, 99)),
                    min_size=1, max_size=30),
           st.integers(0, 13))
    def test_layouts_agree_on_any_workload(self, puts, bound):
        stores = [make_store(layout) for layout in LAYOUTS]
        for key, iteration, value in puts:
            for store in stores:
                store.put("main", key, iteration, value)
        legacy, others = stores[0], stores[1:]
        for other in others:
            assert legacy.snapshot("main", max_iteration=bound) \
                == other.snapshot("main", max_iteration=bound)
            assert legacy.version_count("main") \
                == other.version_count("main")
        for store in stores:
            store.truncate_before("main", bound)
        for other in others:
            assert legacy.snapshot("main") == other.snapshot("main")

    @given(st.lists(
        st.one_of(
            st.tuples(st.just("put"), st.sampled_from(["a", "b", "c", "d"]),
                      st.integers(0, 15), st.integers(0, 99)),
            st.tuples(st.just("put_many"),
                      st.lists(st.tuples(
                          st.sampled_from(["a", "b", "c", "d"]),
                          st.integers(0, 15), st.integers(0, 99)),
                          max_size=5)),
            st.tuples(st.just("put_if_newer"),
                      st.sampled_from(["a", "b", "c", "d"]),
                      st.integers(0, 15), st.integers(0, 99)),
            st.tuples(st.just("get"), st.sampled_from(["a", "b", "z"]),
                      st.integers(0, 16)),
            st.tuples(st.just("snapshot"), st.integers(0, 16)),
            st.tuples(st.just("truncate"), st.integers(0, 16)),
            st.tuples(st.just("drop"),
                      st.sampled_from(["main", "branch"])),
        ), min_size=1, max_size=40))
    def test_columnar_equals_legacy_model(self, ops):
        """Model-based equivalence (the fast-vs-legacy kernel test's
        storage twin): any interleaving of writes, conditional writes,
        point reads, snapshots, GC and loop drops observes identical
        results on the columnar and legacy layouts."""
        legacy = make_store("legacy")
        columnar = make_store("columnar")
        for op in ops:
            kind = op[0]
            if kind == "put":
                _, key, iteration, value = op
                legacy.put("main", key, iteration, value)
                columnar.put("main", key, iteration, value)
            elif kind == "put_many":
                legacy.put_many("main", op[1])
                columnar.put_many("main", op[1])
            elif kind == "put_if_newer":
                _, key, iteration, value = op
                assert legacy.put_if_newer("main", key, iteration, value) \
                    == columnar.put_if_newer("main", key, iteration, value)
            elif kind == "get":
                _, key, bound = op
                assert legacy.get_version("main", key, bound) \
                    == columnar.get_version("main", key, bound)
            elif kind == "snapshot":
                assert legacy.snapshot("main", max_iteration=op[1]) \
                    == columnar.snapshot("main", max_iteration=op[1])
            elif kind == "truncate":
                assert legacy.truncate_before("main", op[1]) \
                    == columnar.truncate_before("main", op[1])
            elif kind == "drop":
                assert legacy.drop_loop(op[1]) == columnar.drop_loop(op[1])
        assert legacy.snapshot("main") == columnar.snapshot("main")
        assert legacy.version_count() == columnar.version_count()


class TestBackends:
    def test_in_memory_flush_cost(self):
        sim = Simulator()
        backend = InMemoryBackend(sim, batch_latency=0.01, record_cost=0.0)
        done = []
        backend.flush(100, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.01)]
        assert backend.flushes == 1
        assert backend.records_flushed == 100

    def test_disk_backend_charges_disk(self):
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0", seek_cost=1.0, record_cost=0.1)
        backend = DiskBackend(disk)
        done = []
        backend.flush(10, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.0)]
        assert backend.records_flushed == 10

    def test_disk_backend_read(self):
        sim = Simulator()
        disk = SimulatedDisk(sim, "d0", seek_cost=0.5, record_cost=0.0)
        backend = DiskBackend(disk)
        done = []
        backend.read(4, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5)]


class TestCheckpointManifest:
    def test_flush_frontier_monotone(self):
        manifest = CheckpointManifest()
        manifest.record_flush("main", "p0", 5)
        manifest.record_flush("main", "p0", 3)  # stale report ignored
        assert manifest.flushed[("main", "p0")] == 5

    def test_restart_iteration(self):
        manifest = CheckpointManifest()
        assert manifest.restart_iteration("main") == -1
        manifest.record_terminated("main", 7)
        manifest.record_terminated("main", 4)
        assert manifest.restart_iteration("main") == 7

    def test_durable_frontier_is_min_over_processors(self):
        manifest = CheckpointManifest()
        manifest.record_flush("main", "p0", 9)
        manifest.record_flush("main", "p1", 4)
        assert manifest.durable_frontier("main", ["p0", "p1"]) == 4
        assert manifest.durable_frontier("main", ["p0", "p1", "p2"]) == -1
        assert manifest.durable_frontier("main", []) == -1

    def test_restart_iteration_no_terminated_iteration(self):
        # A loop that never terminated an iteration (or was never seen at
        # all) restarts from scratch, even if flushes were recorded.
        manifest = CheckpointManifest()
        manifest.record_flush("main", "p0", 3)
        assert manifest.restart_iteration("main") == -1
        assert manifest.restart_iteration("branch-1") == -1

    def test_durable_frontier_with_never_flushed_processor(self):
        manifest = CheckpointManifest()
        manifest.record_flush("main", "p0", 9)
        # p1 exists in the cluster but has never flushed: the loop-wide
        # durable frontier collapses to "nothing durable".
        assert manifest.durable_frontier("main", ["p0", "p1"]) == -1

    def test_out_of_order_record_flush_keeps_max(self):
        manifest = CheckpointManifest()
        for iteration in (2, 7, 4, 7, 1):
            manifest.record_flush("main", "p0", iteration)
        assert manifest.flushed[("main", "p0")] == 7
        assert manifest.durable_frontier("main", ["p0"]) == 7

    def test_planted_restart_skew_only_applies_after_termination(self):
        # The test-only mutation must not fire before any iteration has
        # terminated (there is nothing to skew), and must clamp at -1.
        manifest = CheckpointManifest(planted_restart_skew=1)
        assert manifest.restart_iteration("main") == -1
        manifest.record_terminated("main", 4)
        assert manifest.restart_iteration("main") == 5
        manifest.planted_restart_skew = -10
        assert manifest.restart_iteration("main") == -1

