"""Integration tests for the live migration subsystem (paper §5.1 +
R-Storm-style planning): handoff while the main loop runs, epoch fencing,
and the rebalancer crash-interaction bug fixes."""

import math

import pytest

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.core import Application, TornadoConfig, TornadoJob
from repro.core.messages import ProcessorRecovered
from repro.core.migration import MigrationPlanner
from repro.streams import UniformRate, edge_stream

EDGES = [(0, i) for i in range(1, 30)] + [(i, i + 1) for i in range(1, 29)]


def make_job(skewed=True, **config_kwargs):
    config_kwargs.setdefault("n_processors", 3)
    config_kwargs.setdefault("report_interval", 0.01)
    config_kwargs.setdefault("storage_backend", "memory")
    config_kwargs.setdefault("rebalance_enabled", True)
    config_kwargs.setdefault("rebalance_mode", "live")
    config_kwargs.setdefault("rebalance_factor", 1.5)
    config_kwargs.setdefault("rebalance_min_gap", 0.001)
    config_kwargs.setdefault("rebalance_cooldown", 0.2)
    app = Application(SSSPProgram(0), EdgeStreamRouter(), name="sssp")
    job = TornadoJob(app, TornadoConfig(**config_kwargs))
    if skewed:
        # Pathological initial placement: everything on proc-0.
        for vertex in range(30):
            job.partition._overrides[vertex] = "proc-0"
    return job


def distances(values):
    return {vid: v.distance for vid, v in values.items()
            if not math.isinf(v.distance)}


def reference():
    return {v: d for v, d in reference_sssp(EDGES, 0).items()
            if not math.isinf(d)}


class TestLiveMigration:
    def test_migrates_without_pausing_ingest(self):
        job = make_job()
        stream = edge_stream(EDGES, UniformRate(rate=300.0))
        job.feed(stream)
        job.run_for(4.0)
        assert job.master.rebalances >= 1
        # The whole point of live migration: ingest never stops.
        assert job.ingester.pauses == 0
        assert job.ingester.tuples_ingested == len(stream)
        owners = {job.partition.owner(v) for v in range(30)}
        assert owners != {"proc-0"}

    def test_moves_are_batched(self):
        """One migration round moves several vertices, not one hot pin."""
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_until(lambda: job.master.rebalances >= 1,
                      max_events=20_000_000)
        migrated = job.metrics.counter(
            "core.vertices_migration_planned").value
        assert migrated > 1

    def test_results_exact_after_live_migration(self):
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_for(4.0)
        assert job.master.rebalances >= 1
        result = job.query_and_wait(full_activation=True)
        assert distances(result.values) == reference()
        # And the live approximation converged too (no gather lost to a
        # stale owner).
        job.run_until(job.quiescent, max_events=20_000_000)
        assert distances(job.main_values()) == reference()

    def test_migration_drains_to_idle(self):
        """After the run no fence, buffer or in-flight handoff remains."""
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_for(4.0)
        job.run_until(job.quiescent, max_events=20_000_000)
        assert job.durable.migration is None
        for processor in job.processors:
            assert processor.migration_idle

    def test_query_during_migration_is_deferred_not_lost(self):
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_until(lambda: job.durable.migration is not None,
                      max_events=20_000_000)
        assert job.durable.migration is not None
        query_id = job.query(full_activation=True)
        result = job.wait_for_query(query_id)
        # The branch forked only after the layout settled, on whatever
        # edge prefix had been ingested: every reported distance is a
        # real path length, so it is bounded below by the full-graph
        # reference (and vertex 0 is always exact).
        full = reference()
        for vertex, distance in distances(result.values).items():
            assert distance >= full[vertex]
        assert distances(result.values)[0] == 0

    def test_epoch_advances_once_per_round(self):
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_for(4.0)
        # One atomic epoch bump per migration round, however many
        # vertices each round moved.
        assert job.partition.epoch == job.master.rebalances

    def test_same_seed_same_trace(self):
        def run():
            job = make_job(trace_enabled=True, seed=7)
            job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
            job.run_for(3.0)
            return job.trace.digest()

        assert run() == run()


class TestMigrationUnderFailures:
    def test_source_crash_mid_migration_stays_exact(self):
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_until(lambda: job.durable.migration is not None,
                      max_events=20_000_000)
        # Kill the hot source while its vertices are in flight.
        job.failures.kill_now("proc-0", recover_after=0.3)
        job.run_for(4.0)
        job.run_until(job.quiescent, max_events=20_000_000)
        assert job.durable.migration is None
        assert distances(job.main_values()) == reference()

    def test_target_crash_mid_migration_stays_exact(self):
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_until(lambda: job.durable.migration is not None,
                      max_events=20_000_000)
        record = job.durable.migration
        target = record.moves[0][2]
        job.failures.kill_now(target, recover_after=0.3)
        job.run_for(4.0)
        job.run_until(job.quiescent, max_events=20_000_000)
        assert job.durable.migration is None
        assert distances(job.main_values()) == reference()

    def test_master_crash_mid_migration_completes(self):
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_until(lambda: job.durable.migration is not None,
                      max_events=20_000_000)
        job.failures.kill_now("master", recover_after=0.3)
        job.run_for(4.0)
        job.run_until(job.quiescent, max_events=20_000_000)
        # The durable record let the restarted master re-drive the
        # handoff to completion.
        assert job.durable.migration is None
        assert distances(job.main_values()) == reference()


class TestPauseModeBugfixes:
    def test_master_crash_mid_rebalance_resumes_ingest(self):
        """Master dies after PauseIngest but before the rebalance: the
        recovered master must release the ingester (the pending marker is
        durable), or ingest stalls forever."""
        job = make_job(rebalance_mode="pause")
        stream = edge_stream(EDGES, UniformRate(rate=300.0))
        job.feed(stream)
        job.run_until(lambda: job.ingester.paused,
                      max_events=20_000_000)
        assert job.durable.rebalance_pending
        job.failures.kill_now("master", recover_after=0.2)
        job.run_for(4.0)
        assert not job.ingester.paused
        assert not job.durable.rebalance_pending
        # Held tuples were released, none lost.
        assert job.ingester.tuples_ingested == len(stream)

    def test_pause_mode_still_rebalances(self):
        job = make_job(rebalance_mode="pause")
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_for(4.0)
        assert job.master.rebalances >= 1
        assert job.ingester.pauses >= 1
        owners = {job.partition.owner(v) for v in range(30)}
        assert owners != {"proc-0"}
        approx = distances(job.main_values())
        assert approx == reference()

    def test_recovered_processor_stats_invalidated(self):
        """A crashed-and-recovered processor's busy/hot snapshots are
        stale (its counters restarted); the master must drop them."""
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_until(lambda: "proc-0" in job.master._busy
                      and "proc-0" in job.master._hot,
                      max_events=20_000_000)
        job.master._handle_processor_recovered(
            ProcessorRecovered("proc-0"))
        assert "proc-0" not in job.master._busy
        assert "proc-0" not in job.master._hot
        assert "proc-0" not in job.master.planner._busy_rate

    def test_perform_rebalance_revalidates_gap(self):
        """If the gap no longer holds at perform time, no move happens —
        but ingest is always resumed."""
        job = make_job(rebalance_mode="pause")
        master = job.master
        master._rebalance_waiting = True
        job.durable.rebalance_pending = True
        master._busy = {"proc-0": 1.0, "proc-1": 1.0, "proc-2": 1.0}
        master._hot = {"proc-0": (1, 2, 3)}
        before = job.partition.epoch
        master._perform_rebalance()
        assert master.rebalances == 0
        assert job.partition.epoch == before
        assert not job.durable.rebalance_pending
        # ResumeIngest went out regardless.
        job.run_for(0.1)
        assert not job.ingester.paused


class TestPlannerBugfixes:
    """Busy-counter regression handling and critical-path feedback in
    the planner cost model."""

    def planner(self, **config_kwargs):
        config_kwargs.setdefault("n_processors", 3)
        config_kwargs.setdefault("rebalance_factor", 1.5)
        config_kwargs.setdefault("rebalance_min_gap", 0.001)
        return MigrationPlanner(TornadoConfig(**config_kwargs))

    def test_counter_regression_does_not_drag_rate_down(self):
        """A post-recovery busy counter restarts below its last value;
        the old bug folded that window as a clamped 0 into the EWMA,
        masking a genuinely hot processor."""
        planner = self.planner()
        planner.observe("proc-0", 1.0, 10.0)
        planner.observe("proc-0", 2.0, 11.0)
        assert planner.rates()["proc-0"] == 1.0
        # Crash + recovery: counter restarted from (almost) zero.
        planner.observe("proc-0", 0.05, 12.0)
        assert planner.rates()["proc-0"] == 1.0  # window skipped

    def test_counter_regression_reseeds_baseline(self):
        """The regressed report becomes the new baseline, so the *next*
        window measures real post-recovery load."""
        planner = self.planner()
        planner.observe("proc-0", 1.0, 10.0)
        planner.observe("proc-0", 2.0, 11.0)
        planner.observe("proc-0", 0.05, 12.0)  # regression, re-seed
        planner.observe("proc-0", 0.30, 13.0)  # real window: 0.25
        expected = 0.3 * 0.25 + 0.7 * 1.0
        assert planner.rates()["proc-0"] == pytest.approx(expected)

    def test_planner_scores_stable_across_kill_recover(self):
        """End to end: killing and recovering a hot processor must not
        leave the planner believing it went cold."""
        job = make_job()
        job.feed(edge_stream(EDGES, UniformRate(rate=300.0)))
        job.run_until(lambda: "proc-0" in job.master.planner._busy_rate,
                      max_events=20_000_000)
        job.failures.kill_now("proc-0", recover_after=0.3)
        job.run_for(0.35)
        # The restarted counter re-seeds cleanly: once fresh reports
        # arrive the rate reflects only post-recovery windows, never a
        # clamped-0 window from the counter restart.
        job.run_until(lambda: "proc-0" in job.master.planner._busy_rate,
                      max_events=20_000_000)
        assert 0.0 <= job.master.planner._busy_rate["proc-0"] <= 1.0

    def test_criticality_weight_biases_plan_ordering(self):
        """With two equally-busy processors, critical-path feedback
        decides which one sheds load first."""
        def loaded_planner(weight):
            planner = self.planner(migration_criticality_weight=weight,
                                   migration_max_batch=1)
            for name, rate in (("proc-0", 0.8), ("proc-1", 0.8),
                               ("proc-2", 0.1)):
                planner.observe(name, 0.0, 0.0)
                planner.observe(name, rate, 1.0)
            planner._vertex_load = {"proc-0": {0: 1, 2: 1, 4: 1, 6: 1},
                                    "proc-1": {1: 1, 3: 1, 5: 1, 7: 1}}
            planner.set_criticality({"proc-1": 0.9})
            return planner

        owner = {0: "proc-0", 2: "proc-0", 4: "proc-0", 6: "proc-0",
                 1: "proc-1", 3: "proc-1", 5: "proc-1",
                 7: "proc-1"}.__getitem__
        procs = ["proc-0", "proc-1", "proc-2"]
        # Weight off: deterministic tie-break picks proc-0's vertex.
        moves = loaded_planner(0.0).plan(procs, owner)
        assert moves and moves[0][1] == "proc-0"
        # Weight on: the critical-path processor sheds load first.
        moves = loaded_planner(1.0).plan(procs, owner)
        assert moves and moves[0][1] == "proc-1"

    def test_master_applies_criticality_to_planner(self):
        job = make_job(migration_criticality_weight=0.5)
        job.master.apply_criticality({"proc-0": 0.7})
        assert job.master.planner._criticality == {"proc-0": 0.7}
