"""Shape tests for the wall-clock perf harness (repro.bench.perf).

Speedups are deliberately not asserted here — CI machines are too noisy
for that; the committed BENCH_perf.json and the perf-smoke job track
them instead.  What must hold everywhere: the report schema, identical
fast/legacy event counts, and the byte-identical determinism oracle.
"""

import json

from repro.bench.perf import (TINY, compare_reports, run_perf)


class TestRunPerf:
    def test_report_shape_and_determinism(self, tmp_path):
        json_path = tmp_path / "BENCH_perf.json"
        result = run_perf(quick=True, json_path=str(json_path),
                          steps=2_000, bursts=100, fig_scale=TINY,
                          skew_sizes=dict(n_vertices=60, n_edges=240,
                                          rate=4000.0))
        report = json.loads(json_path.read_text(encoding="utf-8"))
        # The file root is the neutral merged artifact; the perf writer's
        # own bench id lives under sections["perf"].
        assert report["bench"] == "merged"
        assert report["sections"]["perf"] == "kernel_fast_path"
        assert len(report["scenarios"]) >= 3
        for name, scenario in report["scenarios"].items():
            assert scenario["legacy"]["events"] > 0, name
            assert scenario["fast"]["events_per_s"] > 0, name
            assert scenario["events_match"], name
        assert report["determinism"]["identical"]
        digests = report["determinism"]["digests"]
        assert digests["fast"] == digests["legacy"]
        # The in-memory result mirrors the file body; only the root
        # provenance differs (extras keeps the writer's own bench id).
        assert result.extras["report"]["bench"] == "kernel_fast_path"
        for key in ("scenarios", "determinism", "skew", "quick"):
            assert result.extras["report"][key] == report[key]
        rows = {row["scenario"] for row in result.rows}
        assert {"timer_churn", "cancel_churn", "coalesce_burst",
                "skew_live_vs_pause"} <= rows
        # Skew is virtual time: shape and determinism hold at any size
        # (the ≥2x ratio check is only meaningful at default sizes).
        skew = report["skew"]
        assert set(skew["modes"]) == {"none", "pause", "live"}
        for mode, run in skew["modes"].items():
            assert run["exact"], mode
        assert skew["determinism"]["identical"]

    def test_compare_reports_renders_both_sides(self):
        scenario = {"legacy": {"events": 10, "wall_s": 1.0,
                               "events_per_s": 10.0},
                    "fast": {"events": 10, "wall_s": 0.5,
                             "events_per_s": 20.0},
                    "speedup": 2.0, "events_match": True}
        report = {"scenarios": {"timer_churn": scenario},
                  "determinism": {"identical": True}}
        other = {"scenarios": {"timer_churn": scenario,
                               "extra_only": scenario},
                 "determinism": {"identical": True}}
        text = compare_reports(report, other)
        assert "timer_churn" in text
        assert "only in one report" in text
        assert "determinism identical: baseline=True current=True" in text
