"""Adaptive learning over a drifting stream (paper §6.2.2).

An SVM is trained continuously on a stream whose true separating
hyperplane rotates over time.  The main loop uses the *bold driver*
heuristic to keep its descent rate matched to the drift; branch-loop
queries deliver converged models on demand.

Run with::

    python examples/online_svm.py
"""

import numpy as np

from repro.algorithms import BoldDriver, HingeLoss, svm_application
from repro.algorithms.sgd import PARAM
from repro.core import TornadoConfig, TornadoJob
from repro.datagen import higgs_like
from repro.streams import UniformRate, instance_stream

DIM = 12


def accuracy(weights, instances):
    xs = np.stack([inst.x() for inst in instances])
    ys = np.asarray([inst.label for inst in instances], dtype=float)
    return float((np.sign(xs @ weights) == ys).mean())


def main():
    instances, _true_w = higgs_like(1200, dim=DIM, seed=11, noise=0.1,
                                    drift=1.0)
    app = svm_application(dim=DIM, n_samplers=4,
                          schedule_factory=lambda: BoldDriver(0.2),
                          batch_size=16, reservoir_capacity=400)
    job = TornadoJob(app, TornadoConfig(n_processors=4,
                                        storage_backend="memory"))
    job.feed(instance_stream(instances, UniformRate(rate=600.0)))

    loss = HingeLoss(l2=1e-3)
    print("time   rate     recent-accuracy  objective")
    for step in range(1, 7):
        job.run(until=step * 0.4)
        param = job.main_values().get(PARAM)
        if param is None:
            continue
        seen = min(job.ingester.tuples_ingested, len(instances))
        recent = instances[max(0, seen - 200):seen]
        xs = np.stack([inst.x() for inst in recent])
        ys = np.asarray([inst.label for inst in recent], dtype=float)
        print(f"{job.sim.now:5.2f}  {param.schedule.rate:7.4f}  "
              f"{accuracy(param.weights, recent):15.3f}  "
              f"{loss.objective(param.weights, xs, ys):9.4f}")

    result = job.query_and_wait()
    weights = result.values[PARAM].weights
    seen = min(job.ingester.tuples_ingested, len(instances))
    recent = instances[max(0, seen - 200):seen]
    print(f"\nbranch-loop model accuracy on recent data: "
          f"{accuracy(weights, recent):.3f} "
          f"(query latency {result.latency * 1000:.1f} virtual ms)")


if __name__ == "__main__":
    main()
