"""The declarative algebra layer: three analyses from one-line specs.

``repro.core.dsl`` captures propagation-style graph analyses as algebras
(combine per-producer offers / extend along edges); this example runs
shortest paths, reachability and widest (bottleneck) path over the same
evolving network stream.

Run with::

    python examples/declarative_dsl.py
"""

from repro.algorithms import EdgeStreamRouter
from repro.core import (Application, TornadoConfig, TornadoJob,
                        reachability, shortest_paths, widest_path)
from repro.streams import UniformRate, edge_stream

# A small network with link capacities.
LINKS = [
    ("gw", "r1", 10.0), ("gw", "r2", 2.0), ("r1", "r3", 4.0),
    ("r2", "r3", 8.0), ("r3", "host", 6.0), ("r1", "host", 1.0),
]


def run(program, title, fmt=lambda v: v):
    app = Application(program, EdgeStreamRouter(), name="dsl")
    job = TornadoJob(app, TornadoConfig(n_processors=2,
                                        storage_backend="memory"))
    job.feed(edge_stream(LINKS, UniformRate(rate=200.0)))
    job.run_for(1.0)
    result = job.query_and_wait()
    print(title)
    for vertex in ("gw", "r1", "r2", "r3", "host"):
        if vertex in result.values:
            print(f"   {vertex}: {fmt(result.values[vertex].value)}")
    print(f"   (latency {result.latency * 1000:.1f} virtual ms)\n")


def main():
    run(shortest_paths("gw"), "weighted shortest path from gw:",
        fmt=lambda v: f"{v:.0f}" if v != float("inf") else "unreachable")
    run(reachability("gw"), "reachable from gw:",
        fmt=lambda v: "yes" if v else "no")
    run(widest_path("gw"), "bottleneck bandwidth from gw:",
        fmt=lambda v: f"{v:.0f} Gb/s" if v else "none")


if __name__ == "__main__":
    main()
