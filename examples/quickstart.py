"""Quickstart: real-time shortest paths over an evolving edge stream.

Builds a Tornado job running SSSP, streams edges in, and issues queries at
two instants — the second query sees the edges that arrived after the
first.  Run with::

    python examples/quickstart.py
"""

import math

from repro.algorithms import EdgeStreamRouter, SSSPProgram
from repro.core import Application, TornadoConfig, TornadoJob
from repro.streams import UniformRate, edge_stream

EARLY_EDGES = [
    ("hub", "a"), ("hub", "b"), ("a", "c"), ("b", "c"), ("c", "d"),
]
LATE_EDGES = [
    ("d", "e"), ("hub", "e"), ("e", "f"),
]


def show(result, title):
    print(title)
    reachable = sorted(
        (vid for vid, v in result.values.items()
         if not math.isinf(v.distance)),
        key=lambda vid: result.values[vid].distance)
    for vid in reachable:
        print(f"  {vid}: {result.values[vid].distance:.0f} hops")
    print(f"  (query latency: {result.latency * 1000:.1f} virtual ms)\n")


def main():
    # 1. Describe the computation: a vertex program plus an input router.
    app = Application(SSSPProgram(source="hub"), EdgeStreamRouter(),
                      name="quickstart-sssp")
    # 2. Build the simulated deployment.
    config = TornadoConfig(n_processors=4, storage_backend="memory")
    job = TornadoJob(app, config)

    # 3. Stream the first batch of edges and let the main loop absorb it.
    job.feed(edge_stream(EARLY_EDGES, UniformRate(rate=100.0)))
    job.run_for(1.0)

    # 4. Fork a branch loop: precise results at this instant.
    show(job.query_and_wait(), "distances after the first five edges:")

    # 5. More edges arrive; a later query reflects them.
    job.feed(edge_stream(LATE_EDGES,
                         UniformRate(rate=100.0, start=job.sim.now)))
    job.run_for(1.0)
    show(job.query_and_wait(), "distances after the evolving update:")

    print(f"main loop performed {job.total_commits} vertex updates in "
          f"{job.sim.now:.2f} virtual seconds")


if __name__ == "__main__":
    main()
