"""Fault tolerance in action (paper §5.3, §6.3.2).

Runs SSSP with a large delay bound, kills the master and then a processor
mid-stream, and shows (a) the asynchronous loop riding out the master
outage, (b) the processor recovering from its last checkpoint, and (c) the
final query still matching Dijkstra exactly.

Run with::

    python examples/fault_tolerance_demo.py
"""

import math

from repro.algorithms import EdgeStreamRouter, SSSPProgram, reference_sssp
from repro.core import Application, TornadoConfig, TornadoJob
from repro.datagen import livejournal_like
from repro.streams import UniformRate, edge_stream


def commits_per_interval(job, until, dt=0.25):
    samples = []
    previous = job.total_commits
    while job.sim.now < until:
        job.run_for(dt)
        current = job.total_commits
        samples.append((job.sim.now, current - previous))
        previous = current
    return samples


def main():
    edges = livejournal_like(n_vertices=200, n_edges=1000, seed=3)
    app = Application(SSSPProgram(0, max_distance=500.0),
                      EdgeStreamRouter(), name="ft-demo")
    config = TornadoConfig(n_processors=4, storage_backend="memory",
                           delay_bound=65536, retransmit_timeout=0.2)
    job = TornadoJob(app, config)
    job.feed(edge_stream(edges, UniformRate(rate=600.0)))

    print("killing the master at t=0.50s (recovers at t=1.25s)")
    job.failures.kill_at(0.50, TornadoJob.MASTER, recover_after=0.75)
    print("killing proc-2 at t=2.00s (recovers at t=2.50s)")
    job.failures.kill_at(2.00, "proc-2", recover_after=0.50)

    for at, commits in commits_per_interval(job, until=4.0):
        bar = "#" * min(60, commits // 20)
        print(f"  t={at:4.2f}s  {commits:5d} updates  {bar}")

    job.run_for(2.0)
    result = job.query_and_wait(full_activation=True)
    got = {vid: v.distance for vid, v in result.values.items()
           if not math.isinf(v.distance)}
    want = {v: d for v, d in reference_sssp(edges, 0).items()
            if not math.isinf(d)}
    exact = got == want
    print(f"\nfinal query exact despite two failures: {exact} "
          f"({len(got)} reachable vertices)")


if __name__ == "__main__":
    main()
