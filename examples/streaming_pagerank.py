"""The paper's motivating scenario (§3.1): a search engine ranking a
crawled, *retractable* web graph.

Crawlers insert and delete edges continuously; the search engine refreshes
its ranking at regular intervals by forking branch loops.  Because the
main loop keeps the approximation warm, each refresh converges in a few
virtual milliseconds instead of recomputing the graph from scratch.

Run with::

    python examples/streaming_pagerank.py
"""

import numpy as np

from repro.algorithms import EdgeStreamRouter, PageRankProgram
from repro.core import Application, TornadoConfig, TornadoJob
from repro.datagen import livejournal_like
from repro.streams import UniformRate, edge_stream


def main():
    edges = livejournal_like(n_vertices=300, n_edges=1500, seed=7)
    rng = np.random.default_rng(7)
    # 10% of crawled links later disappear (pages edited or removed).
    stream = edge_stream(edges, UniformRate(rate=800.0),
                         delete_fraction=0.1, rng=rng)

    app = Application(PageRankProgram(damping=0.85, tolerance=1e-3),
                      EdgeStreamRouter(), name="search-engine")
    job = TornadoJob(app, TornadoConfig(n_processors=4,
                                        storage_backend="memory"))
    job.feed(stream)

    refresh_interval = 0.5
    for refresh in range(1, 5):
        job.run(until=refresh * refresh_interval)
        result = job.query_and_wait()
        ranked = sorted(result.values.items(),
                        key=lambda kv: kv[1].rank, reverse=True)[:5]
        crawled = job.ingester.tuples_ingested
        print(f"refresh #{refresh} at t={job.sim.now:.2f}s "
              f"({crawled} crawl events, "
              f"latency {result.latency * 1000:.1f}ms)")
        for vertex, value in ranked:
            print(f"   page {vertex}: rank {value.rank:.3f}")
    print("\nad-hoc query between refreshes:")
    job.run_for(0.1)
    result = job.query_and_wait()
    print(f"   answered in {result.latency * 1000:.1f} virtual ms")


if __name__ == "__main__":
    main()
