"""The substrate on its own: a classic Storm word-count topology.

Tornado is built on a miniature Storm (spouts, bolts, groupings, XOR
acking); this example uses that layer directly, including at-least-once
replay when a tuple tree times out.

Run with::

    python examples/storm_wordcount.py
"""

from repro.simulator import Network, Simulator
from repro.storm import (Bolt, ClusterConfig, LocalCluster, Spout,
                         TopologyBuilder)

SENTENCES = [
    "the quick brown fox jumps over the lazy dog",
    "a loop starting from a good initial guess converges fast",
    "the main loop maintains the approximation",
    "branch loops fork from the main loop and converge quickly",
]


class SentenceSpout(Spout):
    def __init__(self):
        self.pending = list(enumerate(SENTENCES))
        self.done = []

    def open(self, ctx, collector):
        self.collector = collector

    def next_tuple(self):
        if not self.pending:
            return False
        message_id, sentence = self.pending.pop(0)
        self.collector.emit({"sentence": sentence,
                             "__message_id__": message_id})
        return True

    def ack(self, message_id):
        self.done.append(message_id)

    def fail(self, message_id):
        self.pending.append((message_id, SENTENCES[message_id]))


class SplitBolt(Bolt):
    def prepare(self, ctx, collector):
        self.collector = collector

    def execute(self, tup):
        for word in tup["sentence"].split():
            self.collector.emit({"word": word}, anchors=(tup,))
        self.collector.ack(tup)
        return 1e-4


class CountBolt(Bolt):
    totals = {}

    def prepare(self, ctx, collector):
        self.collector = collector

    def execute(self, tup):
        word = tup["word"]
        CountBolt.totals[word] = CountBolt.totals.get(word, 0) + 1
        self.collector.ack(tup)
        return 5e-5


def main():
    sim = Simulator(seed=1)
    cluster = LocalCluster(sim, Network(sim, latency=1e-3),
                           ClusterConfig(tuple_timeout=5.0))
    builder = TopologyBuilder("wordcount")
    spout = SentenceSpout()
    builder.set_spout("sentences", lambda: spout)
    builder.set_bolt("split", SplitBolt, 2).shuffle_grouping("sentences")
    builder.set_bolt("count", CountBolt, 3).fields_grouping(
        "split", ("word",))
    cluster.submit(builder.build())
    cluster.enable_supervision()

    sim.run(until=20.0)
    top = sorted(CountBolt.totals.items(), key=lambda kv: -kv[1])[:8]
    print("top words:")
    for word, count in top:
        print(f"  {word:12s} {count}")
    print(f"\nsentences fully processed (acked): {len(spout.done)} / "
          f"{len(SENTENCES)}")
    print(f"tuple trees completed at the acker: "
          f"{cluster.acker.completed}")


if __name__ == "__main__":
    main()
