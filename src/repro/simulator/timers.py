"""Timer wheel for high-churn fixed-delay timers.

The dominant event class in every workload is a timer that is scheduled
and then almost always cancelled before it fires: reliable-transport
retransmits (cancelled by the ack), acker tuple timeouts (cancelled when
the tree completes) and self-rescheduling tick chains.  On the binary
heap each of those costs O(log n) to schedule and leaves a tombstone
behind on cancel that inflates every later heap operation.

This module provides the fast path for them.  A classic hierarchical
timer wheel quantises deadlines to tick buckets, which would change
simulated-time semantics — firing times here are exact floats and must
stay exact.  The structural trick that survives without quantisation:
the simulator clock never goes backwards, so all timers of one fixed
delay ``d`` are created in non-decreasing deadline order.  The wheel is
therefore organised as one *spoke* per distinct delay value, each spoke
an intrusive doubly-linked FIFO whose head is its earliest deadline:

* schedule — append to the spoke's tail: O(1);
* cancel — unlink the node: O(1), true removal, no tombstone;
* peek — min over spoke heads by ``(time, seq)``: O(#spokes), and the
  number of distinct fixed delays in a deployment is a small constant
  (retransmit timeout, tuple timeout, report/tick intervals, ...).

Sequence numbers are drawn from the same counter as heap events, so the
kernel can merge the wheel and the heap deterministically:
``next = min(heap head, wheel head)`` under ``(time, seq)`` order — the
exact order the heap-only kernel produces.

A spoke refuses (returns ``None``) a deadline earlier than its tail,
which can only happen if the clock was moved backwards; the kernel then
falls back to the heap so correctness never depends on monotonicity.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator


class Timer:
    """A scheduled wheel timer.  Same contract as
    :class:`repro.simulator.events.Event`: compare by ``(time, seq)``,
    cancel via :meth:`cancel` — but cancellation truly unlinks the node
    instead of leaving a tombstone."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "_spoke", "_prev", "_next")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._spoke: "_Spoke | None" = None
        self._prev: "Timer | None" = None
        self._next: "Timer | None" = None

    def cancel(self) -> None:
        """Remove the timer from its wheel.  O(1); safe to call after the
        timer has fired (then a no-op)."""
        self.cancelled = True
        spoke = self._spoke
        if spoke is not None:
            spoke.wheel._unlink(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Timer(t={self.time:.6f}, seq={self.seq}, {state})"


class _Spoke:
    """One delay class: an intrusive doubly-linked FIFO of timers with
    non-decreasing deadlines."""

    __slots__ = ("wheel", "delay", "head", "tail", "count")

    def __init__(self, wheel: "TimerWheel", delay: float):
        self.wheel = wheel
        self.delay = delay
        self.head: Timer | None = None
        self.tail: Timer | None = None
        self.count = 0


class TimerWheel:
    """Fixed-delay timer store merged with the event heap by the kernel.

    Parameters
    ----------
    counter:
        Sequence-number source shared with the :class:`EventQueue`, so
        heap events and wheel timers live in one total ``(time, seq)``
        order.
    """

    def __init__(self, counter: Iterator[int] | None = None) -> None:
        self._counter = counter if counter is not None else itertools.count()
        self._spokes: dict[float, _Spoke] = {}
        self._pending = 0
        # Pending timers per exact deadline.  Lets the coalescing path ask
        # in O(1) whether appending to a same-instant batch could overtake
        # a timer due at exactly that instant (see Simulator.schedule_message).
        self._deadlines: dict[float, int] = {}
        # Cached earliest timer: the kernel peeks the wheel on *every*
        # dispatched event, so the O(#spokes) scan runs only after the
        # cached head was unlinked (fired or cancelled), not per event.
        self._head: Timer | None = None
        self._head_dirty = False

    # ------------------------------------------------------------ scheduling
    def schedule(self, time: float, delay: float,
                 callback: Callable[..., Any], args: tuple) -> Timer | None:
        """Schedule ``callback(*args)`` at absolute ``time`` on the spoke
        for ``delay``.  Returns ``None`` (caller must fall back to the
        heap) if ``time`` would break the spoke's deadline monotonicity —
        only possible when the clock has been moved backwards."""
        spoke = self._spokes.get(delay)
        if spoke is None:
            spoke = self._spokes[delay] = _Spoke(self, delay)
        elif spoke.tail is not None and time < spoke.tail.time:
            return None
        timer = Timer(time, next(self._counter), callback, args)
        timer._spoke = spoke
        timer._prev = spoke.tail
        if spoke.tail is None:
            spoke.head = timer
        else:
            spoke.tail._next = timer
        spoke.tail = timer
        spoke.count += 1
        self._pending += 1
        self._deadlines[time] = self._deadlines.get(time, 0) + 1
        if not self._head_dirty:
            head = self._head
            # Sequence numbers only grow, so the new timer displaces the
            # cached head only when strictly earlier.
            if head is None or time < head.time:
                self._head = timer
        return timer

    def _unlink(self, timer: Timer) -> None:
        spoke = timer._spoke
        if spoke is None:
            return
        prev, nxt = timer._prev, timer._next
        if prev is None:
            spoke.head = nxt
        else:
            prev._next = nxt
        if nxt is None:
            spoke.tail = prev
        else:
            nxt._prev = prev
        timer._spoke = timer._prev = timer._next = None
        spoke.count -= 1
        self._pending -= 1
        if timer is self._head:
            self._head = None
            self._head_dirty = True
        remaining = self._deadlines[timer.time] - 1
        if remaining:
            self._deadlines[timer.time] = remaining
        else:
            del self._deadlines[timer.time]

    # --------------------------------------------------------------- queries
    def peek(self) -> Timer | None:
        """Earliest pending timer by ``(time, seq)``, or ``None``.
        O(1) from the cache; O(#spokes) only right after the previous
        head was unlinked."""
        if self._head_dirty:
            best: Timer | None = None
            for spoke in self._spokes.values():
                head = spoke.head
                if head is not None and (
                        best is None
                        or (head.time, head.seq) < (best.time, best.seq)):
                    best = head
            self._head = best
            self._head_dirty = False
        return self._head

    def pop(self, timer: Timer) -> None:
        """Remove a timer the kernel is about to dispatch (normally the
        one :meth:`peek` just returned)."""
        self._unlink(timer)

    def has_deadline(self, time: float) -> bool:
        """Is any pending timer due at exactly ``time``?"""
        return time in self._deadlines

    @property
    def pending(self) -> int:
        return self._pending

    def __len__(self) -> int:
        return self._pending

    @property
    def delays(self) -> tuple[float, ...]:
        """Registered delay classes (spokes), for introspection."""
        return tuple(self._spokes)

    def clear(self) -> None:
        for spoke in self._spokes.values():
            node = spoke.head
            while node is not None:
                nxt = node._next
                node._spoke = node._prev = node._next = None
                node = nxt
        self._spokes.clear()
        self._deadlines.clear()
        self._pending = 0
        self._head = None
        self._head_dirty = False
