"""Simulated disks.

Tornado flushes every version produced in an iteration before reporting
progress, so disk behaviour is first-order for the synchronous-vs-
asynchronous results (paper §6.3).  A disk serialises requests: each write
pays a fixed seek plus a per-record transfer cost, and requests queue behind
one another.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.simulator.kernel import Simulator


class SimulatedDisk:
    """One spindle (or SSD namespace) attached to a simulated node.

    Parameters
    ----------
    seek_cost:
        Fixed virtual-time cost per request (seconds).
    record_cost:
        Marginal cost per record written or read (seconds).
    """

    def __init__(self, sim: Simulator, name: str, seek_cost: float = 2e-3,
                 record_cost: float = 2e-6) -> None:
        self.sim = sim
        self.name = name
        self.seek_cost = seek_cost
        self.record_cost = record_cost
        self._free_at = 0.0
        self.records_written = 0
        self.records_read = 0
        self.requests = 0
        self.busy_time = 0.0
        #: Multiplier on every request's duration; >1 models a degraded
        #: device (set/reset by the failure injector's slowdown faults).
        self.slow_factor = 1.0
        self.stalls = 0

    # -------------------------------------------------------------- faults
    def stall(self, duration: float) -> None:
        """Freeze the device: no request completes before ``now +
        duration``.  Queued and future requests finish after the stall
        (garbage-collection pause / firmware hiccup semantics)."""
        self.stalls += 1
        self._free_at = max(self._free_at, self.sim.now + duration)
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "disk", "stall",
                                  actor=self.name, duration=duration)

    def set_slow_factor(self, factor: float) -> None:
        """Degrade (or restore, with 1.0) the device's service rate."""
        self.slow_factor = factor
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "disk", "slowdown",
                                  actor=self.name, factor=factor)

    def _submit(self, n_records: int,
                callback: Callable[..., Any] | None,
                args: tuple) -> float:
        duration = self.seek_cost + self.record_cost * max(0, n_records)
        duration *= self.slow_factor
        start = max(self.sim.now, self._free_at)
        self._free_at = start + duration
        self.requests += 1
        self.busy_time += duration
        completion = self._free_at
        if callback is not None:
            self.sim.schedule_at(completion, callback, *args)
        return completion

    def write(self, n_records: int,
              callback: Callable[..., Any] | None = None,
              *args: Any) -> float:
        """Queue a write of ``n_records``; returns the completion time and
        optionally schedules ``callback(*args)`` at that time."""
        self.records_written += max(0, n_records)
        return self._submit(n_records, callback, args)

    def read(self, n_records: int,
             callback: Callable[..., Any] | None = None,
             *args: Any) -> float:
        """Queue a read of ``n_records``; same contract as :meth:`write`."""
        self.records_read += max(0, n_records)
        return self._submit(n_records, callback, args)
