"""The discrete-event simulation kernel.

A :class:`Simulator` owns the virtual clock, the event queue and the actor
registry.  Everything above it — the Storm layer, the Tornado runtime, the
baseline engines — advances time exclusively by scheduling events, which
makes every experiment in this repository fully deterministic.

The kernel has a **fast path** (on by default, see ``fast_path``) that
removes the three dominant costs of the pure-heap design without changing
any simulated-time semantics:

* fixed-delay timers (:meth:`Simulator.schedule_timer`) live on a
  :class:`~repro.simulator.timers.TimerWheel` — O(1) schedule and true
  O(1) removal on cancel — and are merged with the heap deterministically
  by popping ``min(heap head, wheel head)`` under ``(time, seq)`` order;
* the heap compacts tombstones left by lazily-cancelled events;
* same-instant messages (:meth:`Simulator.schedule_message`) coalesce
  into one heap entry that the run loop expands unit by unit, in the
  exact order the individual events would have fired.

``fast_path=False`` reproduces the pre-fast-path kernel event for event:
the same seed yields a byte-identical flight-recorder trace in both
modes, which is the regression oracle for this entire module.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.obs import MetricsRegistry, TraceRecorder
from repro.simulator.events import Event, EventQueue
from repro.simulator.randomness import RandomStreams
from repro.simulator.timers import Timer, TimerWheel

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.actors import Actor

#: Anything `schedule*` returns: cancellable, ordered by ``(time, seq)``.
Scheduled = Event | Timer


def _callback_label(callback: Callable[..., Any]) -> str:
    """Deterministic label for a scheduled callback (never ``repr``, which
    embeds memory addresses)."""
    label = getattr(callback, "__qualname__", None)
    return label if label is not None else type(callback).__name__


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all named random streams.
    recorder:
        Flight recorder shared by every layer running on this simulator.
        Defaults to a disabled recorder, so tracing is opt-in and costs
        one boolean check per guarded site when off.
    metrics:
        Shared metrics registry (always on; instruments are cheap).
    fast_path:
        Enable the timer wheel, tombstone compaction and same-instant
        message coalescing.  ``False`` runs the legacy heap-only kernel
        (same event order, same trace — just slower), kept as the A/B
        baseline for the perf harness and the determinism oracle.
    """

    def __init__(self, seed: int = 0,
                 recorder: TraceRecorder | None = None,
                 metrics: MetricsRegistry | None = None,
                 fast_path: bool = True) -> None:
        self._now = 0.0
        self.fast_path = fast_path
        # One sequence counter shared by the heap and the wheel puts all
        # scheduled work in a single total (time, seq) order.
        self._seq = itertools.count()
        self._queue = EventQueue(fast_path=fast_path, counter=self._seq)
        self._wheel = TimerWheel(counter=self._seq)
        # A partially-dispatched coalesced batch (event, next unit index):
        # the run loop can be interrupted between units by stop() or an
        # event budget, and must resume exactly where it left off.
        self._batch: Event | None = None
        self._batch_index = 0
        self.random = RandomStreams(seed)
        self.actors: dict[str, "Actor"] = {}
        self._events_processed = 0
        self._stopped = False
        self.trace = (recorder if recorder is not None
                      else TraceRecorder(enabled=False))
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}")
        return self._queue.push(time, callback, *args)

    def schedule_timer(self, delay: float, callback: Callable[..., Any],
                       *args: Any) -> Scheduled:
        """Like :meth:`schedule`, for recurring fixed-delay timers —
        retransmit timeouts, tick chains, heartbeats.  On the fast path
        these live on the timer wheel: O(1) to schedule and O(1) *true*
        removal on cancel, instead of a heap tombstone."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        if self.fast_path and delay > 0:
            timer = self._wheel.schedule(self._now + delay, delay,
                                         callback, args)
            if timer is not None:
                return timer
            # Spoke monotonicity refused (clock moved backwards, e.g. by
            # run(until=past)); the heap handles any order.
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_message(self, delay: float, callback: Callable[..., Any],
                         *args: Any) -> Scheduled | None:
        """Like :meth:`schedule`, for delivery-style callbacks that are
        never cancelled.  On the fast path, a burst of same-callback
        sends landing at the same instant coalesces into one heap entry
        (returns ``None`` for coalesced sends).  Safe by construction:
        a batch only absorbs a send while it is still the newest entry
        at that instant — on the heap (``tail_event``) *and* on the
        wheel (``has_deadline``) — so expansion order equals the
        (time, seq) order the individual events would have had."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        time = self._now + delay
        if self.fast_path:
            tail = self._queue.tail_event(time)
            if (tail is not None and tail.callback == callback
                    and not self._wheel.has_deadline(time)):
                self._queue.extend(tail, args)
                return None
            return self._queue.push(time, callback, *args, track=True)
        return self._queue.push(time, callback, *args)

    # --------------------------------------------------------------- actors
    def register(self, actor: "Actor") -> None:
        if actor.name in self.actors:
            raise SimulationError(f"duplicate actor name: {actor.name!r}")
        self.actors[actor.name] = actor

    def actor(self, name: str) -> "Actor":
        try:
            return self.actors[name]
        except KeyError:
            raise SimulationError(f"unknown actor: {name!r}") from None

    # ------------------------------------------------------- event plumbing
    def _next_time(self) -> float | None:
        """Time of the next callback unit across batch, heap and wheel."""
        if self._batch is not None:
            return self._batch.time
        head = self._queue.peek()
        timer = self._wheel.peek()
        if head is None:
            return None if timer is None else timer.time
        if timer is None or (head.time, head.seq) <= (timer.time, timer.seq):
            return head.time
        return timer.time

    def _pop_unit(self) -> tuple[float, Callable[..., Any], tuple] | None:
        """Remove and return the next callback unit as ``(time, callback,
        args)``, resuming a partially-dispatched batch first."""
        batch = self._batch
        if batch is not None:
            args = batch.extra[self._batch_index]
            self._batch_index += 1
            if self._batch_index >= len(batch.extra):
                self._batch = None
            self._queue.consume_unit()
            return batch.time, batch.callback, args
        head = self._queue.peek()
        timer = self._wheel.peek()
        if head is not None and (
                timer is None
                or (head.time, head.seq) <= (timer.time, timer.seq)):
            event = self._queue.pop()
            if event.extra:
                self._batch = event
                self._batch_index = 0
            return event.time, event.callback, event.args
        if timer is None:
            return None
        self._wheel.pop(timer)
        return timer.time, timer.callback, timer.args

    # -------------------------------------------------------------- running
    def stop(self) -> None:
        """Request the current :meth:`run` or :meth:`run_until` call to
        return after the event being processed."""
        self._stopped = True

    def run(self, until: float | None = None,
            max_events: int | None = None) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the clock value on exit."""
        self._stopped = False
        budget = max_events if max_events is not None else float("inf")
        while not self._stopped and budget > 0:
            next_time = self._next_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            time, callback, args = self._pop_unit()
            self._now = time
            self._events_processed += 1
            budget -= 1
            if self.trace.enabled:
                self.trace.record(self._now, "kernel", "dispatch",
                                  callback=_callback_label(callback),
                                  depth=self.pending_events)
            callback(*args)
        return self._now

    def run_until(self, predicate: Callable[[], bool],
                  max_events: int = 50_000_000) -> float:
        """Process events until ``predicate()`` becomes true (or a
        callback calls :meth:`stop`).

        Raises :class:`SimulationError` if the queue drains or the event
        budget is exhausted first.
        """
        self._stopped = False
        budget = max_events
        while budget > 0:
            if predicate() or self._stopped:
                return self._now
            unit = self._pop_unit()
            if unit is None:
                raise SimulationError(
                    "event queue drained before predicate became true")
            time, callback, args = unit
            self._now = time
            self._events_processed += 1
            budget -= 1
            if self.trace.enabled:
                self.trace.record(self._now, "kernel", "dispatch",
                                  callback=_callback_label(callback),
                                  depth=self.pending_events)
            callback(*args)
        raise SimulationError(f"predicate not reached in {max_events} events")

    @property
    def pending_events(self) -> int:
        """Live scheduled callback units: cancelled tombstones excluded,
        coalesced batch units counted individually."""
        return self._queue.pending + self._wheel.pending
