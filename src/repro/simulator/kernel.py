"""The discrete-event simulation kernel.

A :class:`Simulator` owns the virtual clock, the event queue and the actor
registry.  Everything above it — the Storm layer, the Tornado runtime, the
baseline engines — advances time exclusively by scheduling events, which
makes every experiment in this repository fully deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.obs import MetricsRegistry, TraceRecorder
from repro.simulator.events import Event, EventQueue
from repro.simulator.randomness import RandomStreams

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.actors import Actor


def _callback_label(callback: Callable[..., Any]) -> str:
    """Deterministic label for a scheduled callback (never ``repr``, which
    embeds memory addresses)."""
    label = getattr(callback, "__qualname__", None)
    return label if label is not None else type(callback).__name__


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all named random streams.
    recorder:
        Flight recorder shared by every layer running on this simulator.
        Defaults to a disabled recorder, so tracing is opt-in and costs
        one boolean check per guarded site when off.
    metrics:
        Shared metrics registry (always on; instruments are cheap).
    """

    def __init__(self, seed: int = 0,
                 recorder: TraceRecorder | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self.random = RandomStreams(seed)
        self.actors: dict[str, "Actor"] = {}
        self._events_processed = 0
        self._stopped = False
        self.trace = (recorder if recorder is not None
                      else TraceRecorder(enabled=False))
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}")
        return self._queue.push(time, callback, *args)

    # --------------------------------------------------------------- actors
    def register(self, actor: "Actor") -> None:
        if actor.name in self.actors:
            raise SimulationError(f"duplicate actor name: {actor.name!r}")
        self.actors[actor.name] = actor

    def actor(self, name: str) -> "Actor":
        try:
            return self.actors[name]
        except KeyError:
            raise SimulationError(f"unknown actor: {name!r}") from None

    # -------------------------------------------------------------- running
    def stop(self) -> None:
        """Request the current :meth:`run` call to return after the event
        being processed."""
        self._stopped = True

    def run(self, until: float | None = None,
            max_events: int | None = None) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the clock value on exit."""
        self._stopped = False
        budget = max_events if max_events is not None else float("inf")
        while not self._stopped and budget > 0:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            event = self._queue.pop()
            assert event is not None
            self._now = event.time
            self._events_processed += 1
            budget -= 1
            if self.trace.enabled:
                self.trace.record(self._now, "kernel", "dispatch",
                                  callback=_callback_label(event.callback),
                                  depth=len(self._queue))
            event.callback(*event.args)
        return self._now

    def run_until(self, predicate: Callable[[], bool],
                  max_events: int = 50_000_000) -> float:
        """Process events until ``predicate()`` becomes true.

        Raises :class:`SimulationError` if the queue drains or the event
        budget is exhausted first.
        """
        budget = max_events
        while budget > 0:
            if predicate():
                return self._now
            event = self._queue.pop()
            if event is None:
                raise SimulationError(
                    "event queue drained before predicate became true")
            self._now = event.time
            self._events_processed += 1
            budget -= 1
            if self.trace.enabled:
                self.trace.record(self._now, "kernel", "dispatch",
                                  callback=_callback_label(event.callback),
                                  depth=len(self._queue))
            event.callback(*event.args)
        raise SimulationError(f"predicate not reached in {max_events} events")

    @property
    def pending_events(self) -> int:
        return len(self._queue)
