"""Failure injection.

Schedules faults on the virtual timeline; the fault-tolerance experiments
(paper §6.3.2, Figures 8c/8d) and the chaos campaigns (``repro.chaos``)
are driven through this module.  The vocabulary covers actor crashes,
network partitions, fabric-wide or per-link delay spikes, and disk stalls
and slowdowns; transport-level message drop/duplication lives in
:class:`repro.core.transport.TransportChaos` (it needs the session layer).

Every ``*_at`` method validates its target **at schedule time** — a
typo'd actor name raises immediately instead of failing silently deep
into a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simulator.disk import SimulatedDisk
from repro.simulator.kernel import Simulator
from repro.simulator.network import Network


@dataclass
class FailureRecord:
    actor: str
    failed_at: float
    recovered_at: float | None = None
    kind: str = "kill"


@dataclass
class FailureLog:
    records: list[FailureRecord] = field(default_factory=list)


class FailureInjector:
    """Schedule faults against actors, links and devices at chosen virtual
    instants.

    Parameters
    ----------
    sim:
        The simulator whose actor registry targets are validated against.
    network:
        Required for the partition / delay-spike faults; the kill/recover
        and disk faults work without it.
    """

    def __init__(self, sim: Simulator, network: Network | None = None
                 ) -> None:
        self.sim = sim
        self.network = network
        self.log = FailureLog()

    # ------------------------------------------------------------- helpers
    def _check_time(self, time: float) -> None:
        if time < self.sim.now:
            raise SimulationError("cannot schedule a failure in the past")

    def _check_actor(self, actor_name: str) -> None:
        """Fail fast on a typo'd target: the actor must already be
        registered when the fault is scheduled."""
        if actor_name not in self.sim.actors:
            known = ", ".join(sorted(self.sim.actors)) or "<none>"
            raise SimulationError(
                f"cannot schedule a failure for unknown actor "
                f"{actor_name!r} (registered: {known})")

    def _check_network(self, fault: str) -> Network:
        if self.network is None:
            raise SimulationError(
                f"{fault} faults need a FailureInjector built with a "
                f"network")
        return self.network

    # ---------------------------------------------------------------- kill
    def kill_at(self, time: float, actor_name: str,
                recover_after: float | None = None) -> None:
        """Crash ``actor_name`` at ``time``; optionally restart it
        ``recover_after`` seconds later."""
        self._check_time(time)
        self._check_actor(actor_name)
        record = FailureRecord(actor_name, failed_at=time)
        self.log.records.append(record)
        self.sim.schedule_at(time, self._kill, actor_name)
        if recover_after is not None:
            self.sim.schedule_at(time + recover_after, self._recover,
                                 actor_name, record)

    def kill_now(self, actor_name: str,
                 recover_after: float | None = None) -> None:
        self.kill_at(self.sim.now, actor_name, recover_after)

    def _kill(self, actor_name: str) -> None:
        self.sim.actor(actor_name).fail()

    def _recover(self, actor_name: str, record: FailureRecord) -> None:
        record.recovered_at = self.sim.now
        self.sim.actor(actor_name).recover()

    # ----------------------------------------------------------- partition
    def partition_at(self, time: float, src: str, dst: str,
                     heal_after: float | None = None,
                     symmetric: bool = True) -> None:
        """Partition the ``src`` -> ``dst`` link (and the reverse direction
        unless ``symmetric=False``) at ``time``; optionally heal it
        ``heal_after`` seconds later."""
        network = self._check_network("partition")
        self._check_time(time)
        self._check_actor(src)
        self._check_actor(dst)
        record = FailureRecord(f"{src}->{dst}", failed_at=time,
                               kind="partition")
        self.log.records.append(record)
        self.sim.schedule_at(time, network.block, src, dst)
        if symmetric:
            self.sim.schedule_at(time, network.block, dst, src)
        if heal_after is not None:
            self.sim.schedule_at(time + heal_after, self._heal_partition,
                                 src, dst, symmetric, record)

    def _heal_partition(self, src: str, dst: str, symmetric: bool,
                        record: FailureRecord) -> None:
        network = self._check_network("partition")
        record.recovered_at = self.sim.now
        network.unblock(src, dst)
        if symmetric:
            network.unblock(dst, src)

    # --------------------------------------------------------- delay spike
    def delay_spike_at(self, time: float, extra: float, duration: float,
                       src: str | None = None,
                       dst: str | None = None) -> None:
        """Add ``extra`` seconds of one-way latency to the whole fabric
        (or to the ``src`` -> ``dst`` link when both are given) for
        ``duration`` virtual seconds."""
        network = self._check_network("delay-spike")
        self._check_time(time)
        if (src is None) != (dst is None):
            raise SimulationError(
                "link delay spikes need both src and dst (or neither)")
        if src is not None:
            self._check_actor(src)
            self._check_actor(dst)
        target = "fabric" if src is None else f"{src}->{dst}"
        record = FailureRecord(target, failed_at=time, kind="delay")
        self.log.records.append(record)
        self.sim.schedule_at(time, network.add_delay, extra, src, dst)
        self.sim.schedule_at(time + duration, self._heal_delay, extra,
                             src, dst, record)

    def _heal_delay(self, extra: float, src: str | None, dst: str | None,
                    record: FailureRecord) -> None:
        record.recovered_at = self.sim.now
        self._check_network("delay-spike").remove_delay(extra, src, dst)

    # ---------------------------------------------------------------- disk
    def disk_stall_at(self, time: float, disk: SimulatedDisk,
                      duration: float) -> None:
        """Freeze ``disk`` for ``duration`` seconds starting at ``time``
        (requests queue and complete after the stall)."""
        self._check_time(time)
        record = FailureRecord(disk.name, failed_at=time, kind="disk-stall")
        record.recovered_at = time + duration
        self.log.records.append(record)
        self.sim.schedule_at(time, disk.stall, duration)

    def disk_slowdown_at(self, time: float, disk: SimulatedDisk,
                         factor: float, duration: float) -> None:
        """Degrade ``disk`` by ``factor`` for ``duration`` seconds."""
        self._check_time(time)
        if factor <= 0:
            raise SimulationError(f"slowdown factor must be > 0: {factor}")
        record = FailureRecord(disk.name, failed_at=time,
                               kind="disk-slowdown")
        self.log.records.append(record)
        self.sim.schedule_at(time, disk.set_slow_factor, factor)
        self.sim.schedule_at(time + duration, self._heal_disk, disk, record)

    def _heal_disk(self, disk: SimulatedDisk,
                   record: FailureRecord) -> None:
        record.recovered_at = self.sim.now
        disk.set_slow_factor(1.0)
