"""Failure injection.

Schedules crashes and recoveries of actors on the virtual timeline; the
fault-tolerance experiments (paper §6.3.2, Figures 8c/8d) are driven through
this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simulator.kernel import Simulator


@dataclass
class FailureRecord:
    actor: str
    failed_at: float
    recovered_at: float | None = None


@dataclass
class FailureLog:
    records: list[FailureRecord] = field(default_factory=list)


class FailureInjector:
    """Kill and recover actors at chosen virtual instants."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.log = FailureLog()

    def kill_at(self, time: float, actor_name: str,
                recover_after: float | None = None) -> None:
        """Crash ``actor_name`` at ``time``; optionally restart it
        ``recover_after`` seconds later."""
        if time < self.sim.now:
            raise SimulationError("cannot schedule a failure in the past")
        record = FailureRecord(actor_name, failed_at=time)
        self.log.records.append(record)
        self.sim.schedule_at(time, self._kill, actor_name)
        if recover_after is not None:
            self.sim.schedule_at(time + recover_after, self._recover,
                                 actor_name, record)

    def kill_now(self, actor_name: str,
                 recover_after: float | None = None) -> None:
        self.kill_at(self.sim.now, actor_name, recover_after)

    def _kill(self, actor_name: str) -> None:
        self.sim.actor(actor_name).fail()

    def _recover(self, actor_name: str, record: FailureRecord) -> None:
        record.recovered_at = self.sim.now
        self.sim.actor(actor_name).recover()
