"""Actors: simulated single-threaded processes.

An actor models one worker thread on a cluster node.  Messages delivered to
it queue in an inbox; the actor serves them one at a time, and serving a
message costs virtual time (returned by :meth:`Actor.handle`).  This is what
creates queueing delay, stragglers and back-pressure in the experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.simulator.kernel import Simulator


class Actor:
    """Base class for simulated processes.

    Subclasses override :meth:`handle` and return the virtual-time cost of
    processing each message.  Messages sent while handling are stamped with
    the service start time.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.down = False
        self.inbox: deque[tuple[Any, str]] = deque()
        # Messages classified urgent are served before the backlog
        # (Tornado uses this to run branch loops ahead of main-loop load,
        # mirroring the paper's "idle processors execute the branch").
        self.inbox_urgent: deque[tuple[Any, str]] = deque()
        self._serving = False
        self.messages_handled = 0
        self.busy_time = 0.0
        # Multiplier on every handling cost; >1 models a slow node.
        self.speed_factor = 1.0
        sim.register(self)

    # ------------------------------------------------------------- delivery
    def deliver(self, message: Any, sender: str) -> None:
        """Called by the network (or a local sender) when a message arrives.
        Messages arriving while the actor is down are lost."""
        if self.down:
            return
        if self.classify(message) > 0:
            self.inbox_urgent.append((message, sender))
        else:
            self.inbox.append((message, sender))
        if not self._serving:
            self._serving = True
            self.sim.schedule(0.0, self._serve_next)

    def classify(self, message: Any) -> int:
        """Return > 0 to serve ``message`` ahead of the normal backlog."""
        return 0

    def _serve_next(self) -> None:
        if self.down:
            self._serving = False
            return
        if not self.inbox and not self.inbox_urgent:
            self._serving = False
            self.on_idle()
            return
        if self.inbox_urgent:
            message, sender = self.inbox_urgent.popleft()
        else:
            message, sender = self.inbox.popleft()
        self.messages_handled += 1
        cost = self.handle(message, sender) or 0.0
        cost *= self.speed_factor
        self.busy_time += cost
        self.sim.schedule(cost, self._serve_next)

    # ------------------------------------------------------------ lifecycle
    def fail(self) -> None:
        """Crash: lose the inbox and stop serving."""
        self.down = True
        self.inbox.clear()
        self.inbox_urgent.clear()
        self._serving = False
        self.on_failure()

    def recover(self) -> None:
        """Restart after a crash."""
        self.down = False
        self.on_recover()
        if (self.inbox or self.inbox_urgent) and not self._serving:
            self._serving = True
            self.sim.schedule(0.0, self._serve_next)

    # ----------------------------------------------------------- overrides
    def handle(self, message: Any, sender: str) -> float:
        """Process one message; return its virtual-time cost in seconds."""
        raise NotImplementedError

    def on_idle(self) -> None:
        """Hook invoked when the inbox drains."""

    def on_failure(self) -> None:
        """Hook invoked when the actor crashes."""

    def on_recover(self) -> None:
        """Hook invoked when the actor restarts."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "down" if self.down else "up"
        return f"{type(self).__name__}({self.name!r}, {state})"
