"""Deterministic named random streams.

Every stochastic decision in the simulator (network jitter, generator noise,
failure timing...) draws from a named substream so that adding a new consumer
of randomness never perturbs the draws seen by existing consumers.
"""

from __future__ import annotations

import zlib

import numpy as np


class RandomStreams:
    """A family of independent, reproducible ``numpy`` generators.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.stream("network")
    >>> b = streams.stream("network")   # same name -> same draws
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for ``name``; deterministic in
        ``(seed, name)`` and independent across names."""
        digest = zlib.crc32(name.encode("utf-8"))
        return np.random.default_rng((self.seed << 32) ^ digest)

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family, e.g. one per simulated node."""
        digest = zlib.crc32(name.encode("utf-8"))
        return RandomStreams(((self.seed * 1000003) ^ digest) & 0x7FFFFFFF)
