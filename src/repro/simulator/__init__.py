"""Deterministic discrete-event cluster simulator.

This package replaces the 20-node Storm cluster of the original paper: it
models single-threaded workers (:class:`Actor`), a shared network fabric
with latency and a throughput ceiling (:class:`Network`), per-node disks
(:class:`SimulatedDisk`) and crash/recovery injection
(:class:`FailureInjector`), all driven by one virtual clock
(:class:`Simulator`).
"""

from repro.simulator.actors import Actor
from repro.simulator.disk import SimulatedDisk
from repro.simulator.events import Event, EventQueue
from repro.simulator.failures import FailureInjector, FailureLog
from repro.simulator.kernel import Scheduled, Simulator
from repro.simulator.network import LinkStats, Network, NetworkStats
from repro.simulator.randomness import RandomStreams
from repro.simulator.timers import Timer, TimerWheel

__all__ = [
    "Actor",
    "Event",
    "EventQueue",
    "FailureInjector",
    "FailureLog",
    "LinkStats",
    "Network",
    "NetworkStats",
    "RandomStreams",
    "Scheduled",
    "SimulatedDisk",
    "Simulator",
    "Timer",
    "TimerWheel",
]
