"""Event queue for the discrete-event simulator.

Events are ordered by (time, sequence number) so that two events scheduled
for the same instant fire in the order they were scheduled.  Cancellation is
lazy: a cancelled event stays in the heap but is skipped when popped.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SimulationError


class Event:
    """A scheduled callback.  Returned by :meth:`EventQueue.push` so the
    caller can cancel it later."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it will be skipped when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[..., Any],
             *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the next non-cancelled event, or ``None`` if
        the queue is exhausted."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the next pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def clear(self) -> None:
        self._heap.clear()
