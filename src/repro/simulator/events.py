"""Event queue for the discrete-event simulator.

Events are ordered by (time, sequence number) so that two events scheduled
for the same instant fire in the order they were scheduled.  Cancellation
is lazy: a cancelled event stays in the heap but is skipped when popped.
Two fast-path mechanisms keep lazy cancellation from dominating the run
(both enabled by the ``fast_path`` flag, off for the legacy kernel used
as an A/B baseline):

* **Tombstone compaction** — when more than half of the heap entries are
  cancelled (and the heap is non-trivial), the heap is rebuilt without
  them in one O(n) pass, so high-churn cancel-heavy loads cannot inflate
  every subsequent O(log n) operation.
* **Same-instant coalescing** — message-style pushes (``track=True``)
  register as the *tail entry for their instant* (``tail_event``), and a
  burst of them landing at the same time with the same callback can be
  folded into one heap entry carrying extra argument tuples
  (``extend``).  Any untracked push at the same instant revokes the
  candidate, so a batch only grows while it is still the newest entry at
  its instant — the kernel then expands it unit by unit in append order,
  which is exactly the (time, seq) order the individual events would
  have had.  Keeping the tail map message-only (plus the ``_tailed``
  flag) keeps plain schedule/pop traffic off the dict entirely.

Independent of the flag, the queue maintains an accurate :attr:`pending`
count of live callback units — cancelled tombstones excluded, coalesced
batch units included — which is what the kernel reports as queue depth.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator

from repro.errors import SimulationError

#: Minimum heap size before compaction is considered; rebuilding tiny
#: heaps costs more than the tombstones do.
COMPACT_MIN_SIZE = 64


class Event:
    """A scheduled callback.  Returned by :meth:`EventQueue.push` so the
    caller can cancel it later."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "extra", "_queue", "_in_heap", "_tailed")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Extra argument tuples of callbacks coalesced into this event
        #: (same callback, same instant), dispatched in append order.
        self.extra: list[tuple] | None = None
        self._queue: "EventQueue | None" = None
        self._in_heap = False
        # True while this event may be registered in the queue's
        # time -> tail map; lets pop/cancel skip the dict entirely for
        # the vast majority of events that never were.
        self._tailed = False

    def cancel(self) -> None:
        """Mark the event so it will be skipped when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._on_cancel(self)

    @property
    def units(self) -> int:
        """Number of callback invocations this entry represents."""
        return 1 if self.extra is None else 1 + len(self.extra)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventQueue:
    """A priority queue of :class:`Event` objects.

    Parameters
    ----------
    fast_path:
        Enable tombstone compaction and the coalescing bookkeeping.
        ``False`` reproduces the pre-fast-path behaviour (pure lazy
        cancellation), which the perf harness uses as its baseline.
    counter:
        Optional shared sequence-number source (the kernel passes one
        shared with its :class:`~repro.simulator.timers.TimerWheel`).
    """

    def __init__(self, fast_path: bool = True,
                 counter: Iterator[int] | None = None) -> None:
        self._heap: list[Event] = []
        self._counter = counter if counter is not None else itertools.count()
        self.fast_path = fast_path
        self._pending = 0
        self._cancelled = 0
        # time -> last event pushed at that time (coalescing support).
        self._tail: dict[float, Event] = {}

    def __len__(self) -> int:
        """Raw heap entries, tombstones included (batches count once)."""
        return len(self._heap)

    @property
    def pending(self) -> int:
        """Live callback units: tombstones excluded, batch units
        included."""
        return self._pending

    @property
    def tombstones(self) -> int:
        """Cancelled entries still occupying heap slots."""
        return self._cancelled

    # ------------------------------------------------------------ scheduling
    def push(self, time: float, callback: Callable[..., Any],
             *args: Any, track: bool = False) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``.  With
        ``track`` the event is registered as the tail entry for its
        instant (a coalescing candidate, see :meth:`tail_event`); any
        push *without* it revokes a pending candidate at the same
        instant, so a batch can never absorb a send across an
        interleaved event."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        event = Event(time, next(self._counter), callback, args)
        event._queue = self
        event._in_heap = True
        heapq.heappush(self._heap, event)
        if track:
            self._tail[time] = event
            event._tailed = True
        elif self._tail:
            self._tail.pop(time, None)
        self._pending += 1
        return event

    def tail_event(self, time: float) -> Event | None:
        """The most recent live tracked event pushed at exactly ``time``,
        if no later push at that time displaced it.  Coalescing into it
        cannot reorder anything: every pending same-instant entry has a
        smaller sequence number."""
        event = self._tail.get(time)
        if event is None or event.cancelled:
            return None
        return event

    def extend(self, event: Event, args: tuple) -> None:
        """Coalesce one more ``event.callback(*args)`` invocation into an
        existing entry (the caller must have vetted it via
        :meth:`tail_event`)."""
        if event.extra is None:
            event.extra = [args]
        else:
            event.extra.append(args)
        self._pending += 1

    def consume_unit(self) -> None:
        """Account for one batch unit the kernel dispatched from an
        already-popped event."""
        self._pending -= 1

    # ------------------------------------------------------------- removal
    def pop(self) -> Event | None:
        """Remove and return the next non-cancelled event, or ``None`` if
        the queue is exhausted."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._in_heap = False
            if event.cancelled:
                self._cancelled -= 1
                continue
            if event._tailed and self._tail.get(event.time) is event:
                del self._tail[event.time]
            self._pending -= 1
            return event
        return None

    def peek(self) -> Event | None:
        """Next pending event without removing it (purges cancelled
        entries from the top)."""
        while self._heap:
            head = self._heap[0]
            if not head.cancelled:
                return head
            heapq.heappop(self._heap)
            head._in_heap = False
            self._cancelled -= 1
        return None

    def peek_time(self) -> float | None:
        """Time of the next pending event without removing it."""
        head = self.peek()
        return None if head is None else head.time

    # -------------------------------------------------------- cancellation
    def _on_cancel(self, event: Event) -> None:
        if not event._in_heap:
            return
        self._pending -= event.units
        self._cancelled += 1
        if event._tailed and self._tail.get(event.time) is event:
            del self._tail[event.time]
        if self.fast_path:
            if (self._cancelled * 2 > len(self._heap)
                    and len(self._heap) >= COMPACT_MIN_SIZE):
                self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones: O(n) once, instead of the
        cancelled majority taxing every later O(log n) operation."""
        live: list[Event] = []
        for event in self._heap:
            if event.cancelled:
                event._in_heap = False
            else:
                live.append(event)
        heapq.heapify(live)
        self._heap = live
        self._cancelled = 0

    def clear(self) -> None:
        for event in self._heap:
            event._in_heap = False
        self._heap.clear()
        self._tail.clear()
        self._pending = 0
        self._cancelled = 0
