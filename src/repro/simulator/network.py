"""Simulated cluster network.

Messages between actors pay a base latency plus optional jitter, and the
fabric as a whole has a finite message capacity: once senders exceed it,
delivery times queue behind one another, which is what produces the
throughput ceiling in the paper's Figure 9b.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.simulator.kernel import Simulator


@dataclass
class LinkStats:
    """Per-(src, dst) traffic accounting, kept only while the flight
    recorder is enabled (per-link cardinality is too high to pay for
    unconditionally)."""

    sent: int = 0
    dropped: int = 0
    bytes: int = 0


@dataclass
class NetworkStats:
    """Aggregate traffic counters plus a per-bucket time series used for
    messages-per-second measurements."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    remote_sent: int = 0
    bucket_width: float = 1.0
    buckets: dict[int, int] = field(default_factory=dict)
    remote_buckets: dict[int, int] = field(default_factory=dict)

    def record_sent(self, time: float) -> None:
        self.sent += 1
        bucket = int(time // self.bucket_width)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def record_remote(self, time: float) -> None:
        self.remote_sent += 1
        bucket = int(time // self.bucket_width)
        self.remote_buckets[bucket] = self.remote_buckets.get(bucket, 0) + 1

    def peak_messages_per_second(self) -> float:
        if not self.buckets:
            return 0.0
        return max(self.buckets.values()) / self.bucket_width

    def peak_remote_messages_per_second(self) -> float:
        """Peak rate over the *fabric* (messages that consume capacity)."""
        if not self.remote_buckets:
            return 0.0
        return max(self.remote_buckets.values()) / self.bucket_width

    def mean_messages_per_second(self, start: float, end: float) -> float:
        if end <= start:
            return 0.0
        lo, hi = int(start // self.bucket_width), int(end // self.bucket_width)
        total = sum(count for bucket, count in self.buckets.items()
                    if lo <= bucket <= hi)
        return total / (end - start)


class Network:
    """Message fabric connecting every actor of a :class:`Simulator`.

    Parameters
    ----------
    latency:
        One-way delivery latency in virtual seconds.
    jitter:
        Uniform jitter added on top of ``latency``.
    capacity:
        Fabric-wide throughput ceiling in messages per virtual second
        (``None`` = infinite).
    local_latency:
        Latency for messages whose source and destination share a node
        (see :meth:`colocate`).
    """

    def __init__(self, sim: Simulator, latency: float = 5e-4,
                 jitter: float = 0.0, capacity: float | None = None,
                 local_latency: float = 5e-5) -> None:
        self.sim = sim
        self.latency = latency
        self.jitter = jitter
        self.capacity = capacity
        self.local_latency = local_latency
        self.stats = NetworkStats()
        self._rng = sim.random.stream("network")
        self._next_free = 0.0
        self._placement: dict[str, str] = {}
        self._blocked: set[tuple[str, str]] = set()
        #: Fabric-wide extra one-way latency (delay spikes stack additively).
        self.extra_latency = 0.0
        #: Per-(src, dst) extra latency on top of the fabric-wide spike.
        self._link_extra: dict[tuple[str, str], float] = {}
        #: Per-link accounting, populated only while tracing is enabled.
        self.link_stats: dict[tuple[str, str], LinkStats] = {}
        #: Optional ``message -> size in bytes`` estimator for per-link
        #: byte accounting (left unset, bytes stay 0: sizing arbitrary
        #: payloads is workload knowledge the fabric does not have).
        self.size_of: Any = None
        #: Record one ``net.send`` event (with delivery eta) per message
        #: while tracing — the communication edges the critical-path
        #: extractor walks.  Off by default: link events change the
        #: trace digest (see ``TornadoConfig.trace_links``).
        self.trace_links = False

    def _link(self, src: str, dst: str) -> LinkStats:
        link = self.link_stats.get((src, dst))
        if link is None:
            link = self.link_stats[(src, dst)] = LinkStats()
        return link

    # ------------------------------------------------------------ placement
    def colocate(self, actor_name: str, node: str) -> None:
        """Pin an actor to a physical node; intra-node messages are cheap
        and do not consume fabric capacity."""
        self._placement[actor_name] = node

    def _is_local(self, src: str, dst: str) -> bool:
        node_src = self._placement.get(src)
        return node_src is not None and node_src == self._placement.get(dst)

    # ----------------------------------------------------------- partitions
    def block(self, src: str, dst: str) -> None:
        """Drop all messages from ``src`` to ``dst`` (network partition)."""
        self._blocked.add((src, dst))
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "net", "block",
                                  actor=src, dst=dst)

    def unblock(self, src: str, dst: str) -> None:
        self._blocked.discard((src, dst))
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "net", "unblock",
                                  actor=src, dst=dst)

    # --------------------------------------------------------- delay spikes
    def add_delay(self, extra: float, src: str | None = None,
                  dst: str | None = None) -> None:
        """Start a delay spike: every remote message (or every ``src``
        -> ``dst`` message when both are given) pays ``extra`` additional
        one-way latency until :meth:`remove_delay` undoes it.  Spikes
        stack, so overlapping faults compose additively."""
        if src is not None and dst is not None:
            key = (src, dst)
            self._link_extra[key] = self._link_extra.get(key, 0.0) + extra
        else:
            self.extra_latency += extra
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "net", "delay_spike",
                                  actor=src or "-", dst=dst or "-",
                                  extra=extra)

    def remove_delay(self, extra: float, src: str | None = None,
                     dst: str | None = None) -> None:
        """End a delay spike previously started with :meth:`add_delay`."""
        if src is not None and dst is not None:
            key = (src, dst)
            remaining = self._link_extra.get(key, 0.0) - extra
            if remaining > 1e-12:
                self._link_extra[key] = remaining
            else:
                self._link_extra.pop(key, None)
        else:
            self.extra_latency = max(0.0, self.extra_latency - extra)
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "net", "delay_heal",
                                  actor=src or "-", dst=dst or "-",
                                  extra=extra)

    # ------------------------------------------------------------- sending
    def send(self, src: str, dst: str, message: Any) -> None:
        """Deliver ``message`` from actor ``src`` to actor ``dst`` after the
        modelled delay.  Messages to a crashed actor are silently lost, as
        on a real network."""
        now = self.sim.now
        self.stats.record_sent(now)
        if self.sim.trace.enabled:
            link = self._link(src, dst)
            link.sent += 1
            if self.size_of is not None:
                link.bytes += int(self.size_of(message))
        if (src, dst) in self._blocked:
            self.stats.dropped += 1
            if self.sim.trace.enabled:
                self._link(src, dst).dropped += 1
                self.sim.trace.record(now, "net", "drop", actor=src,
                                      dst=dst, reason="partition")
            return
        if self._is_local(src, dst):
            delay = self.local_latency
        else:
            self.stats.record_remote(now)
            delay = self.latency + self.extra_latency
            if self._link_extra:
                delay += self._link_extra.get((src, dst), 0.0)
            if self.jitter:
                delay += float(self._rng.random()) * self.jitter
            if self.capacity is not None:
                depart = max(now, self._next_free)
                self._next_free = depart + 1.0 / self.capacity
                delay += depart - now
        if not math.isfinite(delay):
            delay = self.latency
        if self.trace_links and self.sim.trace.enabled:
            self.sim.trace.record(now, "net", "send", actor=src, dst=dst,
                                  eta=now + delay)
        # Delivery events are never cancelled, so a same-instant burst on
        # the fast path coalesces into one heap entry (the kernel expands
        # it in send order; capacity above was still charged per message).
        self.sim.schedule_message(delay, self._deliver, dst, message, src)

    def _deliver(self, dst: str, message: Any, src: str) -> None:
        actor = self.sim.actors.get(dst)
        if actor is None or actor.down:
            self.stats.dropped += 1
            if self.sim.trace.enabled:
                self._link(src, dst).dropped += 1
                self.sim.trace.record(self.sim.now, "net", "drop",
                                      actor=src, dst=dst, reason="down")
            return
        self.stats.delivered += 1
        actor.deliver(message, src)
