"""Exception hierarchy shared across the repro library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class TopologyError(ReproError):
    """A stream topology is malformed (unknown component, bad grouping...)."""


class ProtocolError(ReproError):
    """The three-phase update protocol reached an inconsistent state."""


class StorageError(ReproError):
    """The versioned state store rejected an operation."""


class ConvergenceError(ReproError):
    """A loop failed to converge within its iteration budget."""


class QueryError(ReproError):
    """A user query could not be answered (unknown branch, not converged...)."""
