"""Exception hierarchy shared across the repro library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class TopologyError(ReproError):
    """A stream topology is malformed (unknown component, bad grouping...)."""


class ProtocolError(ReproError):
    """The three-phase update protocol reached an inconsistent state."""


class StorageError(ReproError):
    """The versioned state store rejected an operation."""


class ConvergenceError(ReproError):
    """A loop failed to converge within its iteration budget."""


class QueryError(ReproError):
    """A user query could not be answered (unknown branch, not converged...)."""


class AdmissionError(QueryError):
    """Multi-tenant admission control rejected a request.  Subclasses name
    the rejection reason so callers (and tests) can react precisely."""


class DuplicateTenantError(AdmissionError):
    """A tenant id is already registered with the JobManager."""


class PoolExhaustedError(AdmissionError):
    """The shared processor pool has too few free slots for the request."""


class QuotaExceededError(AdmissionError):
    """A submission or running tenant exceeded its per-tenant quota."""


class BackpressureError(AdmissionError):
    """A tenant's ingest backlog is over its pending-input quota; the
    caller should retry after the tenant's ingester drains."""
