"""Cross-process message envelopes and control frames.

Everything that crosses a process boundary is a frozen dataclass built
from plain data — the pickle round-trip test over the full message
vocabulary (``tests/test_live_pickle.py``) keeps it that way.  Two
families travel on the queues:

* :class:`Wire` wraps one actor-bound protocol message from
  ``core/messages.py`` (usually a transport ``Envelope`` or
  ``TransportAck``) with its source, destination and the sender's Lamport
  stamp; the receiver merges the stamp into its own clock, which yields
  the virtual ordering the flight recorder stamps events with.  With
  ``TornadoConfig.columnar_wire`` on, the envelope's payload may be a
  ``ColumnBatch`` — session updates as typed column runs of plain tuples
  (the live sibling of ``StoreWrite.slabs``), still numpy-free so the
  vocabulary pickles without the columnar dependency.
* Control frames (:class:`StoreWrite`, :class:`FetchStore`,
  :class:`StoreLoad`, :class:`Collect`, :class:`FinalReport`,
  :class:`Shutdown`, :class:`WorkerError`) are handled by the master pump
  or the worker loop directly, outside the actor inbox — they are the
  live backend's replacements for the shared-memory objects the simulator
  could simply pass by reference (the store, the manifest, final state
  inspection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class Wire:
    """One protocol message in flight between processes."""

    src: str
    dst: str
    #: Sender's Lamport counter at send time (merged on receipt).
    stamp: int
    payload: Any


@dataclass(frozen=True, slots=True)
class StoreWrite:
    """Write-behind checkpoint shipping: the journal of versions a worker
    flushed, bound for the master's authoritative store.  Rides the same
    FIFO queue as the progress reports that follow it, so by the time the
    master processes a report, the versions it covers have landed — the
    paper's flush-before-report invariant, end to end."""

    processor: str
    seq: int
    #: ``(loop, key, iteration, value)`` tuples.
    entries: tuple
    #: ``(loop, iteration)`` durable frontiers as of this flush.
    frontiers: tuple
    #: Column slabs ``(loop, keys, iterations, values)`` — the columnar
    #: layout's journal format (mutually exclusive with ``entries``; the
    #: master replays each slab through vectorized ``put_columns``).
    slabs: tuple = ()


@dataclass(frozen=True, slots=True)
class FetchStore:
    """A respawned worker asks the master for its checkpoint state."""

    processor: str


@dataclass(frozen=True, slots=True)
class StoreLoad:
    """Master → worker: full version dump re-seeding a respawned worker's
    local store (``(loop, key, iteration, value)`` tuples)."""

    entries: tuple


@dataclass(frozen=True, slots=True)
class Collect:
    """Finalize barrier: asks a worker to drain its ready queue and reply
    with a :class:`FinalReport`."""


@dataclass(frozen=True, slots=True)
class FinalReport:
    """A worker's end-of-run summary: final in-memory main-loop values,
    per-loop protocol totals and flight-recorder phase counts."""

    processor: str
    incarnation: int
    #: Sorted ``(vertex_id, snapshot_value)`` pairs of the main loop.
    main_values: tuple
    #: Sorted ``(loop, (commits, sent, gathered, prepares, inputs))``.
    loop_totals: tuple
    #: Sorted ``(phase_key, count)`` pairs from the worker's recorder.
    trace_counts: tuple
    events_processed: int
    retransmissions: int
    trace_evicted: int
    #: Column rows this worker packed (send) plus fast-gathered
    #: (receive) under ``columnar_wire`` — the engagement signal the
    #: wire bench asserts on (0 when the gate is off).
    wire_rows: int = 0


@dataclass(frozen=True, slots=True)
class Shutdown:
    """Orderly worker exit."""


@dataclass(frozen=True, slots=True)
class WorkerError:
    """A worker's main loop raised; ``error`` carries the traceback text.
    The master pump re-raises on receipt."""

    processor: str
    incarnation: int
    error: str


@dataclass(frozen=True, slots=True)
class WorkerSpec:
    """Everything a spawned worker needs to build its runtime (must be
    picklable: the spawn start method re-imports and unpickles it)."""

    name: str
    incarnation: int
    app: Any
    config: Any
    worker_names: tuple
    recovering: bool
