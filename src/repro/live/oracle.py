"""The live-vs-DES cross-check oracle.

Claim being checked: a live (multiprocessing) run of a job and a
simulated (DES) run of the *same program with the same seed* agree on

* the final main-loop vertex state (always — this is the correctness
  floor); and
* the protocol-phase **totals** — commits, updates sent/gathered,
  prepares, inputs — when the workload makes those totals deterministic
  (synchronous mode ``delay_bound=1`` on tree-shaped dataflow, where
  every link is a single-producer FIFO and gather sequences are
  therefore forced; see DESIGN.md §3h for why general graphs only get
  final-state equality: under ``skip_prepare`` a commit happens per
  *changing* gather, and multi-producer arrival interleavings — which
  neither backend pins down — change how many gathers change a value).

The digest deliberately excludes wall-clock time, queue timings, Lamport
stamps and raw event order: those differ between backends by
construction.  Everything hashed first passes through :func:`_canon`,
which rebuilds containers in sorted order — dict/set iteration order is
not comparable across OS processes under hash randomisation.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import Any

from repro.core.messages import MAIN_LOOP

#: Phases whose totals the oracle compares.  ``protocol.delay_buffered``
#: is deliberately absent: whether an update buffers in the delay window
#: depends on when the master's termination notice lands relative to the
#: update — pure arrival timing, different between backends by
#: construction (and between two live runs).  The three protocol phases
#: and commits are the causally forced quantities.
DETERMINISTIC_PHASES = ("protocol.update", "protocol.prepare",
                        "protocol.ack", "protocol.commit")


def _canon(value: Any) -> Any:
    """Rebuild ``value`` as a deterministic, order-independent structure
    (nested tuples) suitable for comparison and hashing across
    processes."""
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,
                tuple((f.name, _canon(getattr(value, f.name)))
                      for f in fields(value)))
    if isinstance(value, dict):
        return ("dict", tuple(sorted(
            ((_canon(k), _canon(v)) for k, v in value.items()),
            key=repr)))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((_canon(v) for v in value), key=repr)))
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    if isinstance(value, float):
        # repr() round-trips doubles exactly; -0.0 and 0.0 compare equal
        # but repr differently, so normalise the one case where IEEE
        # equality and bit identity disagree.
        return repr(value + 0.0 if value == 0.0 else value)
    return value


def _phase_counts(job: Any) -> dict[str, int]:
    if hasattr(job, "trace_phase_counts"):   # LiveJob: master + workers
        counts = job.trace_phase_counts()
    else:
        counts = job.trace.phase_counts()
    return {key: count for key, count in counts.items()
            if key.split(":", 1)[0] in DETERMINISTIC_PHASES}


def _inputs_gathered(job: Any) -> int:
    tracker = job.master.trackers.get(MAIN_LOOP)
    return tracker.total_inputs() if tracker is not None else 0


def job_fingerprint(job: Any, loop: str = MAIN_LOOP,
                    include_counts: bool = True) -> dict[str, Any]:
    """Backend-independent summary of a finished run.  Values pass
    through the program's ``snapshot_value`` (idempotent) so both
    backends normalise state the same way."""
    program = job.app.program
    values = {vertex_id: program.snapshot_value(value)
              for vertex_id, value in job.main_values().items()}
    fingerprint: dict[str, Any] = {"main_values": _canon(values)}
    if include_counts:
        fingerprint["loop_totals"] = _canon(job.loop_totals(loop))
        fingerprint["inputs_gathered"] = _inputs_gathered(job)
        fingerprint["phase_counts"] = _canon(_phase_counts(job))
    return fingerprint


def canonical_digest(job: Any, loop: str = MAIN_LOOP,
                     include_counts: bool = True) -> str:
    """SHA-256 over the canonicalised fingerprint — stable across
    processes, hash seeds and backends (to the extent the fingerprinted
    quantities are deterministic; see the module docstring)."""
    fingerprint = job_fingerprint(job, loop=loop,
                                  include_counts=include_counts)
    blob = repr(tuple(sorted(((k, v) for k, v in fingerprint.items()),
                             key=repr)))
    return hashlib.sha256(blob.encode()).hexdigest()


def cross_check(live_job: Any, sim_job: Any, loop: str = MAIN_LOOP,
                include_counts: bool = True) -> dict[str, Any]:
    """Compare a live run against its DES replay.  Returns a report
    (``ok``, per-section ``mismatches``, both digests); raises
    ``AssertionError`` with the report when they disagree, so tests can
    use it bare."""
    live = job_fingerprint(live_job, loop=loop,
                           include_counts=include_counts)
    sim = job_fingerprint(sim_job, loop=loop,
                          include_counts=include_counts)
    mismatches = [key for key in live if live[key] != sim.get(key)]
    report = {
        "ok": not mismatches,
        "mismatches": mismatches,
        "live_digest": canonical_digest(live_job, loop=loop,
                                        include_counts=include_counts),
        "sim_digest": canonical_digest(sim_job, loop=loop,
                                       include_counts=include_counts),
    }
    if mismatches:
        detail = "; ".join(
            f"{key}: live={live[key]!r} sim={sim.get(key)!r}"
            for key in mismatches)
        raise AssertionError(f"live/sim cross-check failed — {detail}")
    return report
