"""The worker process: one unmodified ``Processor`` behind two queues.

Spawned (not forked) so each worker is a genuinely fresh interpreter —
which is also why the determinism bug batch matters: with hash
randomisation, any set-iteration-order dependence in the protocol hot
paths would make two workers disagree on scatter order.

The loop is event-driven: block on the inbound queue with a timeout
bounded by the kernel's next wall-clock timer (retransmits, report
ticks), interleave queue drains with bounded ready-FIFO runs so a busy
compute phase cannot starve message intake, and answer the master's
control frames (StoreLoad hydration, Collect barrier, Shutdown) outside
the actor inbox.
"""

from __future__ import annotations

import queue
import time
import traceback
from typing import Any

from repro.core.messages import MAIN_LOOP
from repro.core.partition import PartitionScheme
from repro.core.processor import Processor
from repro.live.kernel import LiveKernel
from repro.live.store import LiveBackend, WorkerStore
from repro.live.transport import LiveTransport, WorkerNet
from repro.live.wire import (Collect, FinalReport, Shutdown, StoreLoad,
                             FetchStore, Wire, WorkerError, WorkerSpec)
from repro.obs import TraceRecorder

MASTER_NAME = "master"

#: How long a recovering worker waits for its StoreLoad before giving up.
HYDRATION_TIMEOUT = 60.0
#: Ready-FIFO callbacks run per queue poll (bounds intake starvation).
READY_SLICE = 512
#: Idle poll ceiling so timer deadlines are re-checked regularly.
IDLE_POLL = 0.05


def build_final_report(processor: Processor, kernel: LiveKernel,
                       incarnation: int) -> FinalReport:
    """Snapshot the worker's end-of-run state for the Collect barrier."""
    program = processor.app.program
    main = processor.loops.get(MAIN_LOOP)
    values: tuple = ()
    if main is not None:
        values = tuple(sorted(
            ((vertex_id, program.snapshot_value(state.value))
             for vertex_id, state in main.vertices.items()),
            key=lambda kv: repr(kv[0])))
    totals: dict[str, tuple[int, int, int, int, int]] = {}
    for name, loop in processor.loops.items():
        totals[name] = (loop.commits_total, loop.sent_total,
                        loop.gathered_total, loop.prepares_recorded,
                        loop.inputs_gathered)
    for name, entry in processor.loop_archive.items():
        if name not in totals:
            totals[name] = (entry[0], entry[1], entry[2], entry[3], 0)
    metrics = kernel.metrics
    wire_rows = int(metrics.counter("core.wire_packed_rows").value
                    + metrics.counter("core.wire_row_gathers").value)
    return FinalReport(
        processor=processor.name,
        incarnation=incarnation,
        main_values=values,
        loop_totals=tuple(sorted(totals.items())),
        trace_counts=tuple(sorted(kernel.trace.phase_counts().items())),
        events_processed=kernel.events_processed,
        retransmissions=processor.transport.retransmissions,
        trace_evicted=kernel.trace.evicted,
        wire_rows=wire_rows,
    )


def _await_store_load(inbound: Any, stash: list[Any]) -> StoreLoad | None:
    """Block until the master's StoreLoad arrives, stashing any other
    frames (peers may already be sending) for delivery after hydration."""
    deadline = time.monotonic() + HYDRATION_TIMEOUT
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError("no StoreLoad within hydration timeout")
        try:
            item = inbound.get(timeout=min(remaining, 1.0))
        except queue.Empty:
            continue
        if isinstance(item, StoreLoad):
            return item
        if isinstance(item, Shutdown):
            return None
        stash.append(item)


def worker_main(spec: WorkerSpec, inbound: Any, outbound: Any) -> None:
    """Process entrypoint (must stay importable at module top level:
    the spawn start method pickles it by reference)."""
    config = spec.config
    try:
        recorder = TraceRecorder(capacity=config.trace_capacity,
                                 enabled=config.trace_enabled)
        kernel = LiveKernel(seed=config.seed, recorder=recorder)
        net = WorkerNet(kernel, spec.name, outbound)
        partition = PartitionScheme(list(spec.worker_names))
        store = WorkerStore(
            delta_path=config.delta_path,
            columnar=config.columnar,
            rebase_interval=config.store_rebase_interval,
            snapshot_cache_size=config.store_snapshot_cache_size)
        backend = LiveBackend(store, net, spec.name)
        processor = Processor(kernel, spec.name, config, spec.app,
                              partition, store, backend, net, MASTER_NAME,
                              manifest=None)
        # Swap in the incarnation-namespaced transport before any message
        # flows (see repro.live.transport: a respawn must not reuse ids
        # its peers' dedup windows remember).
        processor.transport = LiveTransport(
            kernel, net, spec.name, timeout=config.retransmit_timeout,
            incarnation=spec.incarnation)

        stash: list[Any] = []
        if spec.recovering:
            net.send_control(FetchStore(spec.name))
            load = _await_store_load(inbound, stash)
            if load is None:
                return
            store.hydrate(load.entries)
            # Same sequence as Actor.recover: announce, then restart the
            # report tick; the master replies with RecoverLoops.
            processor.on_recover()
        else:
            processor.start()

        collect_pending = False
        running = True
        while running:
            item: Any = None
            if stash:
                item = stash.pop(0)
            else:
                if kernel.ready_count:
                    try:
                        item = inbound.get_nowait()
                    except queue.Empty:
                        item = None
                else:
                    delay = kernel.next_timer_delay()
                    timeout = IDLE_POLL if delay is None \
                        else max(0.0, min(delay, IDLE_POLL))
                    try:
                        item = inbound.get(timeout=timeout)
                    except queue.Empty:
                        item = None
            if isinstance(item, Wire):
                kernel.observe(item.stamp)
                processor.deliver(item.payload, item.src)
            elif isinstance(item, Collect):
                collect_pending = True
            elif isinstance(item, Shutdown):
                running = False
            kernel.run_ready(limit=READY_SLICE)
            kernel.fire_due_timers()
            if collect_pending and not kernel.ready_count and not stash:
                # FIFO guarantees everything sent before the Collect has
                # been dequeued; with the ready queue drained the counters
                # and values below are final.
                outbound.put(build_final_report(processor, kernel,
                                                spec.incarnation))
                collect_pending = False
    except Exception:  # pragma: no cover - surfaced by the master pump
        outbound.put(WorkerError(spec.name, spec.incarnation,
                                 traceback.format_exc()))
        raise
