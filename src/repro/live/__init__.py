"""The live multiprocessing execution backend.

``repro.live`` runs the exact same Tornado runtime — ``Processor``,
``Master``, ``Ingester``, ``ReliableEndpoint``, the three-phase update
protocol — on real OS processes instead of the discrete-event simulator.
Select it with ``TornadoConfig(backend="live")``; the same
``repro.core.job`` program runs unmodified on either backend.

Architecture (see DESIGN.md §3h):

* the master process owns the job graph, the authoritative
  :class:`~repro.storage.VersionedStore` and the checkpoint manifest, and
  runs a ``split_managed``-style pump loop dispatching work and collecting
  ProgressReports;
* each processor runs in its own spawned process on a
  :class:`~repro.live.kernel.LiveKernel` — a Simulator facade whose clock
  is a Lamport counter and whose timers fire on wall time;
* all cross-process traffic is the frozen-dataclass protocol vocabulary
  of ``core/messages.py``, wrapped in :class:`~repro.live.wire.Wire`
  envelopes and routed worker → master → worker over multiprocessing
  queues (star topology, per-link FIFO);
* correctness is gated by :mod:`repro.live.oracle`: the live run's final
  vertex state and protocol-phase counts must match the DES run with the
  same seed.
"""

from repro.live.job import LiveJob
from repro.live.kernel import LiveKernel
from repro.live.oracle import canonical_digest, cross_check, job_fingerprint
from repro.live.store import LiveBackend, WorkerStore
from repro.live.transport import LiveTransport, MasterNet, WorkerNet
from repro.live.wire import (Collect, FetchStore, FinalReport, Shutdown,
                             StoreLoad, StoreWrite, Wire, WorkerError)

__all__ = [
    "LiveJob",
    "LiveKernel",
    "LiveBackend",
    "LiveTransport",
    "MasterNet",
    "WorkerNet",
    "WorkerStore",
    "Wire",
    "StoreWrite",
    "StoreLoad",
    "FetchStore",
    "Collect",
    "FinalReport",
    "Shutdown",
    "WorkerError",
    "canonical_digest",
    "cross_check",
    "job_fingerprint",
]
