"""Live network fabric and reliable transport.

The reliable at-least-once layer is :class:`ReliableEndpoint` itself —
unchanged.  It only needs a kernel with ``schedule_timer`` (retransmit
timeouts become wall-clock timeouts on the :class:`LiveKernel`) and a
network with ``send(src, dst, message)``.  The two fabric classes here
supply the latter over multiprocessing queues:

* :class:`WorkerNet` (in each worker process) delivers self-addressed
  messages locally and puts everything else on the worker's outbound
  queue as a :class:`~repro.live.wire.Wire`;
* :class:`MasterNet` (in the master process) delivers to the master and
  ingester actors locally and routes worker-bound wires into the
  per-worker inbound queues.  All worker↔worker traffic therefore hops
  through the master's pump — a star topology, which keeps every link a
  single-producer FIFO (the per-link ordering the protocol relies on)
  and gives the master one place to fence dead incarnations.

:class:`LiveTransport` adds one thing to :class:`ReliableEndpoint`:
message-id namespacing by incarnation.  A respawned worker is a *new
process* whose id counter restarts at zero, while its peers' dedup
windows still remember the old incarnation's ids — without the offset,
the fresh messages would be dropped as duplicates.  (The simulator never
hits this: a recovered actor keeps its endpoint object, and
``clear()`` deliberately does not reset ``_next_id``.)
"""

from __future__ import annotations

from typing import Any

from repro.core.transport import ReliableEndpoint
from repro.live.kernel import LiveKernel
from repro.live.wire import Wire

#: Message-id namespace width per incarnation (2**32 ids each).
INCARNATION_STRIDE = 1 << 32


class WorkerNet:
    """Fabric seen from inside one worker process."""

    def __init__(self, kernel: LiveKernel, owner: str, outbound: Any) -> None:
        self.kernel = kernel
        self.owner = owner
        self.outbound = outbound
        self.sent = 0
        self.sent_local = 0

    def send(self, src: str, dst: str, message: Any) -> None:
        self.sent += 1
        actor = self.kernel.actors.get(dst)
        if actor is not None:
            # Self-owned consumer (or any co-hosted actor): deliver
            # through the kernel, exactly like the simulated network's
            # local path — no pickling, no queue hop.
            self.sent_local += 1
            actor.deliver(message, src)
            return
        self.outbound.put(Wire(src, dst, self.kernel.tick(), message))

    def send_control(self, frame: Any) -> None:
        """Put a control frame (StoreWrite, FetchStore, FinalReport …) on
        the outbound queue, outside the actor-message path."""
        self.outbound.put(frame)


class MasterNet:
    """Fabric seen from the master process; also the star router."""

    def __init__(self, kernel: LiveKernel, links: dict[str, Any]) -> None:
        self.kernel = kernel
        #: name -> worker link (``.queue``, ``.alive``); owned and
        #: mutated by the LiveJob driver as workers die and respawn.
        self.links = links
        self.sent = 0
        self.dropped = 0

    def send(self, src: str, dst: str, message: Any) -> None:
        self.sent += 1
        actor = self.kernel.actors.get(dst)
        if actor is not None:
            actor.deliver(message, src)
            return
        self.forward(Wire(src, dst, self.kernel.tick(), message))

    def forward(self, wire: Wire) -> None:
        """Route a wire to its destination worker.  Messages to a dead
        worker are dropped — the moral equivalent of the simulated
        network's down-actor drop; retransmit timers recover them."""
        link = self.links.get(wire.dst)
        if link is None or not link.alive:
            self.dropped += 1
            return
        link.queue_in.put(wire)


class LiveTransport(ReliableEndpoint):
    """ReliableEndpoint with incarnation-namespaced message ids."""

    def __init__(self, kernel: LiveKernel, net: Any, owner: str,
                 timeout: float = 0.5, incarnation: int = 0) -> None:
        super().__init__(kernel, net, owner, timeout=timeout)
        self.incarnation = incarnation
        self._next_id = incarnation * INCARNATION_STRIDE
