"""The live job driver: master-process pump loop and worker lifecycle.

:class:`LiveJob` is what ``TornadoJob(app, TornadoConfig(backend="live"))``
actually constructs.  It hosts the unmodified :class:`Master` and
:class:`Ingester` actors (plus the authoritative store and checkpoint
manifest) on a :class:`LiveKernel` in the calling process, spawns one OS
process per Tornado processor, and runs a ``split_managed``-style pump:
drain worker queues, run ready actor work, fire wall-clock timers,
release parked stream feeds when idle, and decide convergence from the
same :class:`ProgressTracker` evidence the simulator uses.

What it deliberately does **not** support yet: branch-loop queries and
the live rebalancer (both raise) — the main loop, crash recovery and the
checkpoint protocol are the load-bearing surface the DES cross-check can
actually vouch for.
"""

from __future__ import annotations

import atexit
import multiprocessing
import queue
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.config import TornadoConfig
from repro.core.ingester import Ingester
from repro.core.job import TornadoJob
from repro.core.master import Master, MasterDurableState
from repro.core.messages import MAIN_LOOP
from repro.core.partition import PartitionScheme
from repro.core.vertex import Application
from repro.errors import QueryError, SimulationError
from repro.live.kernel import LiveKernel
from repro.live.transport import MasterNet
from repro.live.wire import (Collect, FetchStore, FinalReport, Shutdown,
                             StoreLoad, StoreWrite, Wire, WorkerError,
                             WorkerSpec)
from repro.live.worker import worker_main
from repro.obs import TraceRecorder
from repro.storage import CheckpointManifest, VersionedStore
from repro.streams.model import StreamTuple

#: Items drained from one worker's outbound queue per pump pass.
DRAIN_SLICE = 256
#: Consecutive idle passes with the convergence predicate true before
#: the pump declares the run converged.
IDLE_CONFIRMATIONS = 3


@dataclass
class _WorkerLink:
    """Master-side handle on one worker process."""

    queue_in: Any
    queue_out: Any
    process: Any
    incarnation: int
    alive: bool = True
    #: Set when the driver killed it on purpose (fault injection).
    expected_down: bool = field(default=False)


class LiveJob(TornadoJob):
    """One Tornado deployment on real OS processes."""

    def __init__(self, app: Application,
                 config: TornadoConfig | None = None) -> None:
        # Deliberately no super().__init__: the simulator-side wiring
        # (Simulator, Network, FailureInjector, in-process Processors)
        # is replaced wholesale.
        self.app = app
        self.config = config if config is not None else TornadoConfig(
            backend="live")
        if self.config.rebalance_enabled:
            raise ValueError(
                "backend='live' does not support the rebalancer yet")
        recorder = TraceRecorder(capacity=self.config.trace_capacity,
                                 enabled=self.config.trace_enabled)
        self.kernel = LiveKernel(seed=self.config.seed, recorder=recorder)
        #: Simulator alias so inherited helpers (``trace``, ``metrics``)
        #: resolve against the live kernel.
        self.sim = self.kernel
        self.store = VersionedStore(
            delta_path=self.config.delta_path,
            columnar=self.config.columnar,
            rebase_interval=self.config.store_rebase_interval,
            snapshot_cache_size=self.config.store_snapshot_cache_size)
        self.manifest = CheckpointManifest()
        self.durable = MasterDurableState()
        self._worker_names = [f"proc-{i}"
                              for i in range(self.config.n_processors)]
        self.partition = PartitionScheme(self._worker_names)
        self._links: dict[str, _WorkerLink] = {}
        self.net = MasterNet(self.kernel, self._links)
        self.master = Master(self.kernel, self.MASTER, self.config,
                             self.net, self._worker_names, self.INGESTER,
                             self.manifest, self.durable, self.partition)
        self.ingester = Ingester(self.kernel, self.INGESTER, self.config,
                                 app, self.partition, self.net,
                                 self.MASTER)
        #: Final reports gathered by the last :meth:`finalize` barrier.
        self.reports: dict[str, FinalReport] = {}
        self._ctx = multiprocessing.get_context("spawn")
        self._closed = False
        atexit.register(self.shutdown)
        for name in self._worker_names:
            self._spawn(name, incarnation=0, recovering=False)

    # ------------------------------------------------------ worker lifecycle
    def _spawn(self, name: str, incarnation: int,
               recovering: bool) -> None:
        queue_in = self._ctx.Queue()
        queue_out = self._ctx.Queue()
        spec = WorkerSpec(name, incarnation, self.app, self.config,
                          tuple(self._worker_names), recovering)
        process = self._ctx.Process(
            target=worker_main, args=(spec, queue_in, queue_out),
            daemon=True, name=f"tornado-live-{name}")
        process.start()
        self._links[name] = _WorkerLink(queue_in, queue_out, process,
                                        incarnation)

    def kill_worker(self, name: str) -> None:
        """SIGKILL a worker mid-run (fault injection).  Messages queued
        toward it are lost — the live analogue of the simulated
        network's down-actor drop; reliable-transport retransmits and
        the recovery protocol pick up the pieces after a respawn."""
        link = self._links[name]
        link.alive = False
        link.expected_down = True
        link.process.kill()
        link.process.join(timeout=10)
        link.queue_in.close()
        link.queue_in.cancel_join_thread()

    def respawn_worker(self, name: str) -> None:
        """Restart a killed worker as a fresh incarnation.  It hydrates
        its local store from the master (FetchStore/StoreLoad), announces
        ``ProcessorRecovered`` and rejoins the protocol."""
        link = self._links[name]
        if link.alive:
            raise ValueError(f"worker {name!r} is still alive")
        self._spawn(name, incarnation=link.incarnation + 1,
                    recovering=True)

    def _check_workers(self) -> None:
        for name, link in self._links.items():
            if link.alive and link.process.exitcode is not None:
                link.alive = False
                self._drain_link(link)  # surface a WorkerError if any
                raise RuntimeError(
                    f"live worker {name!r} died unexpectedly "
                    f"(exit code {link.process.exitcode})")

    # ------------------------------------------------------------- the pump
    def _handle_item(self, item: Any) -> None:
        if isinstance(item, Wire):
            actor = self.kernel.actors.get(item.dst)
            if actor is not None:
                self.kernel.observe(item.stamp)
                actor.deliver(item.payload, item.src)
            else:
                self.net.forward(item)
        elif isinstance(item, StoreWrite):
            for loop, key, iteration, value in item.entries:
                self.store.put(loop, key, iteration, value)
            for loop, keys, iterations, values in item.slabs:
                self.store.put_columns(loop, keys, iterations, values)
            for loop, iteration in item.frontiers:
                self.manifest.record_flush(loop, item.processor, iteration)
        elif isinstance(item, FetchStore):
            link = self._links.get(item.processor)
            if link is not None and link.alive:
                link.queue_in.put(
                    StoreLoad(tuple(self.store.export_versions())))
        elif isinstance(item, FinalReport):
            self.reports[item.processor] = item
        elif isinstance(item, WorkerError):
            raise RuntimeError(
                f"live worker {item.processor!r} "
                f"(incarnation {item.incarnation}) failed:\n{item.error}")

    def _drain_link(self, link: _WorkerLink) -> int:
        drained = 0
        for _ in range(DRAIN_SLICE):
            try:
                item = link.queue_out.get_nowait()
            except queue.Empty:
                break
            drained += 1
            self._handle_item(item)
        return drained

    def _pump_once(self) -> bool:
        """One pump pass; returns whether any work happened."""
        progressed = 0
        for link in self._links.values():
            if link.alive or link.expected_down:
                progressed += self._drain_link(link)
        progressed += self.kernel.run_ready(limit=4096)
        progressed += self.kernel.fire_due_timers()
        return progressed > 0

    def _converged(self) -> bool:
        tracker = self.master.trackers.get(MAIN_LOOP)
        if tracker is None or not tracker.started or not tracker.converged:
            return False
        if self.kernel.parked_count or self.kernel.ready_count:
            return False
        return (self.master.transport.unacked == 0
                and self.ingester.transport.unacked == 0)

    def run_until_converged(self, timeout: float = 120.0) -> float:
        """Pump until the main loop converges (same evidence as the
        simulator: tracker watermarks, unacked and buffered counts).
        Returns the wall-clock seconds spent.  Raises ``TimeoutError``
        with diagnostics if convergence is not reached in time."""
        started = time.monotonic()
        deadline = started + timeout
        idle_confirmations = 0
        while True:
            self._check_workers()
            if self._pump_once():
                idle_confirmations = 0
                continue
            if not self.kernel.ready_count and self.kernel.parked_count:
                self.kernel.release_parked()
                continue
            if self._converged():
                idle_confirmations += 1
                if idle_confirmations >= IDLE_CONFIRMATIONS:
                    return time.monotonic() - started
            else:
                idle_confirmations = 0
            if time.monotonic() >= deadline:
                tracker = self.master.trackers.get(MAIN_LOOP)
                raise TimeoutError(
                    "live run did not converge within "
                    f"{timeout:.0f}s (tracker started="
                    f"{getattr(tracker, 'started', None)}, parked="
                    f"{self.kernel.parked_count}, master unacked="
                    f"{self.master.transport.unacked}, ingester unacked="
                    f"{self.ingester.transport.unacked})")
            time.sleep(0.002)

    def pump_slice(self, passes: int = 64) -> int:
        """Bounded pump slice for a JobManager interleaving several live
        tenants: up to ``passes`` pump passes, stopping early when idle
        (parked feeds are released once, then the slice yields).  Returns
        the number of passes that did work."""
        worked = 0
        released = False
        for _ in range(passes):
            self._check_workers()
            if self._pump_once():
                worked += 1
                continue
            if (not released and not self.kernel.ready_count
                    and self.kernel.parked_count):
                self.kernel.release_parked()
                released = True
                continue
            break
        return worked

    @property
    def converged(self) -> bool:
        """Whether the main loop currently reads as converged (the same
        evidence :meth:`run_until_converged` confirms over several idle
        passes — a manager should see this hold across slices)."""
        return self._converged()

    def pump_for(self, seconds: float) -> None:
        """Pump the deployment for a wall-clock duration (the live
        analogue of ``run_for`` — used to get a run mid-flight before
        injecting a fault)."""
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            self._check_workers()
            if self._pump_once():
                continue
            if not self.kernel.ready_count and self.kernel.parked_count:
                self.kernel.release_parked()
                continue
            time.sleep(0.002)

    # ------------------------------------------------------------- feeding
    def feed(self, tuples: Iterable[StreamTuple]) -> int:
        return self.ingester.schedule_stream(tuples)

    # ----------------------------------------------------- sim-API surface
    def run(self, until: float | None = None) -> float:
        if until is not None:
            raise SimulationError(
                "backend='live' has no virtual clock; use "
                "run_until_converged() or pump_for()")
        return self.run_until_converged()

    def run_for(self, duration: float) -> float:
        self.pump_for(duration)
        return self.kernel.now

    def run_until(self, predicate: Callable[[], bool],
                  max_events: int = 50_000_000) -> float:
        raise SimulationError(
            "backend='live' has no virtual clock; use "
            "run_until_converged() or pump_for()")

    def run_until_quiescent(self, extra: float = 0.0) -> float:
        self.run_until_converged()
        if extra:
            self.pump_for(extra)
        return self.kernel.now

    def query(self, full_activation: bool = False) -> int:
        raise QueryError(
            "branch-loop queries are not supported on backend='live' yet"
            " (see DESIGN.md §3h)")

    query_and_wait = query

    def wait_for_query(self, query_id: int,
                       max_events: int = 50_000_000):
        raise QueryError(
            "branch-loop queries are not supported on backend='live' yet")

    def endpoints(self) -> list:
        return [self.master.transport, self.ingester.transport]

    # ----------------------------------------------------------- finalizing
    def finalize(self, timeout: float = 30.0) -> dict[str, FinalReport]:
        """Collect barrier: ask every live worker for its final report
        (in-memory values, loop totals, trace phase counts)."""
        self.reports = {}
        wanted = {name for name, link in self._links.items() if link.alive}
        for name in wanted:
            self._links[name].queue_in.put(Collect())
        deadline = time.monotonic() + timeout
        while wanted - set(self.reports):
            self._check_workers()
            if time.monotonic() >= deadline:
                missing = sorted(wanted - set(self.reports))
                raise TimeoutError(f"no FinalReport from {missing}")
            if not self._pump_once():
                time.sleep(0.002)
        return self.reports

    def main_values(self) -> dict[Any, Any]:
        if not self.reports:
            self.finalize()
        merged: dict[Any, Any] = {}
        for report in self.reports.values():
            for vertex_id, value in report.main_values:
                merged[vertex_id] = value
        # Same fallback as the simulator job: vertices whose owner died
        # and whose state only survives in the (master's) store.
        for vertex_id, (value, _targets) in self.store.snapshot(
                MAIN_LOOP, internal=True).items():
            if vertex_id not in merged:
                merged[vertex_id] = value
        return merged

    def loop_totals(self, loop: str) -> dict[str, int]:
        if not self.reports:
            self.finalize()
        totals = {"commits": 0, "sent": 0, "gathered": 0, "prepares": 0}
        for report in self.reports.values():
            for name, entry in report.loop_totals:
                if name != loop:
                    continue
                totals["commits"] += entry[0]
                totals["sent"] += entry[1]
                totals["gathered"] += entry[2]
                totals["prepares"] += entry[3]
        return totals

    @property
    def total_commits(self) -> int:
        return self._total_index(0)

    @property
    def total_prepares(self) -> int:
        return self._total_index(3)

    @property
    def total_updates_gathered(self) -> int:
        return self._total_index(2)

    def _total_index(self, index: int) -> int:
        if not self.reports:
            self.finalize()
        return sum(entry[index] for report in self.reports.values()
                   for _name, entry in report.loop_totals)

    def wire_rows(self) -> int:
        """Column rows packed or fast-gathered across all workers under
        ``columnar_wire`` — the bench's proof the live regime engaged
        (0 with the gate off)."""
        if not self.reports:
            self.finalize()
        return sum(report.wire_rows for report in self.reports.values())

    def trace_phase_counts(self) -> dict[str, int]:
        """Protocol-phase totals merged across the master recorder and
        every worker's final report — the live side of the oracle."""
        if not self.reports:
            self.finalize()
        merged = dict(self.kernel.trace.phase_counts())
        for report in self.reports.values():
            for key, count in report.trace_counts:
                merged[key] = merged.get(key, 0) + count
        return dict(sorted(merged.items()))

    def main_frontier(self) -> int:
        tracker = self.master.trackers.get(MAIN_LOOP)
        return tracker.frontier if tracker is not None else 0

    # ------------------------------------------------------------- shutdown
    def shutdown(self) -> None:
        """Stop every worker process and release the queues.  Idempotent;
        also registered with ``atexit`` so an aborted test run cannot
        leak orphan processes."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.shutdown)
        for link in self._links.values():
            if link.alive:
                try:
                    link.queue_in.put_nowait(Shutdown())
                except (ValueError, OSError):
                    pass
        for link in self._links.values():
            link.process.join(timeout=5)
            if link.process.exitcode is None:
                link.process.kill()
                link.process.join(timeout=5)
            for q in (link.queue_in, link.queue_out):
                try:
                    q.close()
                    q.cancel_join_thread()
                except (ValueError, OSError):
                    pass

    close = shutdown

    def __enter__(self) -> "LiveJob":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
