"""A Simulator facade for real-time execution.

The Tornado runtime (``Actor``, ``Processor``, ``ReliableEndpoint``) only
asks four things of its kernel: schedule work, schedule timers, read a
clock, and reach the shared trace/metrics/random sinks.
:class:`LiveKernel` satisfies that interface without a virtual-time event
queue:

* :meth:`schedule` appends to a ready FIFO — the ``delay`` argument is a
  virtual-time *cost* in the simulator and has no wall-clock meaning
  here, so ready work runs as fast as the host allows;
* :meth:`schedule_timer` arms a wall-clock deadline (``time.monotonic``)
  — retransmit timeouts and report ticks become real timeouts;
* :meth:`schedule_at` parks the callback on a virtual-timestamp heap;
  the driver releases parked work when the process is otherwise idle
  (stream feeds "fast-forward" instead of waiting out virtual time);
* :attr:`now` is a Lamport counter merged across processes by the wire
  stamps (:meth:`tick` on send, :meth:`observe` on receipt), so trace
  events carry a causally consistent virtual order — never wall time.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.obs import MetricsRegistry, TraceRecorder
from repro.simulator.randomness import RandomStreams

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.actors import Actor


class _Handle:
    """Cancellable scheduled-work handle (the live analogue of the
    simulator's ``Event``/``Timer``)."""

    __slots__ = ("callback", "args", "cancelled")

    def __init__(self, callback: Callable[..., Any], args: tuple) -> None:
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class LiveKernel:
    """Drop-in kernel for actors running under real time."""

    fast_path = False

    def __init__(self, seed: int = 0,
                 recorder: TraceRecorder | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self._counter = 0
        self._ready: deque[_Handle] = deque()
        self._timers: list[tuple[float, int, _Handle]] = []
        self._parked: list[tuple[float, int, _Handle]] = []
        self._seq = itertools.count()
        self.actors: dict[str, "Actor"] = {}
        self.random = RandomStreams(seed)
        self.trace = (recorder if recorder is not None
                      else TraceRecorder(enabled=False))
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._events_processed = 0

    # ----------------------------------------------------------- the clock
    @property
    def now(self) -> float:
        """Lamport counter as a float — a causal virtual clock, not wall
        time.  Trace events and protocol bookkeeping stamp with this."""
        return float(self._counter)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def tick(self) -> int:
        """Advance the clock for a send; returns the wire stamp."""
        self._counter += 1
        return self._counter

    def observe(self, stamp: int) -> None:
        """Merge a received wire stamp (Lamport max-merge + step)."""
        if stamp > self._counter:
            self._counter = stamp
        self._counter += 1

    # ----------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> _Handle:
        """Run ``callback`` as soon as possible; ``delay`` is a virtual
        cost and is deliberately ignored."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        handle = _Handle(callback, args)
        self._ready.append(handle)
        return handle

    def schedule_message(self, delay: float, callback: Callable[..., Any],
                         *args: Any) -> _Handle:
        return self.schedule(delay, callback, *args)

    def schedule_timer(self, delay: float, callback: Callable[..., Any],
                       *args: Any) -> _Handle:
        """Arm a *wall-clock* timeout: virtual seconds map 1:1 to real
        seconds for timers (retransmits, report ticks)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        handle = _Handle(callback, args)
        heapq.heappush(self._timers,
                       (time.monotonic() + delay, next(self._seq), handle))
        return handle

    def schedule_at(self, when: float, callback: Callable[..., Any],
                    *args: Any) -> _Handle:
        """Park work stamped with a virtual timestamp (stream feeds).  The
        driver releases parked work in timestamp order when idle."""
        handle = _Handle(callback, args)
        heapq.heappush(self._parked, (when, next(self._seq), handle))
        return handle

    # -------------------------------------------------------------- actors
    def register(self, actor: "Actor") -> None:
        if actor.name in self.actors:
            raise SimulationError(f"duplicate actor name: {actor.name!r}")
        self.actors[actor.name] = actor

    def actor(self, name: str) -> "Actor":
        try:
            return self.actors[name]
        except KeyError:
            raise SimulationError(f"unknown actor: {name!r}") from None

    # ------------------------------------------------------------- running
    def run_ready(self, limit: int | None = None) -> int:
        """Drain the ready FIFO (bounded by ``limit`` so callers can
        interleave queue polls); returns callbacks run."""
        done = 0
        while self._ready:
            handle = self._ready.popleft()
            if handle.cancelled:
                continue
            self._counter += 1
            self._events_processed += 1
            handle.callback(*handle.args)
            done += 1
            if limit is not None and done >= limit:
                break
        return done

    def fire_due_timers(self) -> int:
        """Run every timer whose wall-clock deadline has passed."""
        done = 0
        now = time.monotonic()
        while self._timers and self._timers[0][0] <= now:
            _deadline, _seq, handle = heapq.heappop(self._timers)
            if handle.cancelled:
                continue
            self._counter += 1
            self._events_processed += 1
            handle.callback(*handle.args)
            done += 1
        return done

    def next_timer_delay(self) -> float | None:
        """Seconds until the earliest live timer (None if no timers)."""
        while self._timers and self._timers[0][2].cancelled:
            heapq.heappop(self._timers)
        if not self._timers:
            return None
        return max(0.0, self._timers[0][0] - time.monotonic())

    def release_parked(self) -> int:
        """Fast-forward: move all parked work to the ready FIFO in
        timestamp order.  Called by the driver once the system is idle —
        there is no virtual clock to wait out."""
        released = 0
        while self._parked:
            _when, _seq, handle = heapq.heappop(self._parked)
            if handle.cancelled:
                continue
            self._ready.append(handle)
            released += 1
        return released

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    @property
    def parked_count(self) -> int:
        return sum(1 for _w, _s, handle in self._parked
                   if not handle.cancelled)

    @property
    def pending_events(self) -> int:
        return (len(self._ready) + len(self._timers)
                + len(self._parked))
