"""Worker-local storage with write-behind shipping to the master.

In the simulator every processor writes into one shared
:class:`VersionedStore` object.  A live worker cannot: its store dies
with its process.  So each worker keeps a local :class:`WorkerStore`
(same semantics, used for all its own reads — fork snapshots, recovery
walks, branch materialisation touch only vertices the worker owns and
therefore wrote itself) and journals every put.  :class:`LiveBackend`
ships the journal to the master as a :class:`~repro.live.wire.StoreWrite`
at flush time, *before* the progress reports of the same flush — the
queues are FIFO, so the master's manifest always records a flush before
it sees the progress that depends on it (the paper's durability
invariant, preserved across the process boundary).

Version writes are idempotent (keyed by iteration), so a StoreWrite from
a worker that later crashed is harmless: re-applied versions overwrite
themselves, and the max-iteration read discipline picks the newest.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.storage.backends import StorageBackend
from repro.storage.versioned import VersionedStore


def _native(value: Any) -> Any:
    """Unbox 0-d numpy scalars so journal entries pickle as plain
    Python values (wire frames must not require numpy to unpickle)."""
    if getattr(value, "ndim", None) == 0 and hasattr(value, "item"):
        return value.item()
    return value


class WorkerStore(VersionedStore):
    """A VersionedStore that journals every write for shipping."""

    def __init__(self, delta_path: bool = True, columnar: bool = False,
                 rebase_interval: int | None = None,
                 snapshot_cache_size: int | None = None) -> None:
        super().__init__(delta_path=delta_path, columnar=columnar,
                         rebase_interval=rebase_interval,
                         snapshot_cache_size=snapshot_cache_size)
        self._journal: list[tuple[str, Any, int, Any]] = []
        self._recording = True

    def put(self, loop: str, key: Any, iteration: int, value: Any) -> None:
        super().put(loop, key, iteration, value)
        if self._recording:
            self._journal.append((loop, key, iteration, value))

    def put_many(self, loop: str,
                 items: Iterable[tuple[Any, int, Any]]) -> int:
        items = list(items)
        count = super().put_many(loop, items)
        if self._recording:
            self._journal.extend((loop, key, iteration, value)
                                 for key, iteration, value in items)
        return count

    def put_columns(self, loop: str, keys: Any, iterations: Any,
                    values: Any) -> int:
        count = super().put_columns(loop, keys, iterations, values)
        if self._recording and count:
            # Journal element-wise into the single ordered log; flush
            # time re-coalesces runs into column slabs (take_slabs), so
            # interleaved scalar puts keep their last-write-wins order.
            if getattr(iterations, "ndim", None) == 0:
                iterations = int(iterations)
            if isinstance(iterations, int):
                iterations = [iterations] * count
            self._journal.extend(
                (loop, _native(key), int(iteration), _native(value))
                for key, iteration, value
                in zip(keys, iterations, values))
        return count

    def take_journal(self) -> list[tuple[str, Any, int, Any]]:
        journal = self._journal
        self._journal = []
        return journal

    def take_slabs(self) -> list[tuple[str, tuple, tuple, tuple]]:
        """Drain the journal as column slabs: maximal same-loop runs of
        entries become ``(loop, keys, iterations, values)`` frames, in
        journal order — the master replays each with ``put_columns`` and
        gets exactly the state a scalar replay would build."""
        journal = self.take_journal()
        slabs: list[tuple[str, tuple, tuple, tuple]] = []
        index = 0
        while index < len(journal):
            loop = journal[index][0]
            run = index
            while run < len(journal) and journal[run][0] == loop:
                run += 1
            chunk = journal[index:run]
            slabs.append((loop,
                          tuple(entry[1] for entry in chunk),
                          tuple(entry[2] for entry in chunk),
                          tuple(entry[3] for entry in chunk)))
            index = run
        return slabs

    def hydrate(self, entries: Iterable[tuple[str, Any, int, Any]]) -> int:
        """Re-seed from a master :class:`StoreLoad` dump without
        journaling (the master already has these versions)."""
        self._recording = False
        count = 0
        try:
            for loop, key, iteration, value in entries:
                super().put(loop, key, iteration, value)
                count += 1
        finally:
            self._recording = True
        return count


class LiveBackend(StorageBackend):
    """StorageBackend whose durability is the master's store.

    ``flush`` ships the journal as a StoreWrite control frame and
    completes synchronously: once the frame is on the FIFO queue it is
    ordered before everything the worker sends afterwards, which is the
    only property the runtime's flush-before-report discipline needs.
    """

    def __init__(self, store: WorkerStore, net: Any, owner: str) -> None:
        self.store = store
        self.net = net
        self.owner = owner
        self.flushes = 0
        self.records_flushed = 0

    def flush(self, n_records: int, callback: Any, *args: Any) -> None:
        from repro.live.wire import StoreWrite

        # Columnar workers ship the journal as column slabs (one frame
        # entry per same-loop run) so the master can replay whole runs
        # through vectorized put_columns; entries and slabs are mutually
        # exclusive on a frame.
        if self.store.columnar:
            entries: tuple = ()
            slabs = tuple(self.store.take_slabs())
            records = sum(len(slab[1]) for slab in slabs)
        else:
            entries = tuple(self.store.take_journal())
            slabs = ()
            records = len(entries)
        # The processor passes (snapshots, frontiers) through the flush;
        # the frontiers ride the StoreWrite so the *master* can record
        # the durable-iteration manifest the simulator's processors wrote
        # into shared memory.
        frontiers = args[1] if len(args) > 1 else ()
        self.flushes += 1
        self.records_flushed += records
        if entries or slabs or frontiers:
            self.net.send_control(StoreWrite(
                self.owner, self.flushes, entries,
                tuple(frontiers), slabs))
        callback(*args)

    def read(self, n_records: int, callback: Any, *args: Any) -> None:
        callback(*args)
