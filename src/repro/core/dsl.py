"""A small declarative layer over the vertex API (paper §8 sketches a
high-level language as future work).

Most propagation-style graph analyses fit one algebraic shape: every vertex
keeps, per producer, the best *offer* received along that edge; its value is
a combination of those slots; committing sends ``extend(value, weight)``
along each out-edge; retractions send the algebra's *bottom* ("no offer").
:class:`AlgebraicProgram` implements that shape once — with full support
for evolving, retractable edge streams — and a workload is just an
:class:`Algebra`:

>>> sssp = shortest_paths("s")              # min-plus
>>> reach = reachability("s")               # boolean or
>>> widest = widest_path("s")               # max-min bottleneck
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.vertex import VertexContext, VertexProgram, replace_update
from repro.streams.model import ADD_EDGE, REMOVE_EDGE


@dataclass(frozen=True)
class VectorSpec:
    """Numpy-free *description* of an algebra's arithmetic, declared so
    the columnar engine (:mod:`repro.core.columnar`) can interpret the
    algebra with numpy kernels: the slot reduction becomes an array
    reduce in the processor's gather, and whole-graph sweeps become
    ``np.minimum.at`` / ``bincount`` passes in the bulk engine.  The
    spec carries only strings and plain values — declaring one does not
    import numpy, so the DSL stays usable without the columnar path.

    Attributes
    ----------
    reduce:
        Slot reduction: ``"min"``, ``"max"`` or ``"any"`` (kernelised by
        the columnar engine).  Other reductions — e.g. ``"sum"`` — may
        still be declared: they get no gather kernel, but the columnar
        *wire* pack (``TornadoConfig.columnar_wire``) only consults the
        spec's ``dtype`` and works for any reduce.
    extend:
        Edge transform for bulk sweeps: ``"add"`` (value + weight),
        ``"copy"`` (value unchanged) or ``"min"`` (min(value, weight)).
    dtype:
        Value column dtype: ``"float64"``, ``"bool"`` or ``"int64"``.
    source / source_value:
        Optional pinned vertex (e.g. the SSSP root) and its fixed value.
    empty:
        The combined value of a vertex with no offers.
    cap:
        Optional upper bound: a reduced value ≥ cap collapses to
        ``empty`` (SSSP's ``max_distance``).
    include_self:
        Include the vertex id itself in the reduction (min-label).
    """

    reduce: str
    extend: str
    dtype: str = "float64"
    source: Any = None
    source_value: Any = None
    empty: Any = None
    cap: float | None = None
    include_self: bool = False


@dataclass(frozen=True)
class Algebra:
    """Declarative specification of a slot-combining graph computation.

    Attributes
    ----------
    bottom:
        The "no information" value; sending it retracts an offer.
    combine:
        ``(vertex_id, slots) -> value`` — recompute a vertex's value from
        its per-producer offers (the root case lives in this closure).
    extend:
        ``(value, weight) -> offer`` — transform a value along an edge.
    changed:
        Equality escape hatch, e.g. tolerance comparisons.
    combine_updates:
        Optional associative ``(older, newer) -> merged`` combiner the
        delta path applies to same-``(producer, consumer)`` offers that
        share a dispatch window.  Slot-replacement semantics make
        last-wins (:func:`repro.core.vertex.replace_update`) sound for
        every algebra; ``None`` keeps batching without merging.
    vector_spec:
        Optional :class:`VectorSpec` — the numpy-interpretable variant
        of ``combine``/``extend`` the columnar engine swaps in when
        ``TornadoConfig.columnar`` is on.  Must compute bit-identical
        values to the scalar closures (the digest oracle checks it).
    """

    bottom: Any
    combine: Callable[[Any, dict], Any]
    extend: Callable[[Any, float], Any]
    changed: Callable[[Any, Any], bool] = lambda old, new: old != new
    combine_updates: Callable[[Any, Any], Any] | None = None
    vector_spec: VectorSpec | None = None


@dataclass
class AlgebraicValue:
    value: Any
    slots: dict
    edge_weights: dict
    retracted: set


class AlgebraicProgram(VertexProgram):
    """Generic vertex program executing an :class:`Algebra`."""

    def __init__(self, algebra: Algebra) -> None:
        self.algebra = algebra
        self.update_combiner = algebra.combine_updates
        self.vector_spec = algebra.vector_spec
        #: The combine actually called by :meth:`gather`; swapped for a
        #: numpy kernel by :meth:`enable_columnar_kernels`.
        self._combine = algebra.combine

    def enable_columnar_kernels(self) -> bool:
        """Swap in the numpy interpretation of the algebra (processors
        call this when ``TornadoConfig.columnar`` is on).  Idempotent;
        returns whether a kernel is active.  No-op — scalar combine
        stays — when the algebra declares no :class:`VectorSpec`."""
        if self._combine is not self.algebra.combine:
            return True
        from repro.core.columnar import make_combine_kernel

        kernel = make_combine_kernel(self.algebra)
        if kernel is None:
            return False
        self._combine = kernel
        return True

    def init(self, ctx: VertexContext) -> None:
        value = self.algebra.combine(ctx.vertex_id, {})
        ctx.value = AlgebraicValue(value, {}, {}, set())

    def gather(self, ctx: VertexContext, source: Any, delta: Any) -> bool:
        state: AlgebraicValue = ctx.value
        if source is None:
            return self._gather_input(ctx, state, delta)
        if delta == self.algebra.bottom:
            state.slots.pop(source, None)
        else:
            state.slots[source] = delta
        new_value = self._combine(ctx.vertex_id, state.slots)
        if self.algebra.changed(state.value, new_value):
            state.value = new_value
            return True
        return False

    def _gather_input(self, ctx: VertexContext, state: AlgebraicValue,
                      delta: Any) -> bool:
        u, v, w = (delta.payload if len(delta.payload) == 3
                   else (*delta.payload, 1.0))
        del u
        if delta.kind == ADD_EDGE:
            ctx.add_target(v)
            state.edge_weights[v] = float(w)
            state.retracted.discard(v)
            return state.value != self.algebra.bottom
        if delta.kind == REMOVE_EDGE:
            ctx.remove_target(v)
            state.edge_weights.pop(v, None)
            state.retracted.add(v)
            return True
        return False

    def scatter(self, ctx: VertexContext) -> None:
        state: AlgebraicValue = ctx.value
        for target in state.retracted:
            ctx.emit(target, self.algebra.bottom)
        state.retracted = set()
        for target in ctx.targets:
            if state.value == self.algebra.bottom:
                ctx.emit(target, self.algebra.bottom)
            else:
                weight = state.edge_weights.get(target, 1.0)
                ctx.emit(target, self.algebra.extend(state.value, weight))

    def snapshot_value(self, value: AlgebraicValue) -> AlgebraicValue:
        return AlgebraicValue(value.value, dict(value.slots),
                              dict(value.edge_weights),
                              set(value.retracted))


# ------------------------------------------------------------- factories
def shortest_paths(source: Any,
                   max_distance: float = float("inf")) -> AlgebraicProgram:
    """Min-plus: distance = min over offers; DSL twin of SSSPProgram."""
    inf = float("inf")

    def combine(vertex_id: Any, slots: dict) -> float:
        if vertex_id == source:
            return 0.0
        best = min(slots.values(), default=inf)
        return best if best < max_distance else inf

    return AlgebraicProgram(Algebra(
        bottom=inf,
        combine=combine,
        extend=lambda value, weight: value + weight,
        combine_updates=replace_update,
        vector_spec=VectorSpec(reduce="min", extend="add",
                               dtype="float64", source=source,
                               source_value=0.0, empty=inf,
                               cap=max_distance),
    ))


def reachability(source: Any) -> AlgebraicProgram:
    """Boolean-or: which vertices does the source reach?"""

    def combine(vertex_id: Any, slots: dict) -> bool:
        return vertex_id == source or any(slots.values())

    return AlgebraicProgram(Algebra(
        bottom=False,
        combine=combine,
        extend=lambda value, weight: value,
        combine_updates=replace_update,
        vector_spec=VectorSpec(reduce="any", extend="copy", dtype="bool",
                               source=source, source_value=True,
                               empty=False),
    ))


def widest_path(source: Any) -> AlgebraicProgram:
    """Max-min: the bottleneck bandwidth of the best path from the
    source (a new workload the DSL gives for free)."""
    inf = float("inf")

    def combine(vertex_id: Any, slots: dict) -> float:
        if vertex_id == source:
            return inf
        return max(slots.values(), default=0.0)

    return AlgebraicProgram(Algebra(
        bottom=0.0,
        combine=combine,
        extend=lambda value, weight: min(value, weight),
        combine_updates=replace_update,
        vector_spec=VectorSpec(reduce="max", extend="min",
                               dtype="float64", source=source,
                               source_value=inf, empty=0.0),
    ))


def min_label() -> AlgebraicProgram:
    """Min-label propagation (connected components on an undirected
    router); labels are vertex ids."""

    def combine(vertex_id: Any, slots: dict) -> Any:
        candidates = list(slots.values()) + [vertex_id]
        return min(candidates)

    return AlgebraicProgram(Algebra(
        bottom=None,
        combine=combine,
        extend=lambda value, weight: value,
        combine_updates=replace_update,
        # Labels are vertex ids; the int64 kernel fires on integer ids
        # and falls back to the scalar combine for e.g. string ids.
        vector_spec=VectorSpec(reduce="min", extend="copy",
                               dtype="int64", include_self=True),
    ))
