"""The processor: Tornado's session layer (paper §5.1).

A processor is one worker thread.  It hosts the vertices assigned to it by
the partition scheme, one copy per loop (main + forked branches), and drives
the three-phase update protocol for each of them.  It enforces the delay
bound by buffering updates that ran too far ahead, flushes committed
versions to the storage backend before reporting progress (which is what
makes every terminated iteration a checkpoint), and rebuilds itself from
the last terminated iteration after a crash.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any

from repro.core.config import TornadoConfig
from repro.core.lamport import LamportClock
from repro.core.messages import (MAIN_LOOP, Acknowledge, ColumnBatch,
                                 Envelope, ForkBranch, IterationTerminated,
                                 MergeBranch, MigrateDone, MigrateState,
                                 PeerRecovered, Prepare,
                                 ProcessorRecovered, ProgressReport,
                                 RecoverLoops, ReleasedUpdate, Repartition,
                                 SessionBatch, StopLoop, Unreliable,
                                 VertexInput, VertexUpdate)
from repro.core.partition import PartitionScheme
from repro.core.protocol import (CommitUpdate, SendAck, SendPrepare,
                                 VertexProtocol)
from repro.core.transport import ReliableEndpoint
from repro.core.vertex import (Application, Delta, VertexContext,
                               VertexProgram, VertexState)
from repro.simulator import Actor, Network, Simulator
from repro.storage import (CheckpointManifest, StorageBackend,
                           VersionedStore)

#: Wire-packable value types per declared VectorSpec dtype.  Strict
#: ``type() is`` matching keeps bool out of the int64 column (bool is an
#: int subclass) and numpy scalars out entirely, so the column runs stay
#: numpy-free and pickle without the columnar dependency.
WIRE_PACK_TYPES = {"float64": float, "bool": bool, "int64": int}


class LoopState:
    """Everything a processor keeps for one loop."""

    def __init__(self, name: str, is_main: bool) -> None:
        self.name = name
        self.is_main = is_main
        self.vertices: dict[Any, VertexState] = {}
        self.protocols: dict[Any, VertexProtocol] = {}
        # First iteration not yet terminated, as last heard from the master.
        self.frontier = 0
        # iteration -> [commits, sent, gathered]; cumulative.
        self.counters: dict[int, list[int]] = {}
        self.inputs_gathered = 0
        self.prepares_recorded = 0
        self.commits_total = 0
        self.sent_total = 0
        self.gathered_total = 0
        # Updates blocked by the delay bound, keyed by their iteration.
        self.buffered_updates: list[tuple[int, int, VertexUpdate]] = []
        # Delta path: (producer, consumer) pairs with updates released
        # from the delay buffer but not yet re-applied out of the inbox.
        # While a pair is listed, later arrivals for it must park behind
        # the in-flight release — an inline apply would overtake it and
        # let the older offer replay last.  (Updates still *in* the heap
        # need no such guard: a parked head implies its iteration is at
        # or above the bound, so any equal-or-newer same-pair arrival
        # parks on iteration grounds anyway, and an older one may safely
        # apply first.)
        self.released_pairs: dict[tuple[Any, Any], int] = {}
        # Inputs deferred while their vertex prepares (paper §4.2).
        self.buffered_inputs: dict[Any, list[VertexInput]] = {}
        # Highest iteration any local vertex of this loop committed at.
        self.highest_commit = -1
        # Whether a ForkBranch actually ran here.  Recovery may rebuild a
        # branch as a checkpoint shell first; a later (re-sent) fork must
        # then merge into it rather than treat it as a duplicate.
        self.forked = False
        # Vertices touched (input or commit) since the last branch fork.
        self.changed_since_fork: set[Any] = set()
        # Per-vertex commits since the last progress report (load stats).
        self.recent_commit_counts: dict[Any, int] = {}
        # Per-vertex gathers (inputs + updates) since the last report:
        # the migration planner's message-volume signal.
        self.recent_gather_counts: dict[Any, int] = {}
        self.pending_flush = 0
        self._buffer_seq = itertools.count()

    def counter(self, iteration: int) -> list[int]:
        entry = self.counters.get(iteration)
        if entry is None:
            entry = self.counters[iteration] = [0, 0, 0]
        return entry

    def prune_counters(self) -> None:
        """Drop counters no termination decision can look at again."""
        floor = self.frontier - 1
        for iteration in [k for k in self.counters if k < floor]:
            del self.counters[iteration]

    def watermark(self) -> float:
        """Lowest iteration with local pending vertex work."""
        pending = [p.iteration for p in self.protocols.values()
                   if p.has_pending_work()]
        return min(pending) if pending else math.inf


class Processor(Actor):
    """One simulated worker executing the Tornado iteration model."""

    def __init__(self, sim: Simulator, name: str, config: TornadoConfig,
                 app: Application, partition: PartitionScheme,
                 store: VersionedStore, backend: StorageBackend,
                 network: Network, master_name: str,
                 manifest: CheckpointManifest | None = None) -> None:
        super().__init__(sim, name)
        self.config = config
        self.app = app
        self.partition = partition
        self.store = store
        self.backend = backend
        # Shared-database checkpoint manifest: flush completions record the
        # per-processor durable frontier here (paper §5.3).
        self.manifest = manifest
        self.network = network
        self.master_name = master_name
        self.clock = LamportClock(name)
        self.transport = ReliableEndpoint(
            sim, network, name, timeout=config.retransmit_timeout)
        self.loops: dict[str, LoopState] = {MAIN_LOOP: LoopState(MAIN_LOOP,
                                                                 True)}
        # Session messages for loops whose fork has not arrived yet.
        self._orphans: dict[str, list[Any]] = {}
        # Totals of stopped loops: loop -> (commits, sent, gathered,
        # prepares).
        self.loop_archive: dict[str, tuple[int, int, int, int]] = {}
        self._report_seq = 0
        self._report_timer_running = False
        self._flush_in_flight = False
        self._work_since_report = True
        self.total_commits = 0
        self.total_updates_gathered = 0
        self.total_prepares = 0
        # Shared observability sinks (see repro.obs): instruments are
        # cached here so the hot paths pay one attribute load + call.
        self._trace = sim.trace
        metrics = sim.metrics
        self._m_updates = metrics.counter("core.updates_gathered")
        self._m_prepares = metrics.counter("core.prepares_sent")
        self._m_acks = metrics.counter("core.acks_sent")
        self._m_commits = metrics.counter("core.commits")
        self._m_flushes = metrics.counter("core.checkpoint_flushes")
        self._g_delay_buffer = metrics.gauge(f"core.{name}.delay_buffer")
        # ------------------------------------------------- live migration
        # Vertices migrating out: vertex -> (epoch, target).  Session
        # traffic for them is fenced here (handled locally, not forwarded)
        # until the vertex is released.
        self._outbound: dict[Any, tuple[int, str]] = {}
        # Vertices migrating in: vertex -> (epoch, source).  Gathers for
        # them are buffered until the source's MigrateState arrives; ACKs
        # are forwarded back to the source (the producer's in-flight
        # preparation still lives there).
        self._inbound: dict[Any, tuple[int, str]] = {}
        self._migration_buffer: dict[Any, list[Any]] = {}
        # Highest partition epoch applied; older Repartition notices are
        # fenced out.
        self._partition_epoch = 0
        self._m_migrated = metrics.counter("core.vertices_migrated")
        self._g_migrating = metrics.gauge(f"core.{name}.migrating")
        # ------------------------------------------------------ delta path
        # Sender-side session window: all outbound session traffic of one
        # dispatch (committed updates, PREPAREs, ACKs) buffered per loop
        # as one ordered entry list, then flushed at the end of the
        # dispatch as one envelope per destination processor.  Because
        # the window preserves the original send order end to end,
        # per-link protocol ordering (an update may never be overtaken
        # by the next round's PREPARE, scatters precede pended ACKs)
        # holds by construction — no special-case flushes needed.  With a
        # program-declared associative combiner, same-(producer,
        # consumer) scatters in one window merge into a single update at
        # the merged (max) iteration; the ``index`` map points at the
        # latest update cell per pair.
        self._delta_scatter = config.delta_path
        self._combiner = (app.program.update_combiner
                          if config.delta_path else None)
        self._session_window: dict[str, tuple[list, dict]] = {}
        self._m_scatter_buffered = metrics.counter("core.scatter_buffered")
        self._m_scatter_batches = metrics.counter("core.scatter_batches")
        self._m_scatter_batched = metrics.counter(
            "core.scatter_batched_updates")
        self._m_scatter_merged = metrics.counter("core.scatter_merged")
        self._m_scatter_stale = metrics.counter("core.scatter_stale_skipped")
        self._m_envelopes_saved = metrics.counter(
            "core.scatter_envelopes_saved")
        # ------------------------------------------------- columnar wire
        # With ``columnar_wire`` on, updates whose value type matches the
        # program's declared VectorSpec dtype leave the window flush as
        # typed column runs inside one ColumnBatch per destination;
        # control messages and unconvertible values ride along inline in
        # their original send order.  The receive side gathers column
        # rows through a batched fast path whose effects — trace events,
        # counter charges, virtual-time costs — are byte-identical to
        # dispatching the equivalent SessionBatch (the digest oracle).
        spec = getattr(app.program, "vector_spec", None)
        self._wire_type = (WIRE_PACK_TYPES.get(spec.dtype)
                           if spec is not None else None)
        self._wire_pack = bool(config.columnar_wire and config.delta_path
                               and self._wire_type is not None)
        # The row fast path may skip the per-row gather_cost call only
        # while the program keeps the base-class default (always None).
        self._static_gather_cost = (type(app.program).gather_cost
                                    is VertexProgram.gather_cost)
        self._m_wire_batches = metrics.counter("core.wire_batches")
        self._m_wire_rows = metrics.counter("core.wire_packed_rows")
        self._m_wire_fallback = metrics.counter("core.wire_fallback")
        self._m_wire_row_gathers = metrics.counter("core.wire_row_gathers")
        # Session-window buffer pool (flush-path allocation churn): the
        # window dict and its per-loop (entries, index) pairs are cleared
        # and reused across flushes instead of reallocated per dispatch.
        self._window_pool: list[tuple[list, dict]] = []
        self._spare_window: dict | None = None
        self._m_window_reuse = metrics.counter("core.window_reuse")
        # --------------------------------------------------- columnar path
        # With ``columnar`` on, programs that declare a vector spec swap
        # their slot reduction for the exact numpy kernel.  Protocol
        # event order, changed flags and traces are untouched (they are
        # digest-visible); only the arithmetic inside gather vectorizes.
        self._vector_kernel = False
        if config.columnar:
            enable = getattr(app.program, "enable_columnar_kernels", None)
            if enable is not None:
                self._vector_kernel = bool(enable())
        self._m_vector_gathers = metrics.counter("core.vector_gathers")
        self._m_vector_windows = metrics.counter("core.vector_windows")
        self._g_store_cache_hits = metrics.gauge("storage.cache_hits")
        self._g_store_cache_misses = metrics.gauge("storage.cache_misses")
        self._g_store_rebases = metrics.gauge("storage.rebases")
        self._g_store_internal_reads = metrics.gauge(
            "storage.internal_reads")

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        self._report_timer_running = True
        self.sim.schedule_timer(self.config.report_interval,
                                self._report_tick)

    # ------------------------------------------------------------ dispatch
    def classify(self, message: Any) -> int:
        """Branch-loop traffic preempts main-loop backlog: the paper runs
        branch loops on otherwise-idle processors, so query work should
        not queue behind the continuous approximation work."""
        payload = message
        if isinstance(payload, Envelope):
            payload = payload.payload
        elif isinstance(payload, Unreliable):
            payload = payload.payload
        loop = getattr(payload, "loop", None)
        if loop is not None and loop != MAIN_LOOP:
            return 1
        if isinstance(payload, (ForkBranch, MergeBranch, StopLoop,
                                Repartition, MigrateState)):
            # Migration control is also urgent: the sooner the fence is
            # up (and the handoff adopted), the shorter the buffering
            # window for in-flight gathers.
            return 1
        return 0

    def handle(self, message: Any, sender: str) -> float:
        payload = self.transport.on_message(message, sender)
        if payload is None:
            return self.config.control_cost
        self._work_since_report = True
        cost = self._dispatch(payload)
        if self._session_window:
            # End of the dispatch window: all session traffic produced
            # while handling this message goes out, merged and batched.
            cost += self._flush_window()
        return cost

    def _dispatch(self, payload: Any) -> float:
        if isinstance(payload, VertexInput):
            return self._handle_input(payload)
        if isinstance(payload, VertexUpdate):
            return self._handle_update(payload)
        if isinstance(payload, ReleasedUpdate):
            return self._handle_released(payload.update)
        if isinstance(payload, SessionBatch):
            return self._handle_session_batch(payload)
        if isinstance(payload, ColumnBatch):
            return self._handle_column_batch(payload)
        if isinstance(payload, Prepare):
            return self._handle_prepare(payload)
        if isinstance(payload, Acknowledge):
            return self._handle_ack(payload)
        if isinstance(payload, IterationTerminated):
            return self._handle_terminated(payload)
        if isinstance(payload, ForkBranch):
            return self._handle_fork(payload)
        if isinstance(payload, MergeBranch):
            return self._handle_merge(payload)
        if isinstance(payload, StopLoop):
            return self._handle_stop(payload)
        if isinstance(payload, RecoverLoops):
            return self._handle_recover_loops(payload)
        if isinstance(payload, Repartition):
            return self._handle_repartition(payload)
        if isinstance(payload, MigrateState):
            return self._handle_migrate_state(payload)
        if isinstance(payload, PeerRecovered):
            return self._handle_peer_recovered(payload)
        return self.config.control_cost

    def _handle_peer_recovered(self, msg: PeerRecovered) -> float:
        """A peer restarted and lost its session state.  Two repairs:

        * Pended session-level ACKs it owed us are gone — every vertex
          mid-prepare re-sends its PREPARE to consumers the peer owns
          (the recovered consumer acknowledges immediately).
        * Preparations the peer's vertices had announced are void — drop
          those producers from our prepare_lists (if a recovered producer
          still wants to update, it will PREPARE again), which unblocks
          vertices that were waiting on a ghost.
        * The peer rolled its vertices back to the last checkpoint; offers
          we delivered after that checkpoint died with it and the
          transport will not resend them (they were acknowledged).  Every
          local vertex with a consumer on the peer re-scatters its current
          value (the paper's message replay, end to end).
        """
        cost = self.config.control_cost
        # Unacked PREPAREs addressed to the dead peer must not retransmit
        # later: the peer's dedup window died with it, so the copy would
        # land as fresh — and a stale PREPARE arriving after its producer
        # committed leaves a ghost prepare_list entry nothing ever clears.
        # Live rounds re-send theirs below.  On the delta path a PREPARE
        # may ride a session batch; dropping the whole batch is safe —
        # the updates in it are re-derived by the re-scatter below, and
        # ACKs to a rolled-back preparation are void anyway.
        if self._delta_scatter:
            self.transport.purge_unacked(
                msg.processor,
                predicate=lambda p: isinstance(p, Prepare)
                or (isinstance(p, SessionBatch)
                    and any(isinstance(q, Prepare) for q in p.payloads))
                or (isinstance(p, ColumnBatch) and p.has_prepare()))
        else:
            self.transport.purge_unacked(msg.processor, (Prepare,))
        for loop in self.loops.values():
            for vertex_id, state in loop.vertices.items():
                if any(self.partition.owner(target) == msg.processor
                       for target in state.targets):
                    loop.protocols[vertex_id].dirty = True
            for vertex_id, protocol in loop.protocols.items():
                stale = [producer for producer in protocol.prepare_list
                         if self.partition.owner(producer)
                         == msg.processor]
                for producer in stale:
                    protocol.prepare_list.discard(producer)
                if not protocol.preparing:
                    if protocol.dirty:
                        cost += self._try_prepare(loop, vertex_id)
                    continue
                for consumer in sorted(protocol.waiting_list, key=repr):
                    if self.partition.owner(consumer) != msg.processor:
                        continue
                    prepare = Prepare(loop.name, vertex_id, consumer,
                                      protocol.update_time)
                    if self._delta_scatter:
                        # Through the window, so re-scattered updates
                        # buffered above are not overtaken by this
                        # PREPARE on the same link.
                        self._buffer_prepare(loop, consumer, prepare)
                    else:
                        self.transport.send(msg.processor, prepare,
                                            tag=loop.name)
                        cost += self.config.control_cost
        return cost

    def _forward_if_not_owner(self, vertex_id: Any, payload: Any) -> bool:
        """Route mis-addressed session traffic to the current owner (the
        partition scheme may have changed while the message was in
        flight)."""
        owner = self.partition.owner(vertex_id)
        if owner == self.name:
            return False
        if (vertex_id in self._outbound
                and getattr(payload, "loop", None) == MAIN_LOOP):
            # Migration fence: the vertex is ours until it is released
            # (its handoff waits for the in-flight preparation), so its
            # session traffic is still ours to run.
            return False
        self.transport.send(owner, payload,
                            tag=getattr(payload, "loop", None))
        return True

    def _buffer_if_migrating_in(self, vertex_id: Any, payload: Any) -> bool:
        """Hold main-loop *gather* traffic for a vertex migrating in until
        the handoff (MigrateState) arrives, then replay it.  Only gathers
        (inputs and already-committed updates) are safe to hold — no
        sender blocks on them.  Preparation traffic is forwarded to the
        migration source instead, where the live copy still runs: a held
        ACK would deadlock the source's own commit, and a held Prepare
        would deadlock its producer, who may be owed an immediate ACK by
        the Lamport order — the very ACK the source's commit (and hence
        the release this buffer waits for) depends on."""
        if getattr(payload, "loop", None) != MAIN_LOOP:
            return False
        entry = self._inbound.get(vertex_id)
        if entry is None:
            # The shared scheme may know of a handoff racing toward us
            # whose Repartition notice has not landed here yet; without
            # this check a gather outrunning the notice would materialise
            # the vertex from its last *committed* version and the
            # source's release would be silently ignored.
            main = self.loops.get(MAIN_LOOP)
            source = self.partition.migration_source(vertex_id)
            if (source is None
                    or self.partition.migrating_to(vertex_id) != self.name
                    or (main is not None and vertex_id in main.vertices)):
                return False
            entry = (self._partition_epoch, source)
            self._inbound[vertex_id] = entry
            self._g_migrating.set(len(self._outbound) + len(self._inbound))
        if isinstance(payload, (Acknowledge, Prepare)):
            self.transport.send(entry[1], payload, tag=MAIN_LOOP)
            return True
        self._migration_buffer.setdefault(vertex_id, []).append(payload)
        if self._trace.enabled:
            self._trace.record(self.sim.now, "migration", "buffered",
                               actor=self.name, vertex=str(vertex_id),
                               depth=len(self._migration_buffer[vertex_id]))
        return True

    # ------------------------------------------------------------ vertices
    def _ensure_vertex(self, loop: LoopState,
                       vertex_id: Any) -> tuple[VertexState, VertexProtocol]:
        state = loop.vertices.get(vertex_id)
        if state is None:
            found = self.store.get_version(loop.name, vertex_id)
            if found is not None:
                # Adopted (repartitioned) or post-recovery vertex: seed
                # from its most recent durable version.
                iteration, (value, targets) = found
                state = VertexState(
                    vertex_id, self.app.program.snapshot_value(value),
                    set(targets), iteration)
                protocol = VertexProtocol(
                    vertex_id, iteration=max(iteration, loop.frontier))
            else:
                state = VertexState(vertex_id)
                protocol = VertexProtocol(vertex_id,
                                          iteration=loop.frontier)
            loop.vertices[vertex_id] = state
            loop.protocols[vertex_id] = protocol
            if found is None:
                ctx = VertexContext(state, loop.name, protocol.iteration)
                self.app.program.init(ctx)
        return state, loop.protocols[vertex_id]

    def _loop_or_orphan(self, name: str, message: Any) -> LoopState | None:
        loop = self.loops.get(name)
        if loop is None:
            # Session traffic racing ahead of the ForkBranch notice.
            self._orphans.setdefault(name, []).append(message)
        return loop

    # -------------------------------------------------------------- inputs
    def _handle_input(self, msg: VertexInput) -> float:
        if self._forward_if_not_owner(msg.vertex, msg):
            return self.config.control_cost
        if self._buffer_if_migrating_in(msg.vertex, msg):
            return self.config.control_cost
        # Orphan (don't drop) inputs that race RecoverLoops after a crash:
        # the ingester's replayed journal may beat the master's recovery
        # notice to a just-restarted processor.
        loop = self._loop_or_orphan(msg.loop, msg)
        if loop is None:
            return self.config.control_cost
        state, protocol = self._ensure_vertex(loop, msg.vertex)
        if protocol.preparing:
            # Inputs may change the dependency graph, so they are not
            # gathered during a preparation (paper §4.2).
            loop.buffered_inputs.setdefault(msg.vertex, []).append(msg)
            return self.config.control_cost
        return self._apply_input(loop, state, protocol, msg)

    def _apply_input(self, loop: LoopState, state: VertexState,
                     protocol: VertexProtocol, msg: VertexInput) -> float:
        ctx = VertexContext(state, loop.name, protocol.iteration)
        delta = Delta(msg.kind, msg.payload, msg.weight)
        changed = self.app.program.gather(ctx, None, delta)
        if self.config.main_loop_mode == "batch" and loop.is_main:
            changed = False  # accumulate only; branch loops do the work
        protocol.gathered_input(loop.frontier, changed)
        loop.inputs_gathered += 1
        loop.changed_since_fork.add(msg.vertex)
        if loop.is_main:
            loop.recent_gather_counts[msg.vertex] = (
                loop.recent_gather_counts.get(msg.vertex, 0) + 1)
        cost = self.app.program.gather_cost(ctx, None, delta)
        if cost is None:
            cost = self.config.gather_cost
        return cost + self._try_prepare(loop, msg.vertex)

    # ------------------------------------------------------------- updates
    def _handle_update(self, msg: VertexUpdate,
                       released: bool = False) -> float:
        if self._forward_if_not_owner(msg.consumer, msg):
            return self.config.control_cost
        if self._buffer_if_migrating_in(msg.consumer, msg):
            return self.config.control_cost
        loop = self._loop_or_orphan(msg.loop, msg)
        if loop is None:
            return self.config.control_cost
        blocked_at = loop.frontier + self.config.delay_bound - 1
        must_park = msg.iteration >= blocked_at
        if self._delta_scatter and not released and not must_park:
            # Per-pair FIFO: while an earlier same-(producer, consumer)
            # update released from the delay buffer is still in inbox
            # transit, a fresh arrival must park behind it.  Applying it
            # inline would let the older offer replay last and clobber
            # the newer value under slot-replacement gathers — and both
            # can carry the *same* iteration (input-driven commits do not
            # bump it), so only arrival order disambiguates.
            must_park = bool(
                loop.released_pairs.get((msg.producer, msg.consumer)))
        if must_park:
            heapq.heappush(loop.buffered_updates,
                           (msg.iteration, next(loop._buffer_seq), msg))
            self._g_delay_buffer.set(len(loop.buffered_updates))
            if self._trace.enabled:
                self._trace.record(self.sim.now, "protocol",
                                   "delay_buffered", actor=self.name,
                                   loop=loop.name,
                                   iteration=msg.iteration,
                                   depth=len(loop.buffered_updates))
            return self.config.control_cost
        return self._apply_update(loop, msg)

    def _apply_update(self, loop: LoopState, msg: VertexUpdate) -> float:
        state, protocol = self._ensure_vertex(loop, msg.consumer)
        if self._combiner is not None:
            # Stale-update guard (delta path, last-wins algebras only):
            # the delay-buffer release path can apply a parked update
            # *after* a fresher one from the same producer was gathered
            # inline; for slot-replacement semantics the stale offer is
            # dead and replaying it would clobber the newer value.  It
            # still counts toward termination (its sender charged the
            # sent counter) but runs no gather and no protocol event.
            last = protocol.gathered_from.get(msg.producer)
            if last is not None and msg.iteration < last:
                loop.counter(msg.iteration)[2] += 1
                loop.gathered_total += 1
                self.total_updates_gathered += 1
                self._m_updates.inc()
                self._m_scatter_stale.inc()
                if self._trace.enabled:
                    self._trace.record(self.sim.now, "delta", "stale_skip",
                                       actor=self.name, loop=loop.name,
                                       iteration=msg.iteration)
                return self.config.control_cost
            protocol.gathered_from[msg.producer] = msg.iteration
        ctx = VertexContext(state, loop.name, protocol.iteration)
        changed = self.app.program.gather(ctx, msg.producer, msg.data)
        protocol.gathered_update(msg.producer, msg.iteration, changed)
        if loop.is_main:
            loop.recent_gather_counts[msg.consumer] = (
                loop.recent_gather_counts.get(msg.consumer, 0) + 1)
        loop.counter(msg.iteration)[2] += 1
        loop.gathered_total += 1
        self.total_updates_gathered += 1
        self._m_updates.inc()
        if self._vector_kernel:
            self._m_vector_gathers.inc()
        if self._trace.enabled:
            self._trace.record(self.sim.now, "protocol", "update",
                               actor=self.name, loop=loop.name,
                               iteration=msg.iteration)
        cost = self.app.program.gather_cost(ctx, msg.producer, msg.data)
        if cost is None:
            cost = self.config.gather_cost
        return cost + self._try_prepare(loop, msg.consumer)

    # ----------------------------------------------------------- delta path
    def _window_for(self, loop_name: str) -> tuple[list, dict]:
        window = self._session_window.get(loop_name)
        if window is None:
            if self._window_pool:
                window = self._window_pool.pop()
                self._m_window_reuse.inc()
            else:
                window = ([], {})
            self._session_window[loop_name] = window
        return window

    def _buffer_scatter(self, loop: LoopState, producer: Any, consumer: Any,
                        iteration: int, data: Any) -> None:
        """Park one committed scatter in the dispatch window.  With a
        declared combiner, a same-``(producer, consumer)`` update already
        in the window absorbs it in place (last-wins algebras collapse to
        the newest offer) — in-place is order-safe because a second
        commit within one dispatch only ever happens on the skip-prepare
        path, so no PREPARE of that pair can sit between the two;
        otherwise it queues behind the earlier one so the consumer still
        sees every update, in order."""
        self._m_scatter_buffered.inc()
        entries, index = self._window_for(loop.name)
        cell = (index.get((producer, consumer))
                if self._combiner is not None else None)
        if cell is not None:
            cell[0] = max(cell[0], iteration)
            cell[1] = self._combiner(cell[1], data)
            self._m_scatter_merged.inc()
        else:
            cell = [iteration, data]
            entries.append(("update", producer, consumer, cell))
            index[(producer, consumer)] = cell

    def _buffer_prepare(self, loop: LoopState, consumer: Any,
                        payload: Prepare) -> None:
        self._window_for(loop.name)[0].append(("prepare", consumer,
                                               payload))

    def _buffer_ack(self, loop: LoopState, producer: Any,
                    payload: Acknowledge) -> None:
        self._window_for(loop.name)[0].append(("ack", producer, payload))

    def _flush_window(self) -> float:
        """Drain the session window: route every entry by its
        *flush-time* owner (a migration may have flipped a consumer's
        owner mid-window — the message follows the vertex, it is never
        dropped), charge the sent-side termination counters post-merge,
        and ship one envelope per destination processor, preserving the
        original send order within it.  With ``columnar_wire`` on,
        packable updates are staged as raw row tuples and leave as typed
        column runs inside a ColumnBatch; drained window buffers return
        to the pool (clear-don't-recreate) instead of being reallocated.
        """
        if not self._session_window:
            return 0.0
        buffer = self._session_window
        self._session_window = (self._spare_window
                                if self._spare_window is not None else {})
        self._spare_window = None
        pack = self._wire_pack
        wire_type = self._wire_type
        cost = 0.0
        for loop_name, window in buffer.items():
            entries, index = window
            loop = self.loops.get(loop_name)
            by_dst: dict[str, list[Any]] = {}
            updates = 0
            for entry in entries:
                kind = entry[0]
                if kind == "update":
                    _kind, producer, consumer, cell = entry
                    iteration, data = cell
                    if loop is not None:
                        loop.counter(iteration)[1] += 1
                    updates += 1
                    dst = self.partition.owner(consumer)
                    if pack and type(data) is wire_type:
                        # Staged as a raw row; becomes a column run (or,
                        # alone in its envelope, a plain VertexUpdate).
                        payload: Any = (producer, consumer, iteration,
                                        data)
                    else:
                        if pack:
                            self._m_wire_fallback.inc()
                        payload = VertexUpdate(loop_name, producer,
                                               consumer, iteration, data)
                elif kind == "prepare":
                    _kind, consumer, payload = entry
                    dst = self.partition.owner(consumer)
                else:  # pended or immediate ack, routed to the producer
                    _kind, producer, payload = entry
                    dst = self.partition.owner(producer)
                by_dst.setdefault(dst, []).append(payload)
            if loop is not None:
                loop.sent_total += updates
            for dst, payloads in sorted(by_dst.items()):
                if len(payloads) == 1:
                    single = payloads[0]
                    if type(single) is tuple:
                        single = VertexUpdate(loop_name, *single)
                    self.transport.send(dst, single, tag=loop_name)
                else:
                    self._send_batch(loop_name, dst, payloads)
                cost += self.config.control_cost
            if self._trace.enabled:
                self._trace.record(self.sim.now, "delta", "flush",
                                   actor=self.name, loop=loop_name,
                                   messages=len(entries), updates=updates,
                                   envelopes=len(by_dst))
            entries.clear()
            index.clear()
            self._window_pool.append(window)
        buffer.clear()
        self._spare_window = buffer
        return cost

    def _send_batch(self, loop_name: str, dst: str,
                    payloads: list[Any]) -> None:
        """Ship one multi-payload envelope: a SessionBatch, or — when the
        window staged packable rows for this destination — a ColumnBatch
        with consecutive rows zipped into parallel column runs (scalar
        messages keep their original positions between runs)."""
        if any(type(p) is tuple for p in payloads):
            segments: list[Any] = []
            run: list[tuple] = []
            rows = 0
            for payload in payloads:
                if type(payload) is tuple:
                    run.append(payload)
                else:
                    if run:
                        segments.append(tuple(zip(*run)))
                        rows += len(run)
                        run = []
                    segments.append(payload)
            if run:
                segments.append(tuple(zip(*run)))
                rows += len(run)
            self.transport.send(
                dst, ColumnBatch(loop_name, tuple(segments)),
                tag=loop_name)
            self._m_wire_batches.inc()
            self._m_wire_rows.inc(rows)
        else:
            self.transport.send(dst, SessionBatch(
                loop_name, tuple(payloads)), tag=loop_name)
        self._m_scatter_batches.inc()
        self._m_scatter_batched.inc(len(payloads))
        self._m_envelopes_saved.inc(len(payloads) - 1)

    def _handle_session_batch(self, msg: SessionBatch) -> float:
        """Unpack a batched envelope: each ride-along message goes
        through the exact single-message path (forwarding, migration
        buffering, delay bound, orphaning all behave per message), in
        its original send order.  With the columnar kernels active the
        window's gathers run the vectorized slot reduction — the unpack
        loop is the receiver-side seam the vector path rides through,
        counted per window for the A/B gauges."""
        if self._vector_kernel:
            self._m_vector_windows.inc()
        cost = 0.0
        for payload in msg.payloads:
            cost += self._dispatch(payload)
        return cost

    def _handle_column_batch(self, msg: ColumnBatch) -> float:
        """Unpack a columnar envelope.  Scalar segments go through the
        exact single-message path; column runs go through the row fast
        path, whose per-row effects (gates, counter charges, trace
        events, virtual-time costs) are byte-identical to dispatching
        the equivalent ``VertexUpdate`` objects — the digest oracle
        holds with the gate on or off."""
        if self._vector_kernel:
            self._m_vector_windows.inc()
        cost = 0.0
        for seg in msg.segments:
            if type(seg) is tuple:
                cost += self._apply_rows(msg.loop, seg)
            else:
                cost += self._dispatch(seg)
        return cost

    def _apply_rows(self, loop_name: str, seg: tuple) -> float:
        """Gather one column run without materialising per-row update
        objects.  Rows that cannot take the fast path — no such loop
        here, a mid-window owner flip, a migration fence or handoff in
        progress, the delay bound, an in-flight delay-buffer release —
        fall back to a scalar ``VertexUpdate`` dispatch, which replays
        the exact single-message semantics (forwarding, buffering,
        parking, orphaning)."""
        producers, consumers, iterations, values = seg
        loop = self.loops.get(loop_name)
        cost = 0.0
        if loop is None:
            # Stopped loop, or rows racing their fork/recovery notice:
            # the scalar path orphans them exactly as un-packed.
            for i in range(len(producers)):
                cost += self._dispatch(VertexUpdate(
                    loop_name, producers[i], consumers[i], iterations[i],
                    values[i]))
            return cost
        config = self.config
        control = config.control_cost
        # Hoisted row gates — all constant for the duration of one batch:
        # the frontier only moves in _handle_terminated, migrations are
        # only marked by the master between events, and the racing-
        # handoff fence can only engage while the shared scheme already
        # knows of in-flight moves (migrating_count() below).
        mig = loop.is_main and bool(self._inbound
                                    or self.partition.migrating_count())
        blocked_at = loop.frontier + config.delay_bound - 1
        released = loop.released_pairs
        owner = self.partition.owner
        me = self.name
        vertices = loop.vertices
        protocols = loop.protocols
        combiner = self._combiner
        program = self.app.program
        gather = program.gather
        trace = self._trace
        is_main = loop.is_main
        recent = loop.recent_gather_counts
        counter = loop.counter
        gather_cost_fn = (None if self._static_gather_cost
                          else program.gather_cost)
        default_cost = config.gather_cost
        ctx: VertexContext | None = None
        gathered = 0
        stale_rows = 0
        fast_rows = 0
        for i in range(len(producers)):
            consumer = consumers[i]
            if mig or owner(consumer) != me:
                # Owner flipped mid-window / fenced by a migration: the
                # scalar path forwards or buffers per message.
                cost += self._dispatch(VertexUpdate(
                    loop_name, producers[i], consumer, iterations[i],
                    values[i]))
                continue
            producer = producers[i]
            it = iterations[i]
            if it >= blocked_at or (released
                                    and released.get((producer,
                                                      consumer))):
                # Parks in the delay buffer (or behind an in-flight
                # release) exactly like the scalar path.
                cost += self._dispatch(VertexUpdate(
                    loop_name, producer, consumer, it, values[i]))
                continue
            fast_rows += 1
            state = vertices.get(consumer)
            if state is None:
                state, protocol = self._ensure_vertex(loop, consumer)
            else:
                protocol = protocols[consumer]
            if combiner is not None:
                last = protocol.gathered_from.get(producer)
                if last is not None and it < last:
                    # Stale-update guard, batched tail accounting below.
                    counter(it)[2] += 1
                    stale_rows += 1
                    if trace.enabled:
                        trace.record(self.sim.now, "delta", "stale_skip",
                                     actor=me, loop=loop_name,
                                     iteration=it)
                    cost += control
                    continue
                protocol.gathered_from[producer] = it
            if ctx is None:
                ctx = VertexContext(state, loop_name, protocol.iteration)
            else:
                # Scratch-context reuse: gather never emits (documented
                # contract), so only the state and iteration views need
                # refreshing row to row.
                ctx._state = state
                ctx.iteration = protocol.iteration
            value = values[i]
            changed = gather(ctx, producer, value)
            protocol.gathered_update(producer, it, changed)
            if is_main:
                recent[consumer] = recent.get(consumer, 0) + 1
            counter(it)[2] += 1
            gathered += 1
            if trace.enabled:
                trace.record(self.sim.now, "protocol", "update",
                             actor=me, loop=loop_name, iteration=it)
            if gather_cost_fn is None:
                g = default_cost
            else:
                g = gather_cost_fn(ctx, producer, value)
                if g is None:
                    g = default_cost
            if (protocol.dirty and protocol.update_time is None
                    and not protocol.prepare_list):
                # Exactly when try_prepare would act (its early return
                # fires iff not dirty, mid-prepare, or a non-empty
                # prepare_list); quiet rows skip the call entirely.
                g = g + self._try_prepare(loop, consumer)
            cost += g
        total = gathered + stale_rows
        if total:
            loop.gathered_total += total
            self.total_updates_gathered += total
            self._m_updates.inc(total)
        if stale_rows:
            self._m_scatter_stale.inc(stale_rows)
        if gathered and self._vector_kernel:
            self._m_vector_gathers.inc(gathered)
        if fast_rows:
            self._m_wire_row_gathers.inc(fast_rows)
        return cost

    # ------------------------------------------------------ prepare / ack
    def _handle_prepare(self, msg: Prepare) -> float:
        if self._forward_if_not_owner(msg.consumer, msg):
            return self.config.control_cost
        if self._buffer_if_migrating_in(msg.consumer, msg):
            return self.config.control_cost
        loop = self._loop_or_orphan(msg.loop, msg)
        if loop is None:
            return self.config.control_cost
        _state, protocol = self._ensure_vertex(loop, msg.consumer)
        self.clock.observe(msg.update_time)
        actions = protocol.received_prepare(msg.producer, msg.update_time)
        return self.config.control_cost + self._run_actions(
            loop, msg.consumer, actions)

    def _handle_ack(self, msg: Acknowledge) -> float:
        if self._forward_if_not_owner(msg.producer, msg):
            return self.config.control_cost
        if self._buffer_if_migrating_in(msg.producer, msg):
            return self.config.control_cost
        loop = self.loops.get(msg.loop)
        if loop is None:
            return self.config.control_cost
        protocol = loop.protocols.get(msg.producer)
        if protocol is None:
            return self.config.control_cost
        actions = protocol.received_ack(msg.consumer, msg.iteration)
        return self.config.control_cost + self._run_actions(
            loop, msg.producer, actions)

    # ----------------------------------------------------- protocol driver
    def _try_prepare(self, loop: LoopState, vertex_id: Any) -> float:
        protocol = loop.protocols[vertex_id]
        state = loop.vertices[vertex_id]
        blocked_at = loop.frontier + self.config.delay_bound - 1
        skip = protocol.iteration >= blocked_at
        actions = protocol.try_prepare(self.clock, state.targets,
                                       skip_prepare=skip)
        return self._run_actions(loop, vertex_id, actions)

    def _run_actions(self, loop: LoopState, vertex_id: Any,
                     actions: list) -> float:
        cost = 0.0
        for action in actions:
            if isinstance(action, SendPrepare):
                prepare = Prepare(loop.name, vertex_id, action.consumer,
                                  action.update_time)
                if self._delta_scatter:
                    # Session window: the window keeps send order, so the
                    # consumer still sees this vertex's buffered update
                    # for iteration i before the PREPARE announcing i+1
                    # (the update discards our prepare_list entry on
                    # arrival — overtaking it would erase the new
                    # announcement).  Envelope cost is paid at flush.
                    self._buffer_prepare(loop, action.consumer, prepare)
                else:
                    owner = self.partition.owner(action.consumer)
                    self.transport.send(owner, prepare, tag=loop.name)
                    cost += self.config.control_cost
                loop.prepares_recorded += 1
                self.total_prepares += 1
                self._m_prepares.inc()
                if self._trace.enabled:
                    self._trace.record(
                        self.sim.now, "protocol", "prepare",
                        actor=self.name, loop=loop.name,
                        iteration=loop.protocols[vertex_id].iteration)
            elif isinstance(action, SendAck):
                ack = Acknowledge(loop.name, vertex_id, action.producer,
                                  action.iteration)
                if self._delta_scatter:
                    # Window order keeps the legacy scatters-before-
                    # pended-acks link order: the producer's commit
                    # (triggered by this ACK) gathers our update first,
                    # as it would have un-batched.
                    self._buffer_ack(loop, action.producer, ack)
                else:
                    owner = self.partition.owner(action.producer)
                    self.transport.send(owner, ack, tag=loop.name)
                    cost += self.config.control_cost
                self._m_acks.inc()
                if self._trace.enabled:
                    self._trace.record(self.sim.now, "protocol", "ack",
                                       actor=self.name, loop=loop.name,
                                       iteration=action.iteration)
            elif isinstance(action, CommitUpdate):
                cost += self._commit(loop, vertex_id, action.iteration)
        return cost

    def _commit(self, loop: LoopState, vertex_id: Any,
                iteration: int) -> float:
        state = loop.vertices[vertex_id]
        state.last_commit_iteration = iteration
        state.last_commit_time = self.sim.now
        if iteration > loop.highest_commit:
            loop.highest_commit = iteration
        version = (self.app.program.snapshot_value(state.value),
                   frozenset(state.targets))
        self.store.put(loop.name, vertex_id, iteration, version)
        loop.pending_flush += 1
        loop.counter(iteration)[0] += 1
        loop.commits_total += 1
        self.total_commits += 1
        self._m_commits.inc()
        if self._trace.enabled:
            self._trace.record(self.sim.now, "protocol", "commit",
                               actor=self.name, loop=loop.name,
                               iteration=iteration)
        if loop.is_main:
            loop.changed_since_fork.add(vertex_id)
            loop.recent_commit_counts[vertex_id] = (
                loop.recent_commit_counts.get(vertex_id, 0) + 1)
        ctx = VertexContext(state, loop.name, iteration)
        self.app.program.scatter(ctx)
        emitted = ctx.take_emitted()
        if self._delta_scatter:
            # Delta path: park the scatters in the window; the flush
            # accounts sent counters (post-merge, at the merged
            # iteration) and pays the per-envelope cost.
            # Sorted scatter order: ``emitted`` inherits the iteration
            # order of the program's target set, which varies with hash
            # randomisation across interpreters (live backend workers).
            for target, data in sorted(emitted.items(),
                                       key=lambda kv: repr(kv[0])):
                self._buffer_scatter(loop, vertex_id, target, iteration,
                                     data)
            cost = self.config.control_cost
        else:
            for target, data in sorted(emitted.items(),
                                       key=lambda kv: repr(kv[0])):
                owner = self.partition.owner(target)
                self.transport.send(owner, VertexUpdate(
                    loop.name, vertex_id, target, iteration, data),
                    tag=loop.name)
            loop.counter(iteration)[1] += len(emitted)
            loop.sent_total += len(emitted)
            cost = self.config.control_cost * (1 + len(emitted))
        # Gather the inputs that arrived during the preparation.
        deferred = loop.buffered_inputs.pop(vertex_id, None)
        if deferred:
            protocol = loop.protocols[vertex_id]
            for msg in deferred:
                cost += self._apply_input(loop, state, protocol, msg)
        if loop.is_main and self._outbound:
            # A commit ends the preparation that blocked a handoff.
            cost += self._release_ready_vertices(loop)
        return cost

    # ---------------------------------------------------------- frontier
    def _release_buffered(self, loop: LoopState) -> None:
        """Requeue delay-buffered updates that dropped below the bound.

        Releases go back through the inbox so each one pays message cost.
        On the delta path they travel wrapped in :class:`ReleasedUpdate`:
        the wrapper marks them as already ordered by the buffer (apply,
        do not re-park) and holds a ``released_pairs`` entry until the
        update actually applies, so a fresh same-pair arrival cannot
        slip past it while it waits in the inbox."""
        blocked_at = loop.frontier + self.config.delay_bound - 1
        while (loop.buffered_updates
               and loop.buffered_updates[0][0] < blocked_at):
            _iteration, _seq, update = heapq.heappop(loop.buffered_updates)
            if self._delta_scatter:
                pair = (update.producer, update.consumer)
                loop.released_pairs[pair] = (
                    loop.released_pairs.get(pair, 0) + 1)
                self.deliver(ReleasedUpdate(update), self.name)
            else:
                self.deliver(update, self.name)
        self._g_delay_buffer.set(len(loop.buffered_updates))

    def _handle_released(self, msg: VertexUpdate) -> float:
        loop = self.loops.get(msg.loop)
        if loop is not None:
            pair = (msg.producer, msg.consumer)
            count = loop.released_pairs.get(pair, 0) - 1
            if count > 0:
                loop.released_pairs[pair] = count
            else:
                loop.released_pairs.pop(pair, None)
        cost = self._handle_update(msg, released=True)
        # Applying the head may strand same-pair followers that parked
        # below the bound purely on FIFO grounds; sweep them out now
        # instead of waiting for a frontier advance that may never come.
        if loop is not None:
            self._release_buffered(loop)
        return cost

    def _handle_terminated(self, msg: IterationTerminated) -> float:
        loop = self.loops.get(msg.loop)
        if loop is None:
            return self.config.control_cost
        if msg.iteration + 1 <= loop.frontier:
            return self.config.control_cost
        loop.frontier = msg.iteration + 1
        loop.prune_counters()
        if self._trace.enabled:
            self._trace.record(self.sim.now, "progress", "frontier",
                               actor=self.name, loop=loop.name,
                               frontier=loop.frontier)
        self._release_buffered(loop)
        # The frontier advance may unlock the delay-bound fast path.
        cost = self.config.control_cost
        for vertex_id, protocol in list(loop.protocols.items()):
            if protocol.dirty and not protocol.preparing:
                cost += self._try_prepare(loop, vertex_id)
        return cost

    def _handle_stop(self, msg: StopLoop) -> float:
        """Tear a finished branch loop down, first materialising its final
        state so query results are complete even for vertices the branch
        never needed to update."""
        stopped = self.loops.pop(msg.loop, None)
        self._orphans.pop(msg.loop, None)
        if stopped is None:
            return self.config.control_cost
        self.loop_archive[msg.loop] = (
            stopped.commits_total, stopped.sent_total,
            stopped.gathered_total, stopped.prepares_recorded)
        # Presence probes ride one housekeeping snapshot of the stopped
        # loop — every processor tears the same loop down at the same
        # instant, so after the first walk the rest are LRU-cache hits —
        # and the final values go out as one batched write.
        existing = self.store.snapshot(msg.loop, internal=True)
        items = []
        for vertex_id, state in stopped.vertices.items():
            if vertex_id in existing:
                continue
            version = (self.app.program.snapshot_value(state.value),
                       frozenset(state.targets))
            items.append((vertex_id, max(0, state.last_commit_iteration),
                          version))
        materialised = self.store.put_many(msg.loop, items)
        return self.config.control_cost + 2e-6 * materialised

    # ------------------------------------------------------ fork / merge
    def _handle_fork(self, msg: ForkBranch) -> float:
        existing = self.loops.get(msg.loop)
        if existing is not None and existing.forked:
            return self.config.control_cost
        main = self.loops.get(MAIN_LOOP)
        if main is None:
            # The fork raced ahead of RecoverLoops on a freshly restarted
            # processor: there is no main loop to snapshot yet.  Orphan it
            # under the main loop so recovery replays it.
            self._orphans.setdefault(MAIN_LOOP, []).append(msg)
            return self.config.control_cost
        # Merge into a recovery shell if one exists: its vertices already
        # hold live branch traffic (gathered updates, restored versions)
        # that a fresh snapshot of the rolled-back main loop must not
        # clobber.
        branch = existing if existing is not None \
            else LoopState(msg.loop, is_main=False)
        branch.forked = True
        self.loops[msg.loop] = branch
        changed = main.changed_since_fork
        main.changed_since_fork = set()
        window_start = self.sim.now - self.config.fork_activation_window
        batch_mode = self.config.main_loop_mode == "batch"
        # Producers of main-loop updates still in flight: their committed
        # values have not reached every consumer, so the snapshot misses
        # them — they must re-scatter in the branch.  Batched envelopes
        # carry many producers each.
        inflight_producers = set()
        for payload in self.transport.unacked_payloads():
            if isinstance(payload, VertexUpdate) \
                    and payload.loop == MAIN_LOOP:
                inflight_producers.add(payload.producer)
            elif isinstance(payload, SessionBatch) \
                    and payload.loop == MAIN_LOOP:
                inflight_producers.update(
                    ride.producer for ride in payload.payloads
                    if isinstance(ride, VertexUpdate))
            elif isinstance(payload, ColumnBatch) \
                    and payload.loop == MAIN_LOOP:
                inflight_producers.update(payload.update_producers())
        cost = self.config.control_cost
        for vertex_id, state in main.vertices.items():
            if vertex_id in branch.vertices:
                # Shell vertex already live in the branch: keep its state
                # and (re-)activate it so it re-scatters whatever the
                # crash lost.
                branch.protocols[vertex_id].dirty = True
                continue
            branch_state = VertexState(
                vertex_id, self.app.program.snapshot_value(state.value),
                set(state.targets), state.last_commit_iteration)
            branch.vertices[vertex_id] = branch_state
            protocol = VertexProtocol(vertex_id, iteration=0)
            branch.protocols[vertex_id] = protocol
            ctx = VertexContext(branch_state, msg.loop, 0)
            if batch_mode:
                # The main loop never propagated anything: every vertex
                # touched by inputs since the last epoch is unreflected.
                recently = vertex_id in changed
            else:
                # Approximate mode: old commits are already absorbed by
                # their consumers; only pending work and in-flight
                # scatters are unreflected in the snapshot.
                main_protocol = main.protocols.get(vertex_id)
                recently = (
                    (main_protocol is not None
                     and main_protocol.has_pending_work())
                    or vertex_id in inflight_producers
                    or state.last_commit_time >= window_start
                    or vertex_id in main.buffered_inputs)
            if msg.full_activation or self.app.program.activate_on_fork(
                    ctx, recently):
                protocol.dirty = True
            cost += 1e-6  # per-vertex snapshot copy
        # Updates parked by the delay bound were never gathered: fold them
        # into the branch copies directly.
        if not batch_mode:
            # Delta path: fold in buffer (arrival) order so a stale
            # same-pair offer cannot land after a fresher one; the raw
            # heap array is only partially ordered.  (iteration, seq)
            # keys are unique, so sorted() never compares the updates.
            buffered = (sorted(main.buffered_updates) if self._delta_scatter
                        else main.buffered_updates)
            for _iteration, _seq, update in buffered:
                if update.consumer not in branch.vertices:
                    continue
                b_state = branch.vertices[update.consumer]
                b_protocol = branch.protocols[update.consumer]
                b_ctx = VertexContext(b_state, msg.loop, 0)
                if self.app.program.gather(b_ctx, update.producer,
                                           update.data):
                    b_protocol.dirty = True
        # Kick the activated vertices off.
        for vertex_id, protocol in branch.protocols.items():
            if protocol.dirty:
                cost += self._try_prepare(branch, vertex_id)
        # Replay session traffic that arrived before the fork notice.
        for orphan in self._orphans.pop(msg.loop, []):
            self.deliver(orphan, self.name)
        return cost

    def _handle_merge(self, msg: MergeBranch) -> float:
        """Write a converged branch's results into the main loop at
        iteration τ+B (paper §5.2).  Values are read from the store, so
        merging is robust to the branch state having been stopped."""
        main = self.loops.get(MAIN_LOOP)
        if main is None:
            # Same race as in _handle_fork: merge once recovery rebuilds
            # the main loop.
            self._orphans.setdefault(MAIN_LOOP, []).append(msg)
            return self.config.control_cost
        # The branch walk-and-write-back is runtime housekeeping, batched:
        # one snapshot of the (stopped, hence unchanging) branch — shared
        # via the LRU cache across all processors merging it — and one
        # put_many into the main loop (a single cache invalidation).
        view = self.store.snapshot(msg.loop, internal=True)
        items = []
        for vertex_id, (value, targets) in view.items():
            if self.partition.owner(vertex_id) != self.name:
                continue
            state, protocol = self._ensure_vertex(main, vertex_id)
            state.value = self.app.program.snapshot_value(value)
            state.targets = set(targets)
            state.last_commit_iteration = msg.target_iteration
            if msg.target_iteration > protocol.iteration:
                protocol.iteration = msg.target_iteration
            items.append((vertex_id, msg.target_iteration,
                          (self.app.program.snapshot_value(value),
                           frozenset(targets))))
            main.pending_flush += 1
            if self.config.main_loop_mode == "approximate":
                # Re-scatter the fixed point once so any consumer slot
                # written by in-flight pre-merge traffic is healed.
                protocol.dirty = True
        merged = self.store.put_many(MAIN_LOOP, items)
        cost = self.config.control_cost + 2e-6 * merged
        if self.config.main_loop_mode == "approximate":
            for vertex_id, protocol in list(main.protocols.items()):
                if protocol.dirty and not protocol.preparing:
                    cost += self._try_prepare(main, vertex_id)
        return cost

    # ---------------------------------------------------- live migration
    def _handle_repartition(self, msg: Repartition) -> float:
        """The partition scheme changed at ``msg.epoch``.  As the source
        of a move, fence the vertex (its session traffic stays ours) and
        release it as soon as it is not mid-prepare; as the target, start
        buffering its in-flight gathers until the handoff arrives."""
        cost = self.config.control_cost
        if msg.epoch < self._partition_epoch:
            return cost  # stale notice from an older layout
        main = self.loops.get(MAIN_LOOP)
        if main is None:
            # Racing RecoverLoops on a fresh restart: replay once the
            # main loop is rebuilt.
            self._orphans.setdefault(MAIN_LOOP, []).append(msg)
            return cost
        self._partition_epoch = msg.epoch
        for vertex_id, source, target in msg.moves:
            if source == target:
                continue
            if target == self.name:
                if vertex_id not in main.vertices:
                    # Not adopted yet: buffer gathers until MigrateState.
                    self._inbound[vertex_id] = (msg.epoch, source)
            elif source == self.name:
                self._outbound[vertex_id] = (msg.epoch, target)
        cost += self._release_ready_vertices(main)
        self._g_migrating.set(len(self._outbound) + len(self._inbound))
        return cost

    def _release_ready_vertices(self, main: LoopState) -> float:
        """Hand over every outbound vertex that is not mid-prepare: flush
        its freshest state to the shared store, drop the local copy, and
        tell the new owner (MigrateState) it may adopt.  Vertices still
        preparing are released by the commit that ends the preparation —
        releasing earlier would strand the consumers whose ACKs the
        preparation is waiting for."""
        cost = 0.0
        by_target: dict[str, list[tuple[Any, bool]]] = {}
        for vertex_id, (_epoch, target) in list(self._outbound.items()):
            protocol = main.protocols.get(vertex_id)
            if protocol is not None and protocol.preparing:
                continue
            state = main.vertices.pop(vertex_id, None)
            main.protocols.pop(vertex_id, None)
            main.recent_commit_counts.pop(vertex_id, None)
            main.recent_gather_counts.pop(vertex_id, None)
            active = False
            if state is not None:
                active = protocol.dirty
                version = (self.app.program.snapshot_value(state.value),
                           frozenset(state.targets))
                iteration = max(state.last_commit_iteration, main.frontier)
                if active:
                    # Uncommitted gathered deltas ride along in the value.
                    self.store.put(MAIN_LOOP, vertex_id, iteration, version)
                else:
                    # Delta handoff: the last commit is already durable;
                    # only write when the chain does not cover it.
                    self.store.put_if_newer(MAIN_LOOP, vertex_id,
                                            iteration, version)
                main.pending_flush += 1
                cost += 2e-6
            # Inputs deferred during an earlier preparation follow the
            # vertex (they re-enter through the new owner's buffer).
            for msg in main.buffered_inputs.pop(vertex_id, []):
                active = True
                self.transport.send(target, msg, tag=MAIN_LOOP)
                cost += self.config.control_cost
            del self._outbound[vertex_id]
            by_target.setdefault(target, []).append((vertex_id, active))
        for target in sorted(by_target):
            vertices = by_target[target]
            self.transport.send(target, MigrateState(
                self._partition_epoch, tuple(vertices)), tag="migration")
            self._m_migrated.inc(len(vertices))
            cost += self.config.control_cost
            if self._trace.enabled:
                self._trace.record(self.sim.now, "migration",
                                   "migrate_out", actor=self.name,
                                   target=target, vertices=len(vertices))
        self._g_migrating.set(len(self._outbound) + len(self._inbound))
        return cost

    def _handle_migrate_state(self, msg: MigrateState) -> float:
        """Adopt migrated vertices: seed from their freshest store
        version, re-activate the ones the source still had work for, and
        replay the gathers buffered while the handoff was in flight."""
        main = self.loops.get(MAIN_LOOP)
        if main is None:
            self._orphans.setdefault(MAIN_LOOP, []).append(msg)
            return self.config.control_cost
        cost = self.config.control_cost
        adopted = []
        for vertex_id, active in msg.vertices:
            self._inbound.pop(vertex_id, None)
            self.partition.clear_migrating(vertex_id, msg.epoch)
            if self.partition.owner(vertex_id) != self.name:
                # The layout moved on while the handoff was in flight;
                # the current owner adopts from the store on contact.
                for buffered in self._migration_buffer.pop(vertex_id, []):
                    self.deliver(buffered, self.name)
                continue
            _state, protocol = self._ensure_vertex(main, vertex_id)
            if active:
                protocol.dirty = True
            adopted.append(vertex_id)
            cost += 2e-6
            for buffered in self._migration_buffer.pop(vertex_id, []):
                self.deliver(buffered, self.name)
        for vertex_id in adopted:
            protocol = main.protocols[vertex_id]
            if protocol.dirty and not protocol.preparing:
                cost += self._try_prepare(main, vertex_id)
        self.transport.send(self.master_name, MigrateDone(
            msg.epoch, tuple(vertex for vertex, _active in msg.vertices)))
        self._g_migrating.set(len(self._outbound) + len(self._inbound))
        if self._trace.enabled:
            self._trace.record(self.sim.now, "migration", "migrate_in",
                               actor=self.name, vertices=len(msg.vertices))
        return cost

    @property
    def migration_idle(self) -> bool:
        """No handoff in progress on this processor."""
        return not (self._outbound or self._inbound
                    or self._migration_buffer)

    # ---------------------------------------------------------- reporting
    def _report_tick(self) -> None:
        if not self._report_timer_running or self.down:
            return
        self._flush_then_report()
        self.sim.schedule_timer(self.config.report_interval,
                                self._report_tick)

    def on_idle(self) -> None:
        if (not self.down and not self._flush_in_flight
                and self._work_since_report):
            self._flush_then_report()

    def _flush_then_report(self) -> None:
        """Snapshot counters, flush the versions they cover, then report.
        Progress the master sees is therefore always durable (paper §5.3)."""
        if self._flush_in_flight:
            return
        self._work_since_report = False
        snapshots = []
        total_pending = 0
        for loop in self.loops.values():
            self._report_seq += 1
            hot: tuple = ()
            vertex_load: tuple = ()
            unacked = self.transport.pending_by_tag.get(loop.name, 0)
            buffered = len(loop.buffered_updates)
            if loop.is_main and loop.recent_commit_counts:
                ranked = sorted(loop.recent_commit_counts,
                                key=loop.recent_commit_counts.get,
                                reverse=True)
                hot = tuple(ranked[:3])
                loop.recent_commit_counts = {}
            if loop.is_main:
                if loop.recent_gather_counts:
                    counts = loop.recent_gather_counts
                    ranked = sorted(counts,
                                    key=lambda v: (-counts[v], str(v)))
                    top = ranked[:self.config.migration_report_top_k]
                    vertex_load = tuple((v, counts[v]) for v in top)
                    loop.recent_gather_counts = {}
                # In-flight handoff traffic blocks main-loop convergence
                # the same way unacked session messages do.
                unacked += self.transport.pending_by_tag.get(
                    "migration", 0)
                buffered += sum(len(held) for held
                                in self._migration_buffer.values())
            snapshots.append(ProgressReport(
                loop=loop.name,
                processor=self.name,
                seq=self._report_seq,
                counters={k: tuple(v) for k, v in loop.counters.items()},
                watermark=loop.watermark(),
                inputs_gathered=loop.inputs_gathered,
                busy_time=self.busy_time,
                hot_vertices=hot,
                unacked=unacked,
                buffered=buffered,
                vertex_load=vertex_load,
            ))
            total_pending += loop.pending_flush
            loop.pending_flush = 0
        # Durable frontiers as of this snapshot: once the flush lands,
        # every version up to highest_commit is on stable storage.
        frontiers = [(loop.name, loop.highest_commit)
                     for loop in self.loops.values()
                     if loop.highest_commit >= 0]
        self._flush_in_flight = True
        self._m_flushes.inc()
        # Store health gauges ride the report cadence (shared store: every
        # processor publishes the same totals, which is idempotent).
        self._g_store_cache_hits.set(self.store.cache_hits)
        self._g_store_cache_misses.set(self.store.cache_misses)
        self._g_store_rebases.set(self.store.rebases)
        self._g_store_internal_reads.set(self.store.internal_reads)
        if self._trace.enabled:
            self._trace.record(self.sim.now, "storage", "flush",
                               actor=self.name, versions=total_pending)
        self.backend.flush(total_pending, self._send_reports, snapshots,
                           frontiers)

    def _send_reports(self, snapshots: list[ProgressReport],
                      frontiers: list[tuple[str, int]] = ()) -> None:
        self._flush_in_flight = False
        if self.manifest is not None:
            # The disk finished the write even if we crashed meanwhile.
            for loop_name, iteration in frontiers:
                self.manifest.record_flush(loop_name, self.name, iteration)
        if self.down:
            return
        for report in snapshots:
            self.transport.send(self.master_name, report)

    # ------------------------------------------------------------ recovery
    def on_failure(self) -> None:
        self.transport.clear()
        self.loops = {}
        self._orphans = {}
        self._report_timer_running = False
        self._flush_in_flight = False
        # Migration fences die with the in-memory state they protected;
        # the master re-drives any in-flight handoff we were part of.
        self._outbound = {}
        self._inbound = {}
        self._migration_buffer = {}
        self._g_migrating.set(0)
        # Unsent window contents die with the crash, exactly like unsent
        # legacy envelopes would; recovery re-scatters checkpoints.  The
        # buffer pool dies too — pooled buffers may alias pre-crash state.
        self._session_window = {}
        self._spare_window = None
        self._window_pool = []

    def on_recover(self) -> None:
        self.transport.send(self.master_name,
                            ProcessorRecovered(self.name))
        self.start()

    def _handle_recover_loops(self, msg: RecoverLoops) -> float:
        cost = self.config.control_cost
        for loop_name, last_terminated in msg.loops:
            if loop_name in self.loops:
                continue
            loop = LoopState(loop_name, loop_name == MAIN_LOOP)
            loop.frontier = max(0, last_terminated + 1)
            self.loops[loop_name] = loop
            bound = last_terminated if last_terminated >= 0 else None
            # Rebuild from the checkpoint in one batched housekeeping read.
            ours = [vertex_id for vertex_id in self.store.keys(loop_name)
                    if self.partition.owner(vertex_id) == self.name]
            found_map = self.store.get_many(loop_name, ours, bound,
                                            internal=True)
            for vertex_id, (iteration, (value, targets)) \
                    in found_map.items():
                state = VertexState(
                    vertex_id, self.app.program.snapshot_value(value),
                    set(targets), iteration)
                protocol = VertexProtocol(
                    vertex_id, iteration=max(iteration, loop.frontier))
                # Re-scatter the checkpoint so downstream slots written by
                # lost post-checkpoint commits are re-derived.
                protocol.dirty = True
                loop.vertices[vertex_id] = state
                loop.protocols[vertex_id] = protocol
                cost += 2e-6
            for vertex_id, protocol in list(loop.protocols.items()):
                if protocol.dirty:
                    cost += self._try_prepare(loop, vertex_id)
            for orphan in self._orphans.pop(loop_name, []):
                self.deliver(orphan, self.name)
        return cost
