"""The graph-parallel programming model (paper Appendix B).

Applications implement a :class:`VertexProgram` — ``init`` / ``gather`` /
``scatter`` — and an :class:`InputRouter` that maps stream tuples to vertex
deltas.  The runtime calls ``gather`` whenever a vertex receives an input or
an update and ``scatter`` when the vertex commits; ``scatter`` may only
reach the vertex's declared targets, which the program maintains with
``ctx.add_target`` / ``ctx.remove_target``.

``gather`` must return whether it *changed* the vertex (a changed vertex
schedules an update; an unchanged one stays quiet, which is what lets loops
converge).  ``gather`` must also be idempotent per ``(source, data)`` —
store per-source slots rather than accumulating blindly — because delivery
is at-least-once.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Protocol

from repro.streams.model import StreamTuple

MAIN = "main"


@dataclass
class VertexState:
    """Runtime state of one vertex in one loop."""

    vertex_id: Any
    value: Any = None
    targets: set = field(default_factory=set)
    last_commit_iteration: int = -1
    last_commit_time: float = float("-inf")

    def copy_for(self) -> "VertexState":
        return VertexState(self.vertex_id, copy.deepcopy(self.value),
                           set(self.targets), self.last_commit_iteration)


class VertexContext:
    """View of one vertex handed to the user program's callbacks."""

    def __init__(self, state: VertexState, loop: str, iteration: int) -> None:
        self._state = state
        self.loop = loop
        self.iteration = iteration
        self._emitted: dict[Any, Any] = {}

    # ------------------------------------------------------------ identity
    @property
    def vertex_id(self) -> Any:
        return self._state.vertex_id

    @property
    def value(self) -> Any:
        return self._state.value

    @value.setter
    def value(self, new_value: Any) -> None:
        self._state.value = new_value

    @property
    def targets(self) -> frozenset:
        return frozenset(self._state.targets)

    def get_loop(self) -> str:
        """Paper's ``getLoop()``: ``"main"`` or a branch-loop name."""
        return self.loop

    @property
    def in_main_loop(self) -> bool:
        return self.loop == MAIN

    # ---------------------------------------------------------- mutation
    def add_target(self, target: Any) -> None:
        self._state.targets.add(target)

    def remove_target(self, target: Any) -> None:
        self._state.targets.discard(target)

    def emit(self, target: Any, data: Any) -> None:
        """Queue ``data`` for ``target`` — only valid inside ``scatter``
        and only towards declared targets."""
        self._emitted[target] = data

    def emit_all(self, data: Any) -> None:
        for target in self._state.targets:
            self._emitted[target] = data

    def take_emitted(self) -> dict[Any, Any]:
        emitted, self._emitted = self._emitted, {}
        return emitted


@dataclass(frozen=True, slots=True)
class Delta:
    """One gather-able change: a routed stream input or nothing special."""

    kind: str
    payload: Any
    weight: int = 1


def replace_update(old: Any, new: Any) -> Any:
    """The last-wins combiner: a later update from the same producer
    supersedes the earlier one.  This is the only combiner that is sound
    for every program honouring the per-source-slot gather contract above
    (``gather`` replaces the producer's slot, so only the newest message
    matters) — in particular it preserves retractions, which idempotent
    merges like ``min`` would swallow."""
    del old
    return new


class VertexProgram:
    """User-defined vertex behaviour; subclass and override."""

    #: Optional associative combiner ``(older, newer) -> merged`` applied
    #: by the delta path when several updates from the same producer to
    #: the same consumer share one dispatch window.  ``None`` disables
    #: merging (updates still share an envelope, all are delivered).
    #: Programs whose ``gather`` keeps per-source slots should declare
    #: :func:`replace_update`; accumulating programs must leave ``None``.
    update_combiner: Callable[[Any, Any], Any] | None = None

    #: Optional :class:`~repro.core.dsl.VectorSpec` describing the
    #: program's update arithmetic in numpy-free terms.  Declaring one
    #: opts the program into the columnar regimes: the columnar store's
    #: gather kernels (``TornadoConfig.columnar``, when the spec's
    #: ``reduce`` has a kernel) and the columnar wire pack
    #: (``TornadoConfig.columnar_wire``, which only needs the declared
    #: ``dtype`` to type the value column — ``reduce`` values without a
    #: kernel, e.g. ``"sum"``, are fine there).  Scatter values that do
    #: not match the declared dtype fall back to scalar updates, so the
    #: declaration is a hint, never a correctness constraint.
    vector_spec = None

    def init(self, ctx: VertexContext) -> None:
        """Initialise a newly created vertex."""

    def gather(self, ctx: VertexContext, source: Any, delta: Any) -> bool:
        """Fold one input (``source is None``) or one producer update into
        the vertex; return True iff the vertex value changed."""
        raise NotImplementedError

    def scatter(self, ctx: VertexContext) -> None:
        """Emit updates to targets via ``ctx.emit`` / ``ctx.emit_all``."""
        raise NotImplementedError

    def activate_on_fork(self, ctx: VertexContext,
                         recently_updated: bool) -> bool:
        """Should this vertex self-activate when a branch loop forks?
        Default: only vertices the main loop updated since the last fork
        (plus any with pending inputs, handled by the runtime)."""
        return recently_updated

    def gather_cost(self, ctx: VertexContext, source: Any,
                    delta: Any) -> float | None:
        """Optional per-gather virtual-time cost override (seconds)."""
        return None

    def snapshot_value(self, value: Any) -> Any:
        """Copy a committed value for the versioned store; override when
        ``deepcopy`` is too slow for the value type."""
        return copy.deepcopy(value)


class InputRouter(Protocol):
    """Maps one stream tuple to the vertex deltas it induces."""

    def route(self, tup: StreamTuple) -> Iterable[tuple[Any, Delta]]:
        """Yield ``(vertex_id, delta)`` pairs."""
        ...


@dataclass
class Application:
    """Everything the runtime needs to host a workload."""

    program: VertexProgram
    router: InputRouter
    name: str = "app"
