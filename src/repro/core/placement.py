"""Submission-time resource-aware placement (R-Storm-style, PAPERS.md).

The MigrationPlanner (``repro.core.migration``) reacts to skew *after*
it has formed; this module attacks the other end of the problem: the
initial layout.  Following R-Storm, every schedulable component — here a
vertex — carries a **demand vector** (CPU / memory / bandwidth), either
declared by the program (:meth:`repro.core.vertex.VertexProgram.
resource_demand`) or estimated from a profiling pre-run over the stream
(:func:`profile_stream` routes the tuples exactly like the ingester
will and reads demand out of the induced gather counts and edge
fan-out).  The cluster side is a :class:`ClusterModel`: processors
pinned to nodes, per-processor capacity vectors, and a network-distance
function (same processor < same node < cross-node) mirroring the
simulator's fabric costs.

:class:`ResourceAwarePlacer` packs vertices onto processors greedily,
most demanding first — each vertex goes to the processor maximising
``affinity_gain - overload_penalty``, where the gain counts
distance-discounted traffic to already-placed neighbours and the
penalty charges projected capacity overshoot.  All orderings are
deterministic (ties break on ``str(vertex)`` / processor name), so the
plan is a pure function of its inputs and the placed run replays
byte-identically under one seed.

The loop closes with the critical-path analyser
(:mod:`repro.obs.critical_path`): :func:`refine_affinity` re-weights the
affinity of vertex pairs whose processor link dominated a previous
run's critical path, so a re-submitted job packs the hot link's
endpoints together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.config import TornadoConfig

#: Distance between two processors sharing a node (the simulator's
#: ``local_latency`` regime) relative to a cross-node hop of 1.0.
LOCAL_DISTANCE = 0.1
#: Overload penalty weight: capacity violations must dominate affinity
#: gains or a hub node would swallow the whole graph.
OVERLOAD_WEIGHT = 4.0


@dataclass(frozen=True)
class DemandVector:
    """Per-component resource demand (R-Storm's task vector)."""

    cpu: float = 1.0
    memory: float = 1.0
    bandwidth: float = 1.0

    def magnitude(self) -> float:
        """L1 size — the greedy placement order key."""
        return self.cpu + self.memory + self.bandwidth

    def plus(self, other: "DemandVector") -> "DemandVector":
        return DemandVector(self.cpu + other.cpu,
                            self.memory + other.memory,
                            self.bandwidth + other.bandwidth)

    def scaled(self, factor: float) -> "DemandVector":
        return DemandVector(self.cpu * factor, self.memory * factor,
                            self.bandwidth * factor)

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.cpu, self.memory, self.bandwidth)


ZERO_DEMAND = DemandVector(0.0, 0.0, 0.0)


class ClusterModel:
    """Processors, their nodes, per-processor capacity and distances."""

    def __init__(self, processors: list[str], node_of: Mapping[str, str],
                 capacities: Mapping[str, DemandVector] | None = None,
                 local_distance: float = LOCAL_DISTANCE,
                 remote_distance: float = 1.0) -> None:
        if not processors:
            raise ValueError("need at least one processor")
        self.processors = list(processors)
        self.node_of = dict(node_of)
        for name in self.processors:
            if name not in self.node_of:
                raise ValueError(f"no node for processor {name!r}")
        self.capacities = (dict(capacities) if capacities is not None
                           else {name: DemandVector()
                                 for name in self.processors})
        self.local_distance = local_distance
        self.remote_distance = remote_distance

    @classmethod
    def from_config(cls, config: TornadoConfig) -> "ClusterModel":
        """The cluster a :class:`~repro.core.job.TornadoJob` builds:
        ``proc-i`` on ``node(i % n_nodes)``, capacity scaled by
        ``config.placement_node_capacity`` (cycled; empty = uniform)."""
        processors = [f"proc-{i}" for i in range(config.n_processors)]
        node_of = {name: f"node{i % config.n_nodes}"
                   for i, name in enumerate(processors)}
        weights = config.placement_node_capacity
        capacities = {}
        for i, name in enumerate(processors):
            node_index = i % config.n_nodes
            scale = (weights[node_index % len(weights)]
                     if weights else 1.0)
            capacities[name] = DemandVector().scaled(scale)
        return cls(processors, node_of, capacities)

    def distance(self, a: str, b: str) -> float:
        """Network distance between two processors: 0 on the same
        processor, cheap on the same node, 1 across nodes."""
        if a == b:
            return 0.0
        if self.node_of.get(a) == self.node_of.get(b):
            return self.local_distance
        return self.remote_distance

    def capacity_share(self, processor: str) -> float:
        """This processor's fraction of total cluster capacity (by L1
        magnitude) — the load target the packer balances against."""
        total = sum(cap.magnitude() for cap in self.capacities.values())
        if total <= 0:
            return 1.0 / len(self.processors)
        return self.capacities[processor].magnitude() / total


# -------------------------------------------------------------- demands
def estimate_demands(edges: Iterable[tuple],
                     ) -> dict[Any, DemandVector]:
    """Degree-based demand estimate for an edge workload: gather work
    (CPU) follows in-degree, scatter traffic (bandwidth) follows
    out-degree, state (memory) is one slot per vertex."""
    in_deg: dict[Any, int] = {}
    out_deg: dict[Any, int] = {}
    for edge in edges:
        u, v = edge[0], edge[1]
        out_deg[u] = out_deg.get(u, 0) + 1
        in_deg[v] = in_deg.get(v, 0) + 1
        in_deg.setdefault(u, 0)
        out_deg.setdefault(v, 0)
    return {vertex: DemandVector(cpu=1.0 + in_deg[vertex],
                                 memory=1.0,
                                 bandwidth=float(out_deg[vertex]))
            for vertex in in_deg}


def _edge_endpoints(payload: Any) -> tuple[Any, Any] | None:
    """``(u, v)`` if the payload looks like an edge, else ``None``."""
    if isinstance(payload, (tuple, list)) and len(payload) in (2, 3):
        return payload[0], payload[1]
    return None


def profile_stream(app: Any, tuples: Iterable[Any]
                   ) -> tuple[dict[Any, DemandVector],
                              dict[tuple[Any, Any], float]]:
    """Profiling pre-run over a stream prefix: route every tuple exactly
    like the ingester will and derive per-vertex demand vectors plus the
    pairwise affinity (expected traffic) between vertices.

    Demand: CPU counts routed gathers (each delta is one gather at its
    vertex), bandwidth counts edge fan-out (each out-edge is recurring
    scatter traffic), memory is one state slot.  Affinity: one unit per
    edge between its endpoints — the traffic a cut of that edge turns
    into remote messages.  Programs may override the estimate per vertex
    via :meth:`~repro.core.vertex.VertexProgram.resource_demand`.
    """
    gathers: dict[Any, int] = {}
    fanout: dict[Any, int] = {}
    affinity: dict[tuple[Any, Any], float] = {}
    for tup in tuples:
        routed = list(app.router.route(tup))
        for vertex_id, delta in routed:
            gathers[vertex_id] = gathers.get(vertex_id, 0) + 1
            fanout.setdefault(vertex_id, 0)
            endpoints = _edge_endpoints(delta.payload)
            if endpoints is None:
                continue
            u, v = endpoints
            gathers.setdefault(v, gathers.get(v, 0))
            fanout[u] = fanout.get(u, 0) + 1
            fanout.setdefault(v, 0)
            key = (u, v) if str(u) <= str(v) else (v, u)
            affinity[key] = affinity.get(key, 0.0) + abs(
                float(getattr(tup, "weight", 1)) or 1.0)
    demands: dict[Any, DemandVector] = {}
    override = getattr(app.program, "resource_demand", None)
    for vertex in gathers:
        estimated = DemandVector(cpu=float(gathers[vertex]) or 1.0,
                                 memory=1.0,
                                 bandwidth=float(fanout.get(vertex, 0)))
        declared = override(vertex, estimated) if override else None
        demands[vertex] = declared if declared is not None else estimated
    return demands, affinity


def refine_affinity(affinity: Mapping[tuple[Any, Any], float],
                    prior_owner: Any,
                    link_scores: Mapping[tuple[str, str], float],
                    boost: float = 4.0
                    ) -> dict[tuple[Any, Any], float]:
    """Critical-path feedback for a re-submitted job: scale up the
    affinity of vertex pairs whose processor link dominated the previous
    run's critical path (``link_scores`` from
    :meth:`repro.obs.critical_path.CriticalPathReport.link_scores`), so
    the next plan packs those endpoints together first.  ``prior_owner``
    maps a vertex to the processor it ran on in the profiled run."""
    refined: dict[tuple[Any, Any], float] = {}
    for (u, v), weight in affinity.items():
        pu, pv = prior_owner(u), prior_owner(v)
        score = max(link_scores.get((pu, pv), 0.0),
                    link_scores.get((pv, pu), 0.0))
        refined[(u, v)] = weight * (1.0 + boost * score)
    return refined


# ----------------------------------------------------------------- plan
@dataclass
class PlacementPlan:
    """The output of one packing run, ready to pin onto a partition."""

    assignments: dict[Any, str]
    cluster: ClusterModel
    #: Distance-weighted affinity cut under :attr:`assignments`.
    cut_cost: float
    #: Same cut under the baseline (hash) layout, for the quality ratio.
    baseline_cut_cost: float
    #: Aggregate demand packed per processor.
    utilization: dict[str, DemandVector] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        """Baseline cut / planned cut (≥ 1 when the plan helps)."""
        if self.cut_cost <= 0:
            return float("inf") if self.baseline_cut_cost > 0 else 1.0
        return self.baseline_cut_cost / self.cut_cost

    def pins(self) -> list[tuple[Any, str]]:
        """Deterministically ordered ``(vertex, processor)`` pairs."""
        return sorted(self.assignments.items(), key=lambda kv: str(kv[0]))

    def apply(self, partition: Any) -> int:
        """Pin the plan onto a :class:`~repro.core.partition.
        PartitionScheme` (one epoch bump); returns the new epoch."""
        return partition.reassign_batch(self.pins())


class ResourceAwarePlacer:
    """Greedy R-Storm packer: most demanding vertex first, each onto the
    processor with the best affinity-minus-overload score."""

    def __init__(self, cluster: ClusterModel,
                 affinity_weight: float = 1.0,
                 balance_weight: float = 1.0) -> None:
        self.cluster = cluster
        self.affinity_weight = affinity_weight
        self.balance_weight = balance_weight

    def plan(self, demands: Mapping[Any, DemandVector],
             affinity: Mapping[tuple[Any, Any], float] | None = None,
             baseline: Mapping[Any, str] | None = None) -> PlacementPlan:
        affinity = dict(affinity or {})
        neighbours: dict[Any, list[tuple[Any, float]]] = {}
        for (u, v), weight in affinity.items():
            neighbours.setdefault(u, []).append((v, weight))
            neighbours.setdefault(v, []).append((u, weight))
        total_demand = sum(d.magnitude() for d in demands.values())
        targets = {name: max(total_demand
                             * self.cluster.capacity_share(name), 1e-9)
                   for name in self.cluster.processors}
        used: dict[str, float] = {name: 0.0
                                  for name in self.cluster.processors}
        utilization: dict[str, DemandVector] = {
            name: ZERO_DEMAND for name in self.cluster.processors}
        assignments: dict[Any, str] = {}
        order = sorted(demands,
                       key=lambda v: (-demands[v].magnitude(), str(v)))
        remote = self.cluster.remote_distance
        for vertex in order:
            demand = demands[vertex].magnitude()
            best_name = None
            best_score = None
            for name in self.cluster.processors:
                gain = 0.0
                for other, weight in neighbours.get(vertex, ()):
                    owner = assignments.get(other)
                    if owner is None:
                        continue
                    gain += weight * (remote
                                      - self.cluster.distance(name, owner))
                overshoot = max(0.0, (used[name] + demand - targets[name])
                                / targets[name])
                slack = (targets[name] - used[name]) / targets[name]
                score = (self.affinity_weight * gain
                         + self.balance_weight * slack
                         - OVERLOAD_WEIGHT * overshoot)
                if best_score is None or score > best_score \
                        or (score == best_score and name < best_name):
                    best_score, best_name = score, name
            assignments[vertex] = best_name
            used[best_name] += demand
            utilization[best_name] = utilization[best_name].plus(
                demands[vertex])
        cut = self._cut_cost(assignments, affinity)
        baseline_cut = (self._cut_cost(baseline, affinity)
                        if baseline is not None else cut)
        return PlacementPlan(assignments=assignments,
                             cluster=self.cluster,
                             cut_cost=cut,
                             baseline_cut_cost=baseline_cut,
                             utilization=utilization)

    def _cut_cost(self, assignments: Mapping[Any, str],
                  affinity: Mapping[tuple[Any, Any], float]) -> float:
        cost = 0.0
        for (u, v), weight in affinity.items():
            pu, pv = assignments.get(u), assignments.get(v)
            if pu is None or pv is None:
                continue
            cost += weight * self.cluster.distance(pu, pv)
        return cost


def plan_for_stream(app: Any, config: TornadoConfig, partition: Any,
                    tuples: Iterable[Any],
                    link_scores: Mapping[tuple[str, str], float]
                    | None = None) -> PlacementPlan:
    """The job-side entry point: profile the stream prefix, build the
    cluster model from the config, and pack — optionally refined by a
    previous run's critical-path link scores (re-submission path)."""
    demands, affinity = profile_stream(app, tuples)
    if link_scores:
        affinity = refine_affinity(affinity, partition.hash_home,
                                   link_scores)
    cluster = ClusterModel.from_config(config)
    baseline = {vertex: partition.hash_home(vertex)
                for vertex in demands}
    placer = ResourceAwarePlacer(cluster)
    return placer.plan(demands, affinity, baseline=baseline)
