"""Numpy interpretation of algebra programs (the columnar apply path).

Two layers, both gated by ``TornadoConfig.columnar``:

* :func:`make_combine_kernel` — an exact numpy re-interpretation of an
  :class:`~repro.core.dsl.Algebra` whose :class:`VectorSpec` declares
  its arithmetic.  The processor's per-update gather keeps its event
  ordering, ``changed`` flags and trace stream (those are
  digest-visible), but the slot reduction inside it runs as one array
  reduce once a vertex has enough offers.  Exactness matters more than
  elegance: float64 min/max over the same operands is bit-identical to
  Python ``min``/``max``, results are unboxed back to plain Python
  scalars before they touch vertex state, and anything the kernel
  cannot represent falls back to the scalar closure — which is why the
  flight-recorder digest oracle holds with the kernel on.

* :class:`BulkRunner` — whole-graph sweeps for the synchronous bulk
  regime (``repro.bench scale``): a full iteration of PageRank / SSSP /
  connected components is a handful of ``bincount`` /
  ``np.minimum.at`` passes over edge arrays, and each iteration's
  changed vertices commit to the versioned store as one column slab
  (``put_columns``).  This is where the per-vertex Python object cost
  actually disappears; the protocol path above only borrows the
  arithmetic.  The runner is deliberately clock-free (``repro.core``
  must stay deterministic); the bench harness times the yielded steps.

This module is the one place in ``repro.core`` allowed to import numpy
at module top level (lint-enforced) — everything else reaches it lazily
through the ``columnar`` gate.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.core.dsl import Algebra

#: Below this many slots the scalar reduction wins on constant factors;
#: above it the array reduce takes over.  Either way the value computed
#: is bit-identical, so the threshold is a pure tuning knob.
VECTOR_MIN_SLOTS = 8

_REDUCERS = {"min": np.minimum, "max": np.maximum}
_DTYPES = {"float64": np.float64, "bool": np.bool_, "int64": np.int64}


def make_combine_kernel(algebra: Algebra):
    """Exact numpy ``combine`` for an algebra with a vector spec, or
    ``None`` when the algebra declares none (or an unknown shape).

    The returned closure is a drop-in for ``algebra.combine``: same
    arguments, bit-identical results, plain Python return types.
    """
    spec = algebra.vector_spec
    if spec is None:
        return None
    if spec.reduce not in ("min", "max", "any") or spec.dtype not in _DTYPES:
        return None
    scalar = algebra.combine
    dtype = _DTYPES[spec.dtype]
    source = spec.source
    source_value = spec.source_value
    cap = spec.cap
    empty = spec.empty
    include_self = spec.include_self

    if spec.reduce == "any":
        def combine(vertex_id: Any, slots: dict) -> Any:
            if source is not None and vertex_id == source:
                return source_value
            count = len(slots)
            if count < VECTOR_MIN_SLOTS:
                return scalar(vertex_id, slots)
            try:
                offers = np.fromiter(slots.values(), dtype=dtype,
                                     count=count)
            except (TypeError, ValueError):
                return scalar(vertex_id, slots)
            return bool(offers.any())
        return combine

    reducer = np.minimum if spec.reduce == "min" else np.maximum

    def combine(vertex_id: Any, slots: dict) -> Any:
        if source is not None and vertex_id == source:
            return source_value
        count = len(slots)
        if count < VECTOR_MIN_SLOTS:
            return scalar(vertex_id, slots)
        try:
            offers = np.fromiter(slots.values(), dtype=dtype, count=count)
        except (TypeError, ValueError):
            return scalar(vertex_id, slots)
        # .item() unboxes to the exact Python scalar (float64 round-trips
        # bit for bit) — numpy scalars must never reach vertex state,
        # their repr poisons the canonical digest.
        best = reducer.reduce(offers).item()
        if include_self:
            best = min(best, vertex_id) if spec.reduce == "min" \
                else max(best, vertex_id)
        if cap is not None and best >= cap:
            return empty
        return best

    return combine


class BulkRunner:
    """Whole-graph synchronous sweeps over a columnar store.

    Operates on dense int vertex ids and flat edge arrays (``src``,
    ``dst``, optional ``weights``).  Each ``*_sweep`` generator yields
    ``(iteration, changed_ids, values)`` steps; :meth:`apply` commits a
    step to the store as one column slab.  Splitting compute from apply
    keeps this module clock-free and lets the bench time (and A/B) the
    state-apply in isolation — the acceptance metric of the scale
    bench.
    """

    def __init__(self, store: Any, loop: str = "main") -> None:
        self.store = store
        self.loop = loop

    def apply(self, iteration: int, changed_ids: np.ndarray,
              values: np.ndarray) -> int:
        """Commit one sweep's changed vertices as a column slab.  Works
        against any store layout (object layouts fall back to
        element-wise puts inside ``put_columns``)."""
        return self.store.put_columns(self.loop, changed_ids, iteration,
                                      values)

    def final_values(self) -> dict[int, Any]:
        """Read back the newest committed value per vertex (columnar
        stores answer via the vectorized snapshot)."""
        if getattr(self.store, "columnar", False):
            keys, values = self.store.snapshot_columns(self.loop)
            return dict(zip(keys.tolist(), values.tolist()))
        return self.store.snapshot(self.loop)

    # ------------------------------------------------------------ sweeps
    def pagerank_sweep(self, n_vertices: int, src: np.ndarray,
                       dst: np.ndarray, damping: float = 0.85,
                       sweeps: int = 10
                       ) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Power iteration: one ``bincount`` scatter-add per sweep.
        Every vertex's rank moves every sweep, so each step yields the
        full column."""
        out_degree = np.bincount(src, minlength=n_vertices
                                 ).astype(np.float64)
        ranks = np.full(n_vertices, 1.0 / n_vertices)
        all_ids = np.arange(n_vertices, dtype=np.int64)
        dangling_mask = out_degree == 0.0
        safe_degree = np.where(dangling_mask, 1.0, out_degree)
        for iteration in range(sweeps):
            contribution = ranks / safe_degree
            inflow = np.bincount(dst, weights=contribution[src],
                                 minlength=n_vertices)
            dangling = float(ranks[dangling_mask].sum())
            ranks = ((1.0 - damping) / n_vertices
                     + damping * (inflow + dangling / n_vertices))
            yield iteration, all_ids, ranks

    def sssp_sweep(self, n_vertices: int, src: np.ndarray,
                   dst: np.ndarray, weights: np.ndarray, root: int,
                   max_sweeps: int | None = None
                   ) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Bellman-Ford rounds: one ``np.minimum.at`` relaxation over
        every edge per sweep; yields only the vertices whose distance
        improved.  Stops at the fixed point."""
        distance = np.full(n_vertices, np.inf)
        distance[root] = 0.0
        yield 0, np.array([root], dtype=np.int64), distance[[root]]
        iteration = 0
        while max_sweeps is None or iteration < max_sweeps:
            iteration += 1
            relaxed = distance.copy()
            np.minimum.at(relaxed, dst, distance[src] + weights)
            changed = relaxed < distance
            if not changed.any():
                return
            distance = relaxed
            yield (iteration, np.nonzero(changed)[0].astype(np.int64),
                   distance[changed])

    def components_sweep(self, n_vertices: int, src: np.ndarray,
                         dst: np.ndarray, max_sweeps: int | None = None
                         ) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Min-label propagation over an undirected view of the edges
        (labels flow both ways, as the DSL's ``min_label`` program does
        on an undirected router)."""
        labels = np.arange(n_vertices, dtype=np.int64)
        yield 0, labels.copy(), labels.copy()
        iteration = 0
        while max_sweeps is None or iteration < max_sweeps:
            iteration += 1
            proposed = labels.copy()
            np.minimum.at(proposed, dst, labels[src])
            np.minimum.at(proposed, src, labels[dst])
            changed = proposed < labels
            if not changed.any():
                return
            labels = proposed
            yield (iteration, np.nonzero(changed)[0].astype(np.int64),
                   labels[changed])
