"""The master (paper §5.1-5.2).

Collects progress from all processors, detects iteration termination and
loop convergence, manages branch-loop forks/merges, and coordinates
recovery.  Everything the master must survive a crash with — the terminated
frontiers and the branch registry — lives in shared durable state (the
paper keeps the analogous metadata in the shared database), so a restarted
master rebuilds its counters from the processors' cumulative reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.config import TornadoConfig
from repro.core.messages import (MAIN_LOOP, BranchDone, ForkBranch,
                                 IterationTerminated, MergeBranch,
                                 MigrateDone, MigrateState,
                                 PauseIngest, PeerRecovered,
                                 ProcessorRecovered,
                                 ProgressReport, QueryRejected,
                                 QueryRequest, RecoverLoops, Repartition,
                                 ResumeIngest, StopLoop, branch_name)
from repro.core.migration import MigrationPlanner
from repro.core.partition import PartitionScheme
from repro.core.progress import ProgressTracker
from repro.core.transport import ReliableEndpoint
from repro.simulator import Actor, Network, Simulator
from repro.storage import CheckpointManifest


@dataclass
class BranchRecord:
    """Durable record of one branch loop."""

    loop: str
    query_id: int
    issued_at: float
    forked_at: float
    fork_iteration: int
    inputs_at_fork: int
    full_activation: bool
    done: bool = False
    merged: bool = False
    converged_at: float | None = None
    converged_iteration: int | None = None


@dataclass
class MigrationRecord:
    """Durable record of one in-flight live migration: the moves cut at
    ``epoch`` and the vertices whose adoption was confirmed so far."""

    epoch: int
    moves: tuple[tuple[Any, str, str], ...]
    done: set = field(default_factory=set)

    @property
    def complete(self) -> bool:
        return all(vertex in self.done for vertex, _s, _t in self.moves)


@dataclass
class MasterDurableState:
    """Master metadata persisted in the shared database."""

    next_branch_id: int = 1
    branches: dict[str, BranchRecord] = field(default_factory=dict)
    seen_queries: set[int] = field(default_factory=set)
    #: In-flight live migration (None when the layout is settled).
    migration: MigrationRecord | None = None
    #: True between PauseIngest and the stop-the-world rebalance: a
    #: recovered master must send ResumeIngest or ingest stalls forever.
    rebalance_pending: bool = False


class Master(Actor):
    """Progress collection, termination detection and loop management."""

    def __init__(self, sim: Simulator, name: str, config: TornadoConfig,
                 network: Network, processors: list[str],
                 ingester_name: str, manifest: CheckpointManifest,
                 durable: MasterDurableState,
                 partition: PartitionScheme | None = None) -> None:
        super().__init__(sim, name)
        self.config = config
        self.network = network
        self.processors = list(processors)
        self.ingester_name = ingester_name
        self.manifest = manifest
        self.durable = durable
        self.partition = partition
        self.transport = ReliableEndpoint(
            sim, network, name, timeout=config.retransmit_timeout)
        self.trackers: dict[str, ProgressTracker] = {
            MAIN_LOOP: ProgressTracker(MAIN_LOOP, self.processors)}
        #: loop -> [(iteration, virtual time it terminated)]
        self.termination_times: dict[str, list[tuple[int, float]]] = {}
        # ------------------------------------------------ load balancing
        self._busy: dict[str, float] = {}
        self._hot: dict[str, tuple] = {}
        self._rebalance_waiting = False
        self._last_rebalance = float("-inf")
        self.rebalances = 0
        self.planner = MigrationPlanner(config)
        # Queries queued by admission control (in-memory: a master crash
        # drops them and the ingester's retransmissions re-enter them).
        self._query_backlog: list[QueryRequest] = []
        self.queries_shed = 0
        #: Effective branch-admission cap.  Starts at the config value; a
        #: JobManager tightens it to the tenant's quota via
        #: :meth:`set_branch_limit` (never loosened past the config).
        self.branch_limit = config.max_concurrent_branches

    # ------------------------------------------------------------ dispatch
    def handle(self, message: Any, sender: str) -> float:
        payload = self.transport.on_message(message, sender)
        if payload is None:
            return self.config.master_cost
        if isinstance(payload, ProgressReport):
            return self._handle_report(payload)
        if isinstance(payload, QueryRequest):
            return self._handle_query(payload)
        if isinstance(payload, ProcessorRecovered):
            return self._handle_processor_recovered(payload)
        if isinstance(payload, MigrateDone):
            return self._handle_migrate_done(payload)
        return self.config.master_cost

    # -------------------------------------------------------------- reports
    def _handle_report(self, report: ProgressReport) -> float:
        tracker = self.trackers.get(report.loop)
        if tracker is None:
            record = self.durable.branches.get(report.loop)
            if record is None or record.done:
                return self.config.master_cost
            # A report for a live branch we lost track of (master restart
            # between fork and convergence): resurrect its tracker.
            tracker = self._make_tracker(report.loop)
        if not tracker.apply_report(report):
            return self.config.master_cost
        terminated = tracker.advance()
        if terminated:
            times = self.termination_times.setdefault(report.loop, [])
            for iteration in terminated:
                self.manifest.record_terminated(report.loop, iteration)
                times.append((iteration, self.sim.now))
                if self.sim.trace.enabled:
                    self.sim.trace.record(self.sim.now, "progress",
                                          "terminated", actor=self.name,
                                          loop=report.loop,
                                          iteration=iteration)
            self.sim.metrics.counter("core.iterations_terminated").inc(
                len(terminated))
            self._broadcast(IterationTerminated(report.loop, terminated[-1]))
        record = self.durable.branches.get(report.loop)
        if record is not None and not record.done and tracker.converged:
            self._finish_branch(record, tracker)
        if report.loop == MAIN_LOOP:
            self._busy[report.processor] = report.busy_time
            if report.hot_vertices:
                self._hot[report.processor] = report.hot_vertices
            self.planner.observe(report.processor, report.busy_time,
                                 self.sim.now, report.vertex_load)
            self._maybe_rebalance()
        return self.config.master_cost

    # ---------------------------------------------------- load balancing
    def _maybe_rebalance(self) -> None:
        if not self.config.rebalance_enabled or self.partition is None:
            return
        if self.config.rebalance_mode == "live":
            self._maybe_migrate()
            return
        if self._rebalance_waiting:
            # Waiting for the main loop to quiesce before moving state.
            if self.trackers[MAIN_LOOP].converged:
                self._perform_rebalance()
            return
        if self.sim.now - self._last_rebalance < \
                self.config.rebalance_cooldown:
            return
        if any(not record.done
               for record in self.durable.branches.values()):
            return  # never move vertices under live branch loops
        if self._busy_gap_exceeded():
            self._rebalance_waiting = True
            # Durable marker: a master crash between here and the
            # rebalance must not leave the ingester paused forever.
            self.durable.rebalance_pending = True
            self.transport.send(self.ingester_name, PauseIngest())

    def _busy_gap_exceeded(self) -> bool:
        if len(self._busy) < len(self.processors):
            return False
        hottest = max(self._busy.values())
        coldest = min(self._busy.values())
        return (hottest - coldest > self.config.rebalance_min_gap
                and hottest > self.config.rebalance_factor
                * max(coldest, 1e-9))

    def _perform_rebalance(self) -> None:
        self._rebalance_waiting = False
        self.durable.rebalance_pending = False
        self._last_rebalance = self.sim.now
        # Re-validate on the stats as of *now*: the snapshot that armed
        # the pause may be stale after the quiesce wait (e.g. a processor
        # crashed meanwhile and its counters were invalidated).
        moves: tuple = ()
        if self._busy_gap_exceeded():
            hot_processor = max(self._busy, key=self._busy.get)
            cold_processor = min(self._busy, key=self._busy.get)
            moves = tuple(
                (vertex, hot_processor, cold_processor)
                for vertex in self._hot.get(hot_processor, ())
                if self.partition.owner(vertex) == hot_processor)
        if moves:
            self.partition.reassign_batch(
                [(vertex, target) for vertex, _source, target in moves])
            self.rebalances += 1
            self.sim.metrics.counter("core.rebalances").inc()
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, "loop", "rebalance",
                                      actor=self.name,
                                      moves=len(moves),
                                      epoch=self.partition.epoch)
            self._broadcast(Repartition(self.partition.epoch, moves))
        self.transport.send(self.ingester_name, ResumeIngest())

    # ---------------------------------------------------- live migration
    def _maybe_migrate(self) -> None:
        if self.durable.migration is not None:
            return  # one migration in flight at a time
        if self.sim.now - self._last_rebalance < \
                self.config.rebalance_cooldown:
            return
        if any(not record.done
               for record in self.durable.branches.values()):
            return  # never move vertices under live branch loops
        moves = self.planner.plan(self.processors, self.partition.owner)
        if not moves:
            return
        epoch = self.partition.reassign_batch(
            [(vertex, target) for vertex, _source, target in moves])
        self.partition.mark_migrating(epoch, moves)
        self.durable.migration = MigrationRecord(epoch, moves)
        self.rebalances += 1
        self._last_rebalance = self.sim.now
        self.sim.metrics.counter("core.migrations").inc()
        self.sim.metrics.counter("core.vertices_migration_planned").inc(
            len(moves))
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "migration", "plan",
                                  actor=self.name, moves=len(moves),
                                  epoch=epoch)
        self._broadcast(Repartition(epoch, moves), tag="migration")

    def _handle_migrate_done(self, msg: MigrateDone) -> float:
        record = self.durable.migration
        if record is None or msg.epoch != record.epoch:
            return self.config.master_cost
        record.done.update(msg.vertices)
        if record.complete:
            self.durable.migration = None
            # Adopters clear their own entries; sweep any leftovers from
            # handoffs the layout outran.
            self.partition.clear_migrating_epoch(record.epoch)
            self._last_rebalance = self.sim.now
            self.sim.metrics.counter("core.migrations_completed").inc()
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, "migration",
                                      "complete", actor=self.name,
                                      epoch=record.epoch,
                                      moves=len(record.moves))
            # Queries deferred while vertices were in flight can fork now.
            self._drain_query_backlog()
        return self.config.master_cost

    def _make_tracker(self, loop: str) -> ProgressTracker:
        tracker = ProgressTracker(loop, self.processors)
        tracker.frontier = self.manifest.restart_iteration(loop) + 1
        self.trackers[loop] = tracker
        return tracker

    # -------------------------------------------------------------- queries
    def _active_branch_count(self) -> int:
        return sum(1 for record in self.durable.branches.values()
                   if not record.done)

    def _handle_query(self, query: QueryRequest) -> float:
        if query.query_id in self.durable.seen_queries:
            return self.config.master_cost
        if self.durable.migration is not None:
            # A branch forked mid-handoff would snapshot a main loop with
            # vertices owned by nobody; defer until the layout settles.
            if all(q.query_id != query.query_id
                   for q in self._query_backlog):
                self._query_backlog.append(query)
            return self.config.master_cost
        if self._active_branch_count() >= self.branch_limit:
            if self.config.branch_admission == "shed":
                self.durable.seen_queries.add(query.query_id)
                self.queries_shed += 1
                self.transport.send(self.ingester_name, QueryRejected(
                    query_id=query.query_id,
                    issued_at=query.issued_at,
                    reason="branch-loop capacity exhausted"))
            elif all(q.query_id != query.query_id
                     for q in self._query_backlog):
                self._query_backlog.append(query)
            return self.config.master_cost
        return self._start_branch(query)

    def _start_branch(self, query: QueryRequest) -> float:
        self.durable.seen_queries.add(query.query_id)
        branch_id = self.durable.next_branch_id
        self.durable.next_branch_id += 1
        loop = branch_name(branch_id)
        main_tracker = self.trackers[MAIN_LOOP]
        record = BranchRecord(
            loop=loop,
            query_id=query.query_id,
            issued_at=query.issued_at,
            forked_at=self.sim.now,
            fork_iteration=main_tracker.last_terminated,
            inputs_at_fork=main_tracker.total_inputs(),
            full_activation=query.full_activation,
        )
        self.durable.branches[loop] = record
        self._make_tracker(loop)
        self.sim.metrics.counter("core.branches_forked").inc()
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "loop", "fork",
                                  actor=self.name, loop=loop,
                                  query=query.query_id,
                                  iteration=record.fork_iteration)
        self._broadcast(ForkBranch(
            loop=loop,
            fork_iteration=record.fork_iteration,
            previous_fork_iteration=-1,
            full_activation=query.full_activation,
        ))
        return self.config.master_cost

    # ------------------------------------------------------------ branches
    def _finish_branch(self, record: BranchRecord,
                       tracker: ProgressTracker) -> None:
        record.done = True
        record.converged_at = self.sim.now
        record.converged_iteration = tracker.last_terminated
        self.sim.metrics.counter("core.branches_converged").inc()
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "loop", "converged",
                                  actor=self.name, loop=record.loop,
                                  iteration=record.converged_iteration)
        should_merge = self.config.merge_policy == "always"
        if self.config.merge_policy == "if_quiescent":
            main_inputs = self.trackers[MAIN_LOOP].total_inputs()
            should_merge = main_inputs == record.inputs_at_fork
        if should_merge:
            record.merged = True
            target = (self.trackers[MAIN_LOOP].frontier
                      + self.config.delay_bound)
            self._broadcast(MergeBranch(record.loop, target))
        self._broadcast(StopLoop(record.loop))
        self.trackers.pop(record.loop, None)
        self.transport.send(self.ingester_name, BranchDone(
            loop=record.loop,
            query_id=record.query_id,
            converged_iteration=record.converged_iteration,
            issued_at=record.issued_at,
        ))
        # A slot opened up: admit the oldest queued query, if any.
        self._drain_query_backlog()

    def _drain_query_backlog(self) -> None:
        while (self._query_backlog
               and self.durable.migration is None
               and self._active_branch_count() < self.branch_limit):
            self._start_branch(self._query_backlog.pop(0))

    def set_branch_limit(self, limit: int) -> None:
        """Tighten the branch-admission cap (per-tenant quota); the config
        value stays the ceiling."""
        self.branch_limit = min(limit, self.config.max_concurrent_branches)

    # ------------------------------------------------------------ recovery
    def _handle_processor_recovered(self, msg: ProcessorRecovered) -> float:
        self.sim.metrics.counter("core.processor_recoveries").inc()
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "loop", "recovered",
                                  actor=self.name,
                                  processor=msg.processor)
        for tracker in self.trackers.values():
            tracker.forget_all()
        # Its busy counter restarted and its hot set is gone: stale load
        # snapshots must not drive the next rebalance decision.
        self._busy.pop(msg.processor, None)
        self._hot.pop(msg.processor, None)
        self.planner.forget(msg.processor)
        loops = [(MAIN_LOOP, self.manifest.restart_iteration(MAIN_LOOP))]
        for loop, record in self.durable.branches.items():
            if not record.done:
                loops.append((loop, self.manifest.restart_iteration(loop)))
        self.transport.send(msg.processor, RecoverLoops(tuple(loops)))
        # Re-fork live branches on the recovered processor: its original
        # ForkBranch may have died with the crash (and, if it was never
        # acknowledged, its retransmission would lose the race against
        # the recovery shell RecoverLoops builds).  The processor merges
        # a re-fork into whatever branch state recovery restored.
        for loop, record in self.durable.branches.items():
            if not record.done:
                self.transport.send(msg.processor, ForkBranch(
                    loop=loop,
                    fork_iteration=record.fork_iteration,
                    previous_fork_iteration=-1,
                    full_activation=record.full_activation))
        for peer in self.processors:
            if peer != msg.processor:
                self.transport.send(peer, PeerRecovered(msg.processor))
        # The ingester replays its input journal for the recovered
        # processor: inputs acknowledged after the restored checkpoint
        # died with the crash and nothing else will resend them.
        self.transport.send(self.ingester_name,
                            PeerRecovered(msg.processor))
        self._complete_migration_for(msg.processor)
        if self.durable.migration is not None:
            # A crash can swallow a handoff notice (e.g. the target died
            # with an unacknowledged MigrateDone in its transport).
            # Re-drive the round: sources re-release what they no longer
            # hold (an empty-handed MigrateState) and targets re-confirm
            # what they already adopted — both sides are idempotent.
            record = self.durable.migration
            self._broadcast(Repartition(record.epoch, record.moves),
                            tag="migration")
        return self.config.master_cost

    def _complete_migration_for(self, crashed: str) -> None:
        """Administratively finish in-flight moves whose source died: the
        source's live copy is gone, but its last committed version is in
        the shared store, so the target can adopt from there.  The work
        the source gathered for those vertices and never committed is
        re-derived the same way plain crash recovery re-derives it — the
        ingester replays its journal and peers re-scatter, aimed at the
        *adopting* processor."""
        record = self.durable.migration
        if record is None:
            return
        pending: dict[str, list[Any]] = {}
        for vertex, source, target in record.moves:
            if vertex not in record.done and source == crashed:
                pending.setdefault(target, []).append(vertex)
        for target in sorted(pending):
            vertices = pending[target]
            self.transport.send(target, MigrateState(
                record.epoch,
                tuple((vertex, True) for vertex in vertices)),
                tag="migration")
            self.transport.send(self.ingester_name, PeerRecovered(target))
            for peer in self.processors:
                if peer != target:
                    self.transport.send(peer, PeerRecovered(target))
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, "migration",
                                      "admin_complete", actor=self.name,
                                      source=crashed, target=target,
                                      vertices=len(vertices))

    def on_failure(self) -> None:
        self.transport.clear()
        self.trackers = {}
        # Load stats and the pause-mode state machine are in-memory only;
        # a restarted master restarts the observation window from scratch.
        self._rebalance_waiting = False
        self._busy = {}
        self._hot = {}
        self.planner = MigrationPlanner(self.config)

    def on_recover(self) -> None:
        """Rebuild from durable state; cumulative processor reports will
        repopulate the counters."""
        self._make_tracker(MAIN_LOOP)
        for loop, record in self.durable.branches.items():
            if not record.done:
                self._make_tracker(loop)
        for loop in self.trackers:
            last = self.manifest.restart_iteration(loop)
            if last >= 0:
                self._broadcast(IterationTerminated(loop, last))
        if self.durable.rebalance_pending:
            # Crashed between PauseIngest and the rebalance itself: the
            # pause state machine died with us, so unblock ingest.
            self.durable.rebalance_pending = False
            self._rebalance_waiting = False
            self.transport.send(self.ingester_name, ResumeIngest())
        migration = self.durable.migration
        if migration is not None:
            # Re-drive the in-flight handoff: the notice is idempotent on
            # both sides (sources re-release what they still hold, targets
            # re-confirm what they already adopted).
            self._broadcast(Repartition(migration.epoch, migration.moves),
                            tag="migration")

    # -------------------------------------------------------------- helpers
    def total_busy_time(self) -> float:
        """Cumulative busy time across all processors as last reported
        (the JobManager's per-tenant load signal)."""
        return sum(self._busy.values())

    def busy_rates(self) -> dict[str, float]:
        """The planner's per-processor windowed busy rates."""
        return self.planner.rates()

    def apply_criticality(self, scores: dict[str, float]) -> None:
        """Feed per-processor critical-path scores (from
        :meth:`repro.obs.critical_path.CriticalPathReport.
        processor_scores`) into the migration planner's cost model — a
        no-op unless ``config.migration_criticality_weight > 0``.  The
        scores are in-memory only (like the rest of the load stats), so a
        master restart drops them."""
        self.planner.set_criticality(scores)

    def _broadcast(self, payload: Any, tag: str | None = None) -> None:
        for processor in self.processors:
            self.transport.send(processor, payload, tag=tag)
