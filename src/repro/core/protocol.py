"""The three-phase update protocol (paper §4.2, Figure 3) as a pure state
machine.

One :class:`VertexProtocol` instance tracks the protocol state of one vertex
in one loop.  The surrounding processor feeds it events (update gathered,
prepare received, ...) and executes the returned :class:`Action` objects
(messages to send, commits to perform).  Keeping the machine pure makes the
trickiest part of the paper unit-testable without the simulator.

Protocol recap — the update of a vertex ``x`` runs in three phases:

1. *Update*: ``x`` gathers an input or an update, advancing its iteration
   to ``max(τ(x), τ(update)+1)``.
2. *Prepare*: once ``x`` is not involved in any producer's update
   (``prepare_list`` empty), it takes a Lamport timestamp and asks every
   consumer for its iteration number (PREPARE).  A consumer acknowledges
   unless its own in-flight update happens *before* ``x``'s, in which case
   the reply is pended until the consumer commits — the Lamport order makes
   the induced waits acyclic (no deadlock, no starvation).
3. *Commit*: with all ACKs in, ``x`` commits at the maximum of its own and
   all consumers' iteration numbers, scatters its new value (UPDATE), and
   answers the PREPAREs it pended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.lamport import LamportClock, Timestamp
from repro.errors import ProtocolError


# ------------------------------------------------------------------ actions
@dataclass(frozen=True, slots=True)
class SendPrepare:
    consumer: Any
    update_time: Timestamp


@dataclass(frozen=True, slots=True)
class SendAck:
    producer: Any
    iteration: int


@dataclass(frozen=True, slots=True)
class CommitUpdate:
    """Commit the vertex's pending change at ``iteration``: the processor
    writes the version and scatters UPDATEs to all consumers."""

    iteration: int


Action = SendPrepare | SendAck | CommitUpdate


class VertexProtocol:
    """Protocol state of one vertex in one loop."""

    __slots__ = ("vertex", "iteration", "update_time", "prepare_list",
                 "waiting_list", "pending_list", "dirty", "commits",
                 "prepares_sent", "gathered_from")

    def __init__(self, vertex: Any, iteration: int = 0) -> None:
        self.vertex = vertex
        self.iteration = iteration
        self.update_time: Timestamp | None = None
        # Producers that PREPAREd and have not committed yet (we are
        # "involved in their updates" and may not start our own).
        self.prepare_list: set[Any] = set()
        # Consumers whose ACK we are waiting for.
        self.waiting_list: set[Any] = set()
        # Producers whose PREPARE we pended until our own commit.
        self.pending_list: list[Any] = []
        # True when gathered changes await a commit.
        self.dirty = False
        self.commits = 0
        self.prepares_sent = 0
        # Highest update iteration gathered per producer.  The delta
        # path's stale-update guard reads this for last-wins algebras:
        # the delay-buffer release can reorder a parked update behind a
        # fresher inline-applied one, and replaying the stale offer would
        # clobber the newer slot value.  Legacy never consults it.
        self.gathered_from: dict[Any, int] = {}

    # ------------------------------------------------------------ queries
    @property
    def preparing(self) -> bool:
        return self.update_time is not None

    @property
    def blocked(self) -> bool:
        """Dirty but unable to start its update yet."""
        return self.dirty and not self.preparing and bool(self.prepare_list)

    def has_pending_work(self) -> bool:
        return self.dirty or self.preparing

    # ------------------------------------------------------------- events
    def gathered_update(self, producer: Any, iteration: int,
                        changed: bool) -> None:
        """Phase 1 for an UPDATE message: the user gather() already ran;
        ``changed`` says whether it modified the vertex value."""
        if iteration + 1 > self.iteration:
            self.iteration = iteration + 1
        self.prepare_list.discard(producer)
        if changed:
            self.dirty = True

    def gathered_input(self, frontier: int, changed: bool) -> None:
        """Phase 1 for a stream input.  Inputs attach at the loop frontier
        so that terminated iterations never reopen."""
        if frontier > self.iteration:
            self.iteration = frontier
        if changed:
            self.dirty = True

    def try_prepare(self, clock: LamportClock,
                    consumers: Iterable[Any],
                    skip_prepare: bool = False) -> list[Action]:
        """Phase 2: start the update if allowed.  ``skip_prepare`` is the
        delay-bound fast path (paper §4.4): a vertex already at the
        frontier's last admissible iteration commits without the PREPARE
        round, because no consumer can report a larger iteration."""
        if not self.dirty or self.preparing or self.prepare_list:
            return []
        # Sorted fan-out: ``consumers`` is typically the program's target
        # set, whose iteration order varies with hash randomisation — on
        # the live backend each worker is its own interpreter, so an
        # unsorted PREPARE order would differ per process and per run.
        consumer_list = sorted(consumers, key=repr)
        if skip_prepare or not consumer_list:
            return self._commit()
        self.update_time = clock.tick()
        self.waiting_list = set(consumer_list)
        self.prepares_sent += len(consumer_list)
        return [SendPrepare(consumer, self.update_time)
                for consumer in consumer_list]

    def received_prepare(self, producer: Any,
                         update_time: Timestamp) -> list[Action]:
        """A producer announced its update; ack it unless our own update
        happens first in the Lamport order."""
        self.prepare_list.add(producer)
        if self.update_time is None or self.update_time > update_time:
            return [SendAck(producer, self.iteration)]
        self.pending_list.append(producer)
        return []

    def received_ack(self, consumer: Any, iteration: int) -> list[Action]:
        """Phase 3 trigger: collect iteration numbers; commit when all
        consumers have answered."""
        if iteration > self.iteration:
            self.iteration = iteration
        self.waiting_list.discard(consumer)
        if self.preparing and not self.waiting_list:
            return self._commit()
        return []

    def _commit(self) -> list[Action]:
        if not self.dirty:
            raise ProtocolError(f"commit of clean vertex {self.vertex!r}")
        self.update_time = None
        self.dirty = False
        self.commits += 1
        actions: list[Action] = [CommitUpdate(self.iteration)]
        for producer in self.pending_list:
            actions.append(SendAck(producer, self.iteration))
        self.pending_list.clear()
        return actions

    def reset_after_recovery(self, iteration: int) -> None:
        """Forget in-flight protocol state after a crash; retransmitted
        PREPAREs will rebuild it."""
        self.iteration = iteration
        self.update_time = None
        self.prepare_list.clear()
        self.waiting_list.clear()
        self.pending_list.clear()
        self.dirty = False
