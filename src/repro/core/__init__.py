"""Tornado's core: the paper's contribution.

* Main-loop / branch-loop execution model (§3): :class:`TornadoJob`,
  :class:`Master`, :class:`Ingester`.
* Bounded asynchronous iteration with the three-phase update protocol (§4):
  :class:`VertexProtocol`, :class:`ProgressTracker`, :class:`LamportClock`.
* Graph-parallel programming model (Appendix B): :class:`VertexProgram`,
  :class:`VertexContext`, :class:`Application`.
"""

from repro.core.config import TenantQuota, TornadoConfig
from repro.core.dsl import (Algebra, AlgebraicProgram, min_label,
                            reachability, shortest_paths, widest_path)
from repro.core.ingester import Ingester
from repro.core.job import QueryResult, ScheduledQuery, TornadoJob
from repro.core.jobmanager import (JobManager, ProcessorPool, TenantRecord,
                                   TenantSpec, run_solo)
from repro.core.lamport import LamportClock, Timestamp
from repro.core.master import BranchRecord, Master, MasterDurableState
from repro.core.metrics import RateSample, RateSampler
from repro.core.messages import MAIN_LOOP, branch_name
from repro.core.partition import PartitionScheme
from repro.core.processor import LoopState, Processor
from repro.core.progress import ProgressTracker
from repro.core.protocol import (CommitUpdate, SendAck, SendPrepare,
                                 VertexProtocol)
from repro.core.transport import ReliableEndpoint
from repro.core.vertex import (Application, Delta, InputRouter,
                               VertexContext, VertexProgram, VertexState)

__all__ = [
    "Algebra",
    "AlgebraicProgram",
    "Application",
    "min_label",
    "reachability",
    "shortest_paths",
    "widest_path",
    "BranchRecord",
    "CommitUpdate",
    "Delta",
    "Ingester",
    "InputRouter",
    "JobManager",
    "LamportClock",
    "LoopState",
    "MAIN_LOOP",
    "Master",
    "MasterDurableState",
    "PartitionScheme",
    "Processor",
    "ProcessorPool",
    "ProgressTracker",
    "QueryResult",
    "ScheduledQuery",
    "RateSample",
    "RateSampler",
    "ReliableEndpoint",
    "SendAck",
    "SendPrepare",
    "TenantQuota",
    "TenantRecord",
    "TenantSpec",
    "Timestamp",
    "TornadoConfig",
    "TornadoJob",
    "run_solo",
    "VertexContext",
    "VertexProgram",
    "VertexProtocol",
    "VertexState",
    "branch_name",
]
