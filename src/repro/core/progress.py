"""Progress tracking and iteration-termination detection (paper §4.3).

The master aggregates cumulative per-iteration counters from every
processor.  Iteration ``k`` of a loop *terminates* once

* every iteration before it has terminated,
* some work actually happened at or after ``k`` (idle iterations beyond the
  last activity are not terminated — the frontier never runs ahead of the
  computation),
* every UPDATE sent at iterations ≤ k has been gathered, and
* no processor has local pending work at an iteration ≤ k
  (each processor reports a *watermark*: the lowest iteration of any
  uncommitted in-flight vertex update, queued message or buffered input).

A loop *converges* when it quiesces: every active iteration has terminated
and no processor holds pending work — equivalently, the next iteration
would perform zero updates (paper §4.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.messages import ProgressReport


@dataclass
class _ProcessorView:
    """Latest report from one processor (stale reports are dropped)."""

    seq: int = -1
    counters: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    watermark: float = math.inf
    inputs_gathered: int = 0
    unacked: int = 0
    buffered: int = 0


class ProgressTracker:
    """Termination/convergence detector for one loop."""

    def __init__(self, loop: str, processors: list[str]) -> None:
        self.loop = loop
        self.processors = list(processors)
        self._views = {name: _ProcessorView() for name in self.processors}
        # First iteration that has not terminated.
        self.frontier = 0
        self.started = False

    # ------------------------------------------------------------- inputs
    def apply_report(self, report: ProgressReport) -> bool:
        """Fold one report in; returns True if it was fresh."""
        view = self._views.get(report.processor)
        if view is None or report.seq <= view.seq:
            return False
        view.seq = report.seq
        view.counters = dict(report.counters)
        view.watermark = report.watermark
        view.inputs_gathered = report.inputs_gathered
        view.unacked = report.unacked
        view.buffered = report.buffered
        if report.counters:
            self.started = True
        return True

    def forget_processor(self, processor: str) -> None:
        """A processor restarted from a checkpoint: drop its stale view
        until fresh cumulative reports arrive."""
        if processor in self._views:
            self._views[processor] = _ProcessorView()

    def forget_all(self) -> None:
        """Invalidate every processor's view.  Used on recovery: the
        restarted processor's state rolled back, and its peers are about
        to generate repair traffic (re-sent PREPAREs, re-scattered
        values) that their latest reports cannot reflect yet — deciding
        termination or convergence from those stale reports races the
        repair."""
        for processor in self._views:
            self._views[processor] = _ProcessorView()

    # ------------------------------------------------------------ queries
    def totals(self, iteration: int) -> tuple[int, int, int]:
        commits = sent = gathered = 0
        for view in self._views.values():
            entry = view.counters.get(iteration)
            if entry is not None:
                commits += entry[0]
                sent += entry[1]
                gathered += entry[2]
        return commits, sent, gathered

    def total_commits(self) -> int:
        return sum(entry[0] for view in self._views.values()
                   for entry in view.counters.values())

    def total_inputs(self) -> int:
        return sum(view.inputs_gathered for view in self._views.values())

    def pending_work(self) -> tuple[int, int]:
        """``(unacked, buffered)`` totals across processors — the stall
        diagnostic a JobManager reads when a tenant misses its liveness
        window."""
        unacked = sum(view.unacked for view in self._views.values())
        buffered = sum(view.buffered for view in self._views.values())
        return unacked, buffered

    def min_watermark(self) -> float:
        return min((view.watermark for view in self._views.values()),
                   default=math.inf)

    def max_active_iteration(self) -> int:
        """Largest iteration with any recorded activity, or -1."""
        iterations = [k for view in self._views.values()
                      for k in view.counters]
        return max(iterations, default=-1)

    def _iteration_quiet(self, iteration: int) -> bool:
        """Iteration ``k`` may terminate when no vertex still has pending
        work at ≤ k and every update sent at k-1 has been gathered (an
        in-flight update of iteration j causes commits at j+1, so only
        messages of k-1 and earlier can reopen k; earlier iterations were
        drained when they terminated).  Updates sent *at* k are the output
        of k — under a delay bound they sit buffered until k terminates,
        and must not block that termination."""
        if iteration > 0:
            _commits, sent, gathered = self.totals(iteration - 1)
            if gathered < sent:
                return False
        return self.min_watermark() > iteration

    def all_reported(self) -> bool:
        return all(view.seq >= 0 for view in self._views.values())

    # -------------------------------------------------------- termination
    def advance(self) -> list[int]:
        """Terminate as many frontier iterations as the counters allow;
        returns the newly terminated iteration numbers in order."""
        if not self.all_reported() or not self.started:
            return []
        terminated: list[int] = []
        ceiling = self.max_active_iteration()
        while self.frontier <= ceiling and self._iteration_quiet(self.frontier):
            terminated.append(self.frontier)
            self.frontier += 1
        return terminated

    @property
    def converged(self) -> bool:
        """Quiescent: every processor reports no pending vertex work, no
        unacknowledged session message (acks happen at handling time, so
        an empty outbox means delivered *and* processed) and no update
        parked by the delay bound — the next iteration would perform zero
        updates (paper §4.3).  Unlike per-iteration message draining, this
        criterion survives a processor crash, whose gathered-counters die
        with it while the senders' sent-counters persist."""
        if not self.all_reported():
            return False
        if not math.isinf(self.min_watermark()):
            return False
        return all(view.unacked == 0 and view.buffered == 0
                   for view in self._views.values())

    @property
    def last_terminated(self) -> int:
        return self.frontier - 1
