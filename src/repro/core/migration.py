"""Live migration planning (paper §5.1, with R-Storm-style scoring).

The master feeds every main-loop progress report into a
:class:`MigrationPlanner`.  The planner keeps, per processor, a *windowed*
busy-time rate (the delta between consecutive reports, not the cumulative
total — cumulative totals stay skewed long after the load itself has
balanced, which makes a naive planner thrash) and the per-vertex gather
weights the processors sample into their reports.

``plan()`` scores candidate moves cost/benefit style: each vertex is
charged the share of its source's busy rate proportional to its reported
gather weight, a move is only proposed when shifting that share to the
least-loaded target actually narrows the imbalance, and moves are batched
(up to ``migration_max_batch``) so one migration round can empty a hot
spot instead of peeling one vertex per cooldown.  All orderings are
deterministic (ties break on ``str(vertex)``), so planning is a pure
function of the report history — a requirement for the simulator's
same-seed byte-identical replays.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.config import TornadoConfig

#: EWMA smoothing of the per-report busy-rate windows.  Raw windows are
#: noisy — one idle report window reads as rate 0, which trivially passes
#: any hottest/coldest ratio test and makes a balanced cluster thrash.
RATE_ALPHA = 0.3


class MigrationPlanner:
    """Scores candidate vertex moves against per-processor load."""

    def __init__(self, config: TornadoConfig) -> None:
        self.config = config
        #: Cumulative busy time as of the last report, per processor.
        self._busy_total: dict[str, float] = {}
        #: Report time of the last observation, per processor.
        self._obs_time: dict[str, float] = {}
        #: Windowed busy rate (fraction of wall time busy), per processor.
        self._busy_rate: dict[str, float] = {}
        #: vertex -> gather weight, per processor (last report wins).
        self._vertex_load: dict[str, dict[Any, int]] = {}
        #: Per-processor critical-path scores (fraction of the critical
        #: path spent on that processor), applied via
        #: :meth:`set_criticality`.  Empty = no feedback.
        self._criticality: dict[str, float] = {}

    # ------------------------------------------------------------ feeding
    def observe(self, processor: str, busy_time: float, now: float,
                vertex_load: tuple = ()) -> None:
        """Fold one main-loop progress report into the load model."""
        last_busy = self._busy_total.get(processor)
        last_time = self._obs_time.get(processor)
        if last_busy is not None and busy_time < last_busy:
            # Counter regression: the processor crashed and recovered, so
            # its cumulative busy counter restarted from zero.  The first
            # post-recovery window is unmeasurable — folding its clamped-0
            # delta into the EWMA would drag a genuinely hot processor's
            # rate down and mask real imbalance.  Re-seed the baseline and
            # skip the window instead (the rate resumes from the next
            # report pair).
            self._busy_total[processor] = busy_time
            self._obs_time[processor] = now
            return
        if last_busy is not None and last_time is not None \
                and now > last_time:
            window = (busy_time - last_busy) / (now - last_time)
            previous = self._busy_rate.get(processor)
            if previous is None:
                self._busy_rate[processor] = window
            else:
                self._busy_rate[processor] = (
                    RATE_ALPHA * window + (1 - RATE_ALPHA) * previous)
        self._busy_total[processor] = busy_time
        self._obs_time[processor] = now
        if vertex_load:
            self._vertex_load[processor] = dict(vertex_load)

    def rates(self) -> dict[str, float]:
        """Snapshot of the windowed busy rates (read-only copy)."""
        return dict(self._busy_rate)

    def forget(self, processor: str) -> None:
        """Invalidate a processor's stats (it crashed and recovered: its
        busy counter restarted and its hot set is stale)."""
        self._busy_total.pop(processor, None)
        self._obs_time.pop(processor, None)
        self._busy_rate.pop(processor, None)
        self._vertex_load.pop(processor, None)

    def set_criticality(self, scores: dict[str, float]) -> None:
        """Feed per-processor critical-path scores (from a
        :class:`repro.obs.critical_path.CriticalPathReport`) into the
        cost model: with ``migration_criticality_weight > 0``, a
        processor that dominated the critical path looks proportionally
        hotter to :meth:`plan`, so its vertices move first.  Passing an
        empty dict clears the feedback."""
        self._criticality = {name: max(0.0, float(score))
                             for name, score in scores.items()}

    # ----------------------------------------------------------- planning
    def imbalanced(self, processors: list[str]) -> bool:
        """The trigger condition, evaluated on windowed rates: every
        processor observed, gap above the configured floor and ratio."""
        if any(name not in self._busy_rate for name in processors):
            return False
        rates = [self._busy_rate[name] for name in processors]
        hottest, coldest = max(rates), min(rates)
        return (hottest - coldest > self.config.rebalance_min_gap
                and hottest > self.config.rebalance_factor
                * max(coldest, 1e-9))

    def plan(self, processors: list[str],
             owner: Callable[[Any], str]
             ) -> tuple[tuple[Any, str, str], ...]:
        """Propose a batch of ``(vertex, source, target)`` moves, best
        first; empty when balanced or when no beneficial move exists."""
        if not self.imbalanced(processors):
            return ()
        est = {name: self._busy_rate[name] for name in processors}
        weight = self.config.migration_criticality_weight
        if weight > 0 and self._criticality:
            # Critical-path feedback: time on the critical path hurts
            # end-to-end latency one-for-one, so criticality inflates the
            # estimated load beyond what busy rate alone reports.
            for name in processors:
                est[name] *= 1.0 + weight * self._criticality.get(name, 0.0)
        moves: list[tuple[Any, str, str]] = []
        sources = sorted(processors, key=lambda p: (-est[p], p))
        for source in sources:
            load = self._vertex_load.get(source, {})
            total_weight = sum(load.values())
            if total_weight <= 0:
                continue
            candidates = sorted(load,
                                key=lambda v: (-load[v], str(v)))
            for vertex in candidates:
                if len(moves) >= self.config.migration_max_batch:
                    return tuple(moves)
                if owner(vertex) != source:
                    continue  # stale sample: the vertex moved already
                share = est[source] * load[vertex] / total_weight
                target = min((p for p in processors if p != source),
                             key=lambda p: (est[p], p))
                # Cost/benefit: only move when the shifted share narrows
                # the source/target imbalance instead of inverting it.
                if est[source] - est[target] <= share:
                    continue
                est[source] -= share
                est[target] += share
                moves.append((vertex, source, target))
        return tuple(moves)
