"""Vertex partitioning (paper §5.1).

Vertices are hash-partitioned across processors; the scheme is kept in
shared storage so both ingesters and processors can resolve the owner of
any vertex.  The master may repartition when load skews: the live migration
subsystem (``repro.core.migration``) moves batches of vertices between
processors while the main loop keeps running, fencing stale-owner
deliveries with the scheme's *epoch* — every batch reassignment bumps the
epoch exactly once, and every ``Repartition`` notice carries the epoch it
was cut at, so processors can ignore notices from an older layout.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable


def _stable_hash(value: Any) -> int:
    return zlib.crc32(repr(value).encode("utf-8"))


class PartitionScheme:
    """Maps vertex ids to processor names."""

    def __init__(self, processors: list[str]) -> None:
        if not processors:
            raise ValueError("need at least one processor")
        self.processors = list(processors)
        # Hashing runs against a sorted ring so ownership is a function of
        # the processor *set*, not the order the list was built in.
        self._ring = sorted(self.processors)
        self._overrides: dict[Any, str] = {}
        #: Layout epoch: bumped once per (batch) reassignment.  Messages
        #: cut against an older epoch are fenced by their receivers.
        self.epoch = 0
        #: In-flight live handoffs: vertex -> (epoch, source, target).
        #: Kept in the shared scheme so a target hears about a handoff
        #: racing toward it even before its Repartition notice lands —
        #: otherwise a gather outrunning the notice would make the target
        #: materialise the vertex from its *last committed* version and
        #: the source's release (carrying uncommitted work) would be
        #: silently ignored.
        self._migrating: dict[Any, tuple[int, str, str]] = {}

    @property
    def version(self) -> int:
        """Backwards-compatible alias for :attr:`epoch`."""
        return self.epoch

    def hash_home(self, vertex_id: Any) -> str:
        """The owner hashing alone would assign (ignoring overrides)."""
        index = _stable_hash(vertex_id) % len(self._ring)
        return self._ring[index]

    def owner(self, vertex_id: Any) -> str:
        override = self._overrides.get(vertex_id)
        if override is not None:
            return override
        return self.hash_home(vertex_id)

    def reassign_batch(self, moves: Iterable[tuple[Any, str]]) -> int:
        """Atomically apply a batch of ``(vertex, new_owner)`` pins with a
        single epoch bump; returns the new epoch.  A vertex reassigned back
        to its hash-home drops its override outright, so ``_overrides``
        stays bounded by the number of *displaced* vertices rather than the
        number of moves ever made."""
        resolved = []
        for vertex_id, processor in moves:
            if processor not in self._ring:
                raise ValueError(f"unknown processor: {processor!r}")
            resolved.append((vertex_id, processor))
        if not resolved:
            return self.epoch
        for vertex_id, processor in resolved:
            if processor == self.hash_home(vertex_id):
                self._overrides.pop(vertex_id, None)
            else:
                self._overrides[vertex_id] = processor
        self.epoch += 1
        return self.epoch

    def reassign(self, vertex_id: Any, processor: str) -> None:
        """Explicitly pin a single vertex (one epoch bump)."""
        self.reassign_batch([(vertex_id, processor)])

    # ------------------------------------------------- in-flight handoffs
    def mark_migrating(self, epoch: int,
                       moves: Iterable[tuple[Any, str, str]]) -> None:
        """Record a batch of live ``(vertex, source, target)`` handoffs
        cut at ``epoch`` as in flight."""
        for vertex_id, source, target in moves:
            self._migrating[vertex_id] = (epoch, source, target)

    def migrating_to(self, vertex_id: Any) -> str | None:
        """The processor a vertex is currently handing off to, if any."""
        entry = self._migrating.get(vertex_id)
        return entry[2] if entry is not None else None

    def migration_source(self, vertex_id: Any) -> str | None:
        """The processor a vertex is currently handing off from, if any."""
        entry = self._migrating.get(vertex_id)
        return entry[1] if entry is not None else None

    def clear_migrating(self, vertex_id: Any, epoch: int) -> None:
        """The handoff cut at ``epoch`` completed for this vertex (a
        newer round's entry, if any, stays)."""
        entry = self._migrating.get(vertex_id)
        if entry is not None and entry[0] <= epoch:
            del self._migrating[vertex_id]

    def clear_migrating_epoch(self, epoch: int) -> None:
        """Drop every in-flight entry cut at or before ``epoch``."""
        stale = [vertex_id for vertex_id, entry in self._migrating.items()
                 if entry[0] <= epoch]
        for vertex_id in stale:
            del self._migrating[vertex_id]

    def migrating_count(self) -> int:
        return len(self._migrating)

    def override_count(self) -> int:
        return len(self._overrides)

    def assignments(self, vertex_ids: list[Any]) -> dict[str, list[Any]]:
        """Group vertex ids by owning processor."""
        grouped: dict[str, list[Any]] = {name: [] for name in self.processors}
        for vertex_id in vertex_ids:
            grouped[self.owner(vertex_id)].append(vertex_id)
        return grouped
