"""Vertex partitioning (paper §5.1).

Vertices are hash-partitioned across processors; the scheme is kept in
shared storage so both ingesters and processors can resolve the owner of
any vertex.  The master may repartition when load skews (the computation is
paused, the scheme rewritten, and execution restarts from the last
terminated iteration).
"""

from __future__ import annotations

import zlib
from typing import Any


def _stable_hash(value: Any) -> int:
    return zlib.crc32(repr(value).encode("utf-8"))


class PartitionScheme:
    """Maps vertex ids to processor names."""

    def __init__(self, processors: list[str]) -> None:
        if not processors:
            raise ValueError("need at least one processor")
        self.processors = list(processors)
        self._overrides: dict[Any, str] = {}
        self.version = 0

    def owner(self, vertex_id: Any) -> str:
        override = self._overrides.get(vertex_id)
        if override is not None:
            return override
        index = _stable_hash(vertex_id) % len(self.processors)
        return self.processors[index]

    def reassign(self, vertex_id: Any, processor: str) -> None:
        """Explicitly pin a vertex (used by the master's rebalancer)."""
        if processor not in self.processors:
            raise ValueError(f"unknown processor: {processor!r}")
        self._overrides[vertex_id] = processor
        self.version += 1

    def assignments(self, vertex_ids: list[Any]) -> dict[str, list[Any]]:
        """Group vertex ids by owning processor."""
        grouped: dict[str, list[Any]] = {name: [] for name in self.processors}
        for vertex_id in vertex_ids:
            grouped[self.owner(vertex_id)].append(vertex_id)
        return grouped
