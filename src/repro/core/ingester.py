"""The ingester (paper §5.1-5.2).

Collects inputs from external sources, routes them to the processors that
own the affected vertices, and receives user queries, forwarding them to
the master.  Results of finished queries are held here for the driver.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.config import TornadoConfig
from repro.errors import BackpressureError
from repro.core.messages import (MAIN_LOOP, BranchDone, PauseIngest,
                                 PeerRecovered, QueryRejected, QueryRequest,
                                 ResumeIngest, VertexInput)
from repro.core.partition import PartitionScheme
from repro.core.transport import ReliableEndpoint
from repro.core.vertex import Application
from repro.simulator import Actor, Network, Simulator
from repro.streams.model import StreamTuple


class Ingester(Actor):
    """Feeds the topology and fields user queries."""

    def __init__(self, sim: Simulator, name: str, config: TornadoConfig,
                 app: Application, partition: PartitionScheme,
                 network: Network, master_name: str) -> None:
        super().__init__(sim, name)
        self.config = config
        self.app = app
        self.partition = partition
        self.network = network
        self.master_name = master_name
        self.transport = ReliableEndpoint(
            sim, network, name, timeout=config.retransmit_timeout)
        self._next_query = 0
        self.results: dict[int, BranchDone] = {}
        self.result_times: dict[int, float] = {}
        self.tuples_ingested = 0
        self.tuples_scheduled = 0
        self.inputs_routed = 0
        self.inputs_replayed = 0
        self.paused = False
        #: Times ingest was paused (the live migrator must keep this 0).
        self.pauses = 0
        self._held: list[StreamTuple] = []
        self.rejections: dict[int, QueryRejected] = {}
        # Every routed input, in order.  A processor crash rolls its
        # vertices back to the last checkpoint; inputs it acknowledged
        # after that checkpoint died with it and the transport will not
        # resend them, so the ingester replays its journal for the
        # recovered processor (gathers of stream inputs are idempotent:
        # they set edges/weights rather than accumulate).  A deployment
        # would truncate the journal at the durable input frontier; the
        # simulation keeps it whole.
        self._journal: list[VertexInput] = []

    # -------------------------------------------------------------- feeding
    def pending_inputs(self) -> int:
        """Stream tuples scheduled for delivery but not yet ingested (the
        per-tenant backpressure signal; held tuples during an ingest pause
        still count as pending)."""
        return self.tuples_scheduled - self.tuples_ingested

    def schedule_stream(self, tuples: Iterable[StreamTuple],
                        max_pending: int | None = None) -> int:
        """Arrange for each tuple to arrive at its timestamp; returns the
        number of tuples scheduled.

        With ``max_pending`` set, the whole batch is rejected with
        :class:`~repro.errors.BackpressureError` — before scheduling
        anything — if accepting it would push :meth:`pending_inputs` past
        the bound.  All-or-nothing keeps the virtual timeline of an
        admitted feed independent of the rejection history.
        """
        batch = list(tuples)
        if max_pending is not None \
                and self.pending_inputs() + len(batch) > max_pending:
            raise BackpressureError(
                f"{self.name}: {self.pending_inputs()} pending + "
                f"{len(batch)} offered > max_pending={max_pending}")
        count = 0
        for tup in batch:
            at = max(self.sim.now, tup.timestamp)
            self.sim.schedule_at(at, self.deliver, ("ingest", tup),
                                 self.name)
            count += 1
        self.tuples_scheduled += count
        return count

    # -------------------------------------------------------------- queries
    def issue_query(self, full_activation: bool = False) -> int:
        """Ask for the results at the current instant; returns a query id
        the driver can poll."""
        self._next_query += 1
        query_id = self._next_query
        self.transport.send(self.master_name, QueryRequest(
            query_id=query_id,
            issued_at=self.sim.now,
            full_activation=full_activation,
        ))
        return query_id

    def query_done(self, query_id: int) -> bool:
        return query_id in self.results

    # ------------------------------------------------------------- dispatch
    def handle(self, message: Any, sender: str) -> float:
        payload = self.transport.on_message(message, sender)
        if payload is None:
            return self.config.control_cost
        if isinstance(payload, BranchDone):
            self.results[payload.query_id] = payload
            self.result_times[payload.query_id] = self.sim.now
            return self.config.control_cost
        if isinstance(payload, QueryRejected):
            self.rejections[payload.query_id] = payload
            return self.config.control_cost
        if isinstance(payload, PauseIngest):
            if not self.paused:
                self.pauses += 1
            self.paused = True
            return self.config.control_cost
        if isinstance(payload, ResumeIngest):
            self.paused = False
            held, self._held = self._held, []
            cost = self.config.control_cost
            for tup in held:
                cost += self._ingest(tup)
            return cost
        if isinstance(payload, PeerRecovered):
            return self._replay_inputs(payload.processor)
        if isinstance(payload, tuple) and payload[0] == "ingest":
            if self.paused:
                self._held.append(payload[1])
                return self.config.control_cost
            return self._ingest(payload[1])
        return self.config.control_cost

    def _ingest(self, tup: StreamTuple) -> float:
        self.tuples_ingested += 1
        routed = 0
        for vertex_id, delta in self.app.router.route(tup):
            inp = VertexInput(
                loop=MAIN_LOOP,
                vertex=vertex_id,
                kind=delta.kind,
                payload=delta.payload,
                weight=delta.weight,
            )
            self._journal.append(inp)
            self.transport.send(self.partition.owner(vertex_id), inp)
            routed += 1
        self.inputs_routed += routed
        return self.config.control_cost * (1 + routed)

    def _replay_inputs(self, processor: str) -> float:
        """Re-send every journaled input the recovered processor owns."""
        replayed = 0
        for inp in self._journal:
            if self.partition.owner(inp.vertex) != processor:
                continue
            self.transport.send(processor, inp)
            replayed += 1
        self.inputs_replayed += replayed
        return self.config.control_cost * (1 + replayed)
