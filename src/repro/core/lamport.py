"""Lamport logical clocks (paper §4.2).

Tornado adapts the Chandy-Misra dining-philosophers solution to evolving
dependency graphs by ordering vertex updates with Lamport clocks: a vertex
only acknowledges a producer's PREPARE when it is not itself updating, or
when its own update *happens after* the producer's.  Timestamps are
``(counter, owner)`` pairs so the order is total and deadlock is impossible
even when two updates start at the same logical instant.
"""

from __future__ import annotations

from typing import NamedTuple


class Timestamp(NamedTuple):
    """A totally-ordered Lamport timestamp."""

    counter: int
    owner: str


class LamportClock:
    """One logical clock per processor (shared by its vertices)."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._counter = 0

    def tick(self) -> Timestamp:
        """Advance for a local event and return the new timestamp."""
        self._counter += 1
        return Timestamp(self._counter, self.owner)

    def observe(self, other: Timestamp) -> None:
        """Merge a timestamp received on a message."""
        if other.counter > self._counter:
            self._counter = other.counter

    @property
    def counter(self) -> int:
        return self._counter
