"""The user-facing driver: build, feed, query and inspect a Tornado job.

>>> job = TornadoJob(application, TornadoConfig(n_processors=4))
>>> job.feed(edge_tuples)
>>> job.run_for(5.0)                      # let the main loop approximate
>>> result = job.query_and_wait()         # fork a branch, wait, read it
>>> result.values["some-vertex"]
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.config import TornadoConfig
from repro.core.ingester import Ingester
from repro.core.master import BranchRecord, Master, MasterDurableState
from repro.core.messages import MAIN_LOOP
from repro.core.partition import PartitionScheme
from repro.core.processor import Processor
from repro.core.vertex import Application
from repro.errors import QueryError
from repro.obs import MetricsRegistry, TraceRecorder
from repro.simulator import (FailureInjector, Network, SimulatedDisk,
                             Simulator)
from repro.storage import (CheckpointManifest, DiskBackend, InMemoryBackend,
                           VersionedStore)
from repro.streams.model import StreamTuple


@dataclass
class ScheduledQuery:
    """Handle for a query armed at a fixed virtual instant (see
    :meth:`TornadoJob.schedule_query`).  ``query_id`` is assigned when
    the instant fires."""

    at: float
    full_activation: bool = False
    query_id: int | None = None

    @property
    def issued(self) -> bool:
        return self.query_id is not None


@dataclass
class QueryResult:
    """Outcome of one branch-loop query."""

    query_id: int
    loop: str
    values: dict[Any, Any]
    issued_at: float
    completed_at: float
    converged_iteration: int

    @property
    def latency(self) -> float:
        return self.completed_at - self.issued_at


class TornadoJob:
    """One Tornado deployment on the simulated cluster."""

    MASTER = "master"
    INGESTER = "ingester"

    def __new__(cls, app: Application | None = None,
                config: TornadoConfig | None = None) -> "TornadoJob":
        # Backend dispatch: the same program runs unmodified on either
        # kernel, so ``TornadoJob(app, TornadoConfig(backend="live"))``
        # transparently builds the multiprocessing driver.  (CPython's
        # type_call invokes __init__ on the returned instance's own
        # class, so LiveJob.__init__ runs instead of ours.)
        if (cls is TornadoJob and config is not None
                and getattr(config, "backend", "sim") == "live"):
            from repro.live.job import LiveJob
            return super().__new__(LiveJob)
        return super().__new__(cls)

    def __init__(self, app: Application,
                 config: TornadoConfig | None = None) -> None:
        self.app = app
        self.config = config if config is not None else TornadoConfig()
        self.sim = Simulator(
            seed=self.config.seed,
            recorder=TraceRecorder(capacity=self.config.trace_capacity,
                                   enabled=self.config.trace_enabled),
            fast_path=self.config.fast_path)
        self.network = Network(
            self.sim,
            latency=self.config.net_latency,
            jitter=self.config.net_jitter,
            capacity=self.config.net_capacity,
        )
        self.network.trace_links = self.config.trace_links
        #: Submission-time placement plan (set by the first ``feed`` when
        #: ``config.placement == "resource_aware"``; None otherwise).
        self.placement_plan = None
        #: Critical-path link scores carried over from a previous run of
        #: the same workload (see :meth:`set_link_scores`) — refines the
        #: resource-aware plan on re-submission.
        self._link_scores: dict[tuple[str, str], float] | None = None
        self.store = VersionedStore(
            delta_path=self.config.delta_path,
            columnar=self.config.columnar,
            rebase_interval=self.config.store_rebase_interval,
            snapshot_cache_size=self.config.store_snapshot_cache_size)
        self.manifest = CheckpointManifest()
        self.durable = MasterDurableState()
        self.failures = FailureInjector(self.sim, network=self.network)
        processor_names = [f"proc-{i}" for i in
                           range(self.config.n_processors)]
        self.partition = PartitionScheme(processor_names)
        self.master = Master(self.sim, self.MASTER, self.config,
                             self.network, processor_names, self.INGESTER,
                             self.manifest, self.durable, self.partition)
        self.ingester = Ingester(self.sim, self.INGESTER, self.config,
                                 app, self.partition, self.network,
                                 self.MASTER)
        self.processors: list[Processor] = []
        #: Per-processor simulated disks (empty entries for the memory
        #: backend) — the targets of disk-stall/slowdown fault injection.
        self.disks: dict[str, SimulatedDisk] = {}
        for index, name in enumerate(processor_names):
            backend = self._make_backend(name)
            processor = Processor(self.sim, name, self.config, app,
                                  self.partition, self.store, backend,
                                  self.network, self.MASTER,
                                  manifest=self.manifest)
            node = f"node{index % self.config.n_nodes}"
            self.network.colocate(name, node)
            self.processors.append(processor)
        self.network.colocate(self.MASTER, "node0")
        self.network.colocate(self.INGESTER, "node0")
        for processor in self.processors:
            processor.start()

    def _make_backend(self, processor_name: str):
        if self.config.storage_backend == "memory":
            return InMemoryBackend(self.sim)
        disk = SimulatedDisk(self.sim, f"disk-{processor_name}",
                             seek_cost=self.config.disk_seek_cost,
                             record_cost=self.config.disk_record_cost)
        self.disks[processor_name] = disk
        return DiskBackend(disk)

    def endpoints(self) -> list:
        """Every reliable-transport endpoint of the deployment (master,
        ingester, processors) — the attachment points for a
        :class:`~repro.core.transport.TransportChaos` fault plane."""
        return ([self.master.transport, self.ingester.transport]
                + [processor.transport for processor in self.processors])

    # -------------------------------------------------------------- feeding
    def feed(self, tuples: Iterable[StreamTuple]) -> int:
        """Schedule stream tuples for ingestion at their timestamps.

        Under ``config.placement == "resource_aware"`` the first feed is
        also the profiling pre-run: the tuples are routed through the
        application once to estimate per-vertex demand vectors, the
        R-Storm packer (:mod:`repro.core.placement`) pins the resulting
        plan onto the partition scheme, and only then is the stream
        scheduled for ingestion.
        """
        if (self.config.placement == "resource_aware"
                and self.placement_plan is None):
            from repro.core.placement import plan_for_stream
            tuples = list(tuples)
            plan = plan_for_stream(self.app, self.config, self.partition,
                                   tuples, link_scores=self._link_scores)
            plan.apply(self.partition)
            self.placement_plan = plan
        return self.ingester.schedule_stream(tuples)

    def set_link_scores(self,
                        link_scores: dict[tuple[str, str], float]) -> None:
        """Carry a previous run's critical-path link scores
        (:meth:`repro.obs.critical_path.CriticalPathReport.link_scores`)
        into this job's resource-aware placement: pairs of vertices whose
        processor link dominated the old critical path get their affinity
        boosted, so the new plan packs them together.  Must be called
        before the first :meth:`feed`."""
        if self.placement_plan is not None:
            raise ValueError("placement already planned; set link scores "
                             "before the first feed")
        self._link_scores = dict(link_scores)

    # -------------------------------------------------------------- running
    def run(self, until: float | None = None) -> float:
        return self.sim.run(until=until)

    def run_for(self, duration: float) -> float:
        return self.sim.run(until=self.sim.now + duration)

    def run_until(self, predicate: Callable[[], bool],
                  max_events: int = 50_000_000) -> float:
        return self.sim.run_until(predicate, max_events=max_events)

    def run_until_quiescent(self, extra: float = 0.0) -> float:
        """Drain every scheduled event (main loop included); mostly useful
        in tests with finite streams."""
        end = self.sim.run()
        if extra:
            end = self.sim.run(until=end + extra)
        return end

    # -------------------------------------------------------------- queries
    def query(self, full_activation: bool = False) -> int:
        """Issue a query for the results at the current instant (paper
        §5.2); returns a query id to poll or wait on."""
        return self.ingester.issue_query(full_activation=full_activation)

    def schedule_query(self, at: float,
                       full_activation: bool = False) -> ScheduledQuery:
        """Arm a query to be issued *inside the simulation* at virtual
        time ``at``.  Unlike :meth:`query` (which issues at whatever
        instant the driver happens to call it), a scheduled query is part
        of the event timeline — a job replayed solo or interleaved under
        a JobManager issues it at exactly the same instant, which is what
        keeps the flight-recorder digest identical across both runs."""
        handle = ScheduledQuery(at=at, full_activation=full_activation)
        self.sim.schedule_at(max(self.sim.now, at),
                             self._issue_scheduled_query, handle)
        return handle

    def _issue_scheduled_query(self, handle: ScheduledQuery) -> None:
        handle.query_id = self.ingester.issue_query(
            full_activation=handle.full_activation)

    def query_rejected(self, query_id: int) -> bool:
        return query_id in self.ingester.rejections

    def wait_for_query(self, query_id: int,
                       max_events: int = 50_000_000) -> QueryResult:
        """Run the simulation until the query's branch loop converges.
        Raises :class:`QueryError` if admission control sheds it."""
        self.sim.run_until(lambda: self.ingester.query_done(query_id)
                           or self.query_rejected(query_id),
                           max_events=max_events)
        if self.query_rejected(query_id):
            rejection = self.ingester.rejections[query_id]
            raise QueryError(f"query {query_id} shed: {rejection.reason}")
        # Let the processors drain their StopLoop notices (which
        # materialise the branch's final state) before reading results.
        self.sim.run(until=self.sim.now + 20 * self.config.net_latency
                     + 1e-3)
        return self.result(query_id)

    def query_and_wait(self, full_activation: bool = False) -> QueryResult:
        return self.wait_for_query(self.query(full_activation))

    def result(self, query_id: int) -> QueryResult:
        done = self.ingester.results.get(query_id)
        if done is None:
            raise QueryError(f"query {query_id} has not completed")
        values = {vertex_id: value for vertex_id, (value, _targets)
                  in self.store.snapshot(done.loop).items()}
        return QueryResult(
            query_id=query_id,
            loop=done.loop,
            values=values,
            issued_at=done.issued_at,
            completed_at=self.ingester.result_times[query_id],
            converged_iteration=done.converged_iteration,
        )

    # ------------------------------------------------------------- metrics
    @property
    def trace(self) -> TraceRecorder:
        """The job's flight recorder (enable via
        ``TornadoConfig(trace_enabled=True)``)."""
        return self.sim.trace

    @property
    def metrics(self) -> MetricsRegistry:
        """The job's shared metrics registry."""
        return self.sim.metrics

    def main_values(self) -> dict[Any, Any]:
        """Current in-memory main-loop values across all processors (the
        approximation the next branch would start from)."""
        merged: dict[Any, Any] = {}
        for processor in self.processors:
            main = processor.loops.get(MAIN_LOOP)
            if main is None:
                continue
            for vertex_id, state in main.vertices.items():
                merged[vertex_id] = state.value
        # Vertices handed over by a rebalance live in the store until
        # their new owner's first message materialises them.  This is an
        # in-memory inspection helper, not a billed protocol read.
        for vertex_id, (value, _targets) in self.store.snapshot(
                MAIN_LOOP, internal=True).items():
            if vertex_id not in merged:
                merged[vertex_id] = value
        return merged

    @property
    def total_commits(self) -> int:
        return sum(p.total_commits for p in self.processors)

    @property
    def total_prepares(self) -> int:
        return sum(p.total_prepares for p in self.processors)

    @property
    def total_updates_gathered(self) -> int:
        return sum(p.total_updates_gathered for p in self.processors)

    def loop_totals(self, loop: str) -> dict[str, int]:
        """Aggregate per-loop counters across all processors — the raw
        numbers behind the paper's Table 2."""
        totals = {"commits": 0, "sent": 0, "gathered": 0, "prepares": 0}
        for processor in self.processors:
            live = processor.loops.get(loop)
            if live is not None:
                entry = (live.commits_total, live.sent_total,
                         live.gathered_total, live.prepares_recorded)
            else:
                entry = processor.loop_archive.get(loop)
                if entry is None:
                    continue
            totals["commits"] += entry[0]
            totals["sent"] += entry[1]
            totals["gathered"] += entry[2]
            totals["prepares"] += entry[3]
        return totals

    def branch_record(self, query_id: int) -> BranchRecord:
        for record in self.durable.branches.values():
            if record.query_id == query_id:
                return record
        raise QueryError(f"no branch for query {query_id}")

    def branch_iteration_times(self, query_id: int) -> list[tuple[int, float]]:
        """(iteration, termination time) pairs of a query's branch loop —
        the raw data behind the paper's Figure 8a."""
        record = self.branch_record(query_id)
        return list(self.master.termination_times.get(record.loop, []))

    def main_frontier(self) -> int:
        tracker = self.master.trackers.get(MAIN_LOOP)
        return tracker.frontier if tracker is not None else 0

    def gc(self, keep_last_branches: int = 8,
           truncate_main_versions: bool = True) -> int:
        """Housekeep the shared store: drop the result namespaces of all
        but the newest ``keep_last_branches`` finished branch loops, and
        optionally truncate main-loop versions below the last terminated
        iteration.  Returns the number of versions/namespaces removed."""
        removed = 0
        finished = [record for record in self.durable.branches.values()
                    if record.done]
        finished.sort(key=lambda record: record.forked_at)
        for record in finished[:-keep_last_branches or None]:
            removed += self.store.drop_loop(record.loop)
        if truncate_main_versions:
            frontier = self.main_frontier()
            if frontier > 0:
                removed += self.store.truncate_before(MAIN_LOOP,
                                                      frontier - 1)
        return removed

    def quiescent(self) -> bool:
        """The main loop is idle everywhere: no pending vertex work, no
        unacknowledged session message, no delay-buffered update, no
        vertex handoff in flight."""
        if self.durable.migration is not None:
            return False
        if self.partition.migrating_count():
            return False
        for processor in self.processors:
            if not processor.migration_idle:
                return False
            if processor.transport.pending_by_tag.get("migration", 0):
                return False
            main = processor.loops.get(MAIN_LOOP)
            if main is None:
                continue
            if not math.isinf(main.watermark()):
                return False
            if processor.transport.pending_by_tag.get(MAIN_LOOP, 0):
                return False
            if main.buffered_updates:
                return False
        return True
