"""In-simulation metric sampling.

A :class:`RateSampler` schedules itself on the virtual clock and records a
counter's delta per interval — updates/second, messages/second — without
the driver having to step the simulation manually.  The failure experiments
(Fig. 8c/8d) and the fault-tolerance example are built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.simulator import Scheduled, Simulator


@dataclass
class RateSample:
    time: float
    rate: float
    total: float


class RateSampler:
    """Samples ``counter()`` every ``interval`` virtual seconds.

    >>> sampler = RateSampler(job.sim, lambda: job.total_commits,
    ...                       interval=0.5)
    >>> job.run_for(10.0)
    >>> peaks = max(s.rate for s in sampler.samples)
    """

    def __init__(self, sim: Simulator, counter: Callable[[], float],
                 interval: float = 0.5, start: bool = True) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.counter = counter
        self.interval = interval
        self.samples: list[RateSample] = []
        self._previous = float(counter())
        self._running = False
        # Handle of the scheduled tick, so stop() can cancel it.  Merely
        # flipping _running would leave the stale tick in the queue: a
        # start() before it fires would then run two live tick chains,
        # duplicating and offsetting samples.
        self._pending: Scheduled | None = None
        if start:
            self.start()

    def start(self) -> None:
        if not self._running:
            self._running = True
            self._previous = float(self.counter())
            self._pending = self.sim.schedule_timer(self.interval,
                                                    self._tick)

    def stop(self) -> None:
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _tick(self) -> None:
        self._pending = None
        if not self._running:
            return
        current = float(self.counter())
        self.samples.append(RateSample(
            time=self.sim.now,
            rate=(current - self._previous) / self.interval,
            total=current,
        ))
        self._previous = current
        self._pending = self.sim.schedule_timer(self.interval, self._tick)

    # ------------------------------------------------------------ queries
    def rates(self) -> list[tuple[float, float]]:
        return [(s.time, s.rate) for s in self.samples]

    def mean_rate(self, start: float = 0.0,
                  end: float = float("inf")) -> float:
        window = [s.rate for s in self.samples if start < s.time <= end]
        return sum(window) / len(window) if window else 0.0

    def peak_rate(self) -> float:
        return max((s.rate for s in self.samples), default=0.0)
