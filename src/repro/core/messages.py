"""Protocol messages exchanged by Tornado's ingester, processors and master.

Messages are small frozen dataclasses.  The session-layer messages (UPDATE /
PREPARE / ACKNOWLEDGE) implement the three-phase update protocol of paper
§4.2; the control messages implement progress tracking (§4.3), branch-loop
management (§5.2) and recovery (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.lamport import Timestamp

MAIN_LOOP = "main"


def branch_name(branch_id: int) -> str:
    return f"branch-{branch_id}"


# --------------------------------------------------------------- session
@dataclass(frozen=True, slots=True)
class VertexInput:
    """A stream delta routed to one vertex of a loop."""

    loop: str
    vertex: Any
    kind: str
    payload: Any
    weight: int = 1


@dataclass(frozen=True, slots=True)
class VertexUpdate:
    """Commit of ``producer``'s new value, scattered to one consumer."""

    loop: str
    producer: Any
    consumer: Any
    iteration: int
    data: Any


@dataclass(frozen=True, slots=True)
class SessionBatch:
    """Several session messages of one loop for one destination
    processor, riding a single reliable envelope (the delta path's
    sender-side batching).  ``payloads`` holds :class:`VertexUpdate`,
    :class:`Prepare` and :class:`Acknowledge` messages in their original
    send order, so per-link protocol ordering (an update may never be
    overtaken by the next round's PREPARE) is preserved verbatim; the
    receiver dispatches them as if each had arrived in its own
    envelope."""

    loop: str
    payloads: tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class ColumnBatch:
    """Columnar wire frame (``TornadoConfig.columnar_wire``): one loop's
    session traffic for one destination processor with the vector-packable
    updates shipped as typed column runs instead of per-vertex
    :class:`VertexUpdate` objects.

    ``segments`` preserves the original send order exactly.  Each segment
    is either

    * a plain 4-tuple of parallel columns ``(producers, consumers,
      iterations, values)`` — one *run* of consecutive packable updates
      (all columns are plain tuples; the frame stays numpy-free so the
      wire vocabulary pickles without the columnar dependency), or
    * a scalar protocol message (:class:`Prepare`, :class:`Acknowledge`,
      or a fallback :class:`VertexUpdate` whose value did not match the
      program's declared wire dtype), left at its original position.

    Receivers discriminate with ``type(segment) is tuple`` (the scalar
    messages are dataclasses) and must produce effects byte-identical to
    dispatching the equivalent :class:`SessionBatch`.
    """

    loop: str
    segments: tuple[Any, ...]

    def has_prepare(self) -> bool:
        """Does any scalar segment carry a :class:`Prepare`?  (Recovery
        purges unacked prepares exactly like the SessionBatch path.)"""
        return any(isinstance(seg, Prepare) for seg in self.segments
                   if type(seg) is not tuple)

    def update_producers(self):
        """Producer ids of every update in the frame — column runs and
        inline fallback updates alike (fork-time in-flight scans)."""
        producers = []
        for seg in self.segments:
            if type(seg) is tuple:
                producers.extend(seg[0])
            elif isinstance(seg, VertexUpdate):
                producers.append(seg.producer)
        return producers


@dataclass(frozen=True, slots=True)
class ReleasedUpdate:
    """Delta-path re-delivery wrapper for an update leaving the delay
    buffer.  The wrapper tells the dispatcher this message was already
    ordered by the buffer (apply it, do not park it again) and carries
    the per-pair bookkeeping that keeps later same-``(producer,
    consumer)`` arrivals from overtaking it while it sits in the inbox."""

    update: VertexUpdate

    @property
    def loop(self) -> str:
        return self.update.loop


@dataclass(frozen=True, slots=True)
class Prepare:
    """Phase 2: ``producer`` announces it is about to update."""

    loop: str
    producer: Any
    consumer: Any
    update_time: Timestamp


@dataclass(frozen=True, slots=True)
class Acknowledge:
    """Reply to a Prepare: the consumer's current iteration number."""

    loop: str
    consumer: Any
    producer: Any
    iteration: int


# --------------------------------------------------------------- control
@dataclass(frozen=True, slots=True)
class ProgressReport:
    """Cumulative per-iteration counters from one processor.

    ``counters`` maps iteration -> (commits, sent, gathered); ``watermark``
    is the lowest iteration at which the processor still has local pending
    work (+inf when idle).  Counters are cumulative so reports are
    idempotent under at-least-once delivery and survive master restarts.
    """

    loop: str
    processor: str
    seq: int
    counters: dict[int, tuple[int, int, int]]
    watermark: float
    inputs_gathered: int = 0
    #: Cumulative busy time of the processor (load monitoring, §5.1).
    busy_time: float = 0.0
    #: The processor's currently hottest vertices (by recent commits).
    hot_vertices: tuple = ()
    #: Session messages this processor has sent but not yet seen
    #: acknowledged (snapshot taken before the report is enqueued).  Zero
    #: everywhere + idle watermarks + empty delay buffers = quiescence.
    unacked: int = 0
    #: Updates parked by the delay bound on this processor (plus, on the
    #: main loop, gathers buffered for vertices migrating in).
    buffered: int = 0
    #: Top-K ``(vertex, weight)`` gather-volume pairs since the last
    #: report — the migration planner's per-vertex cost signal (§5.1).
    vertex_load: tuple = ()


@dataclass(frozen=True, slots=True)
class IterationTerminated:
    """Master -> processors: every iteration ≤ ``iteration`` of ``loop``
    has terminated; the delay-bound frontier advances."""

    loop: str
    iteration: int


@dataclass(frozen=True, slots=True)
class ForkBranch:
    """Master -> processors: fork a branch loop from the main loop."""

    loop: str
    fork_iteration: int
    previous_fork_iteration: int
    full_activation: bool = False


@dataclass(frozen=True, slots=True)
class StopLoop:
    """Master -> processors: tear a converged/abandoned branch loop down."""

    loop: str


@dataclass(frozen=True, slots=True)
class MergeBranch:
    """Master -> processors: write a converged branch's values back into
    the main loop at ``target_iteration`` (= τ + B, paper §5.2)."""

    loop: str
    target_iteration: int


@dataclass(frozen=True, slots=True)
class QueryRequest:
    """Ingester -> master: a user asked for results at this instant."""

    query_id: int
    issued_at: float
    full_activation: bool = False


@dataclass(frozen=True, slots=True)
class QueryRejected:
    """Master -> ingester: the query was shed (no capacity for another
    branch loop and shedding is the configured admission policy)."""

    query_id: int
    issued_at: float
    reason: str


@dataclass(frozen=True, slots=True)
class BranchDone:
    """Master -> ingester/driver: a branch converged; results readable."""

    loop: str
    query_id: int
    converged_iteration: int
    issued_at: float


@dataclass(frozen=True, slots=True)
class PauseIngest:
    """Master -> ingester: hold new inputs while repartitioning."""


@dataclass(frozen=True, slots=True)
class ResumeIngest:
    """Master -> ingester: repartitioning done, release held inputs."""


@dataclass(frozen=True, slots=True)
class Repartition:
    """Master -> processors: the partition scheme changed at ``epoch``;
    hand the moved vertices over (their state travels through the shared
    store).  ``moves`` is ``((vertex, source, target), ...)``; receivers
    fence notices whose epoch is older than one they already applied."""

    epoch: int
    moves: tuple[tuple[Any, str, str], ...]


@dataclass(frozen=True, slots=True)
class MigrateState:
    """Source -> target processor: the listed vertices of the main loop
    are released — their freshest versioned state is in the shared store;
    ``vertices`` is ``((vertex, active), ...)`` where ``active`` means the
    vertex still had dirty/pending work and must be re-activated."""

    epoch: int
    vertices: tuple[tuple[Any, bool], ...]


@dataclass(frozen=True, slots=True)
class MigrateDone:
    """Target processor -> master: the listed vertices were adopted and
    their buffered in-flight gathers replayed; the move is complete."""

    epoch: int
    vertices: tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class ProcessorRecovered:
    """Processor -> master: I restarted and lost in-memory state."""

    processor: str


@dataclass(frozen=True, slots=True)
class PeerRecovered:
    """Master -> other processors: ``processor`` restarted and lost its
    session state.  Producers mid-prepare must re-send their PREPAREs to
    consumers it owns — the session-level replies they were waiting for
    died with it (the transport-level ack already happened, so no
    transport retransmission will occur)."""

    processor: str


@dataclass(frozen=True, slots=True)
class RecoverLoops:
    """Master -> recovering processor: the loops to rebuild, with the last
    terminated iteration of each (the checkpoint to reload)."""

    loops: tuple[tuple[str, int], ...]


# ------------------------------------------------------------- transport
@dataclass(frozen=True, slots=True)
class Envelope:
    """Reliable-transport wrapper: at-least-once with receiver dedup."""

    msg_id: int
    payload: Any


@dataclass(frozen=True, slots=True)
class TransportAck:
    msg_id: int


@dataclass(frozen=True, slots=True)
class Unreliable:
    """Wrapper for fire-and-forget messages (no retransmission)."""

    payload: Any
