"""Multi-tenant job serving: N concurrent Tornado jobs on one pool.

The :class:`JobManager` admits many :class:`~repro.core.job.TornadoJob`
tenants onto a shared :class:`ProcessorPool` and interleaves them with a
deterministic weighted-round-robin scheduler over fixed-size *dispatch
windows* of virtual time.

**Isolation by construction.**  Each tenant keeps its own simulator,
store, manifest and flight recorder — the namespaces (loop ids, store
key-spaces, trace streams) are structurally disjoint, so corruption
across tenants is impossible by layout.  What the manager shares is
*capacity*: pool slots (leased per tenant at admission, released on
completion, crash or eviction) and the scheduler's attention.  The
scheduling is digest-neutral: the DES kernel's ``run(until=t)`` advances
the clock to the boundary without recording anything, so a tenant
advanced in window slices executes the byte-identical event sequence it
would execute running alone.  That is the **isolation oracle**: for any
seed, a tenant's flight-recorder digest under the manager equals the
digest of the same :class:`TenantSpec` run solo on its own cluster
(:func:`run_solo`).

To keep driver interactions on the virtual timeline (and therefore
replayable solo), a spec's stream feeds are scheduled at tenant-clock 0
by their own timestamps and its queries are armed *inside* the
simulation via :meth:`TornadoJob.schedule_query`.

**Admission and quotas.**  Rejections raise typed
:class:`~repro.errors.AdmissionError` subclasses: duplicate tenant ids,
pool exhaustion, quota violations, ingester backpressure past
``max_pending_inputs``.  A running tenant whose store footprint exceeds
``max_store_bytes`` is garbage-collected once and then evicted; a tenant
whose window raises is marked failed.  Both paths release the tenant's
pool slots — accounting always returns to zero.

**Fair scheduling and balancing.**  Every tenant holds
``quota.weight`` spare-capacity *credit tokens*; its share of each round
is the number of tokens it owns.  The PR 4
:class:`~repro.core.migration.MigrationPlanner` is reused verbatim as
the cross-tenant load balancer with an inversion: "processors" are
tenant ids, "vertices" are credit tokens, and the observed load signal
is cumulative *idle* time (slots × clock − busy).  The planner then
moves tokens from idle-rich tenants to busy ones, adapting round-robin
weights without touching window boundaries — digest-neutral by the same
argument as slicing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable

from repro.core.config import TenantQuota, TornadoConfig
from repro.core.job import ScheduledQuery, TornadoJob
from repro.core.migration import MigrationPlanner
from repro.core.vertex import Application
from repro.errors import (DuplicateTenantError, PoolExhaustedError,
                          QueryError, QuotaExceededError)
from repro.obs import merge_named_dumps, render_tenant_digests
from repro.streams.model import StreamTuple

#: Default dispatch-window width (virtual seconds).
WINDOW = 0.25
#: Default per-window event budget — bounds a runaway tenant's share of
#: one scheduler turn without affecting its event sequence.
WINDOW_MAX_EVENTS = 250_000
#: Pump passes granted to a live-backend tenant per window.
LIVE_PASSES = 64
#: Consecutive converged slices before a live tenant is declared done.
LIVE_IDLE_CONFIRMATIONS = 3


@dataclass(frozen=True)
class TenantSpec:
    """Everything needed to run one tenant — and to replay it solo.

    The spec is the unit of the isolation oracle: because it carries the
    app factory, config, feeds (scheduled at tenant-clock 0 by their own
    timestamps) and query instants, :func:`run_solo` can reproduce the
    exact event timeline the managed tenant saw.
    """

    tenant: str
    app_factory: Callable[[], Application]
    config: TornadoConfig | None = None
    quota: TenantQuota = TenantQuota()
    #: Stream tuples fed at submission (tenant clock 0); each arrives at
    #: its own timestamp, so the feed is part of the virtual timeline.
    feeds: tuple[StreamTuple, ...] = ()
    #: ``(virtual_time, full_activation)`` pairs of queries armed inside
    #: the simulation (sim backend only).
    query_times: tuple[tuple[float, bool], ...] = ()
    #: Virtual time the tenant runs to (sim backend).
    horizon: float = 4.0
    #: Scheduler round at which the tenant arrives (0 = immediately).
    arrival: int = 0

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant id must be non-empty")
        if self.horizon <= 0:
            raise ValueError("horizon must be > 0")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")


class ProcessorPool:
    """Slot pool shared by all tenants.  Leases are atomic under a lock,
    so concurrent submissions can never over-admit: either the lease
    fits in the free list or :class:`PoolExhaustedError` is raised and
    nothing changes."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1: {size}")
        self.size = size
        self._lock = threading.Lock()
        self._free = list(range(size))
        self._leases: dict[str, tuple[int, ...]] = {}

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def leased(self, tenant: str) -> tuple[int, ...]:
        return self._leases.get(tenant, ())

    def lease(self, tenant: str, n: int) -> tuple[int, ...]:
        """Atomically lease ``n`` slots (lowest-numbered first, so slot
        assignment is deterministic for a given admission order)."""
        if n < 1:
            raise ValueError(f"lease size must be >= 1: {n}")
        with self._lock:
            if tenant in self._leases:
                raise DuplicateTenantError(
                    f"tenant {tenant!r} already holds a lease")
            if n > len(self._free):
                raise PoolExhaustedError(
                    f"tenant {tenant!r} wants {n} slots, "
                    f"{len(self._free)}/{self.size} free")
            slots = tuple(self._free[:n])
            del self._free[:n]
            self._leases[tenant] = slots
            return slots

    def release(self, tenant: str) -> tuple[int, ...]:
        """Return a tenant's slots to the pool (idempotent)."""
        with self._lock:
            slots = self._leases.pop(tenant, ())
            if slots:
                self._free.extend(slots)
                self._free.sort()
            return slots


@dataclass
class TenantRecord:
    """Live bookkeeping for one admitted tenant."""

    spec: TenantSpec
    job: TornadoJob
    queries: list[ScheduledQuery]
    slots: tuple[int, ...]
    state: str = "running"  # running | done | failed | evicted
    #: Completed dispatch windows (integer counter: the next window's
    #: target is ``(k+1) * window`` — no float accumulation drift).
    k: int = 0
    #: Windows granted (attempted), including budget-truncated ones.
    windows: int = 0
    #: Windows cut short by the per-window event budget.
    truncated: int = 0
    #: Store-quota garbage collections performed.
    gcs: int = 0
    error: Exception | None = None
    #: Consecutive converged pump slices (live backend).
    live_idle: int = 0

    @property
    def live(self) -> bool:
        return self.job.config.backend == "live"

    @property
    def done(self) -> bool:
        return self.state != "running"


def _build_tenant_job(spec: TenantSpec
                      ) -> tuple[TornadoJob, list[ScheduledQuery]]:
    """The one build path shared by the manager and the solo reference
    run — identical config, feed instants and query instants, which is
    what makes the two runs digest-comparable."""
    config = spec.config if spec.config is not None else TornadoConfig()
    if config.tenant != spec.tenant:
        config = replace(config, tenant=spec.tenant)
    if spec.query_times and config.backend == "live":
        raise QueryError(
            "backend='live' does not support branch-loop queries yet")
    job = TornadoJob(spec.app_factory(), config)
    job.master.set_branch_limit(spec.quota.max_branches)
    if spec.feeds:
        job.ingester.schedule_stream(
            spec.feeds, max_pending=spec.quota.max_pending_inputs)
    handles = [job.schedule_query(at, full_activation)
               for at, full_activation in spec.query_times]
    return job, handles


def run_solo(spec: TenantSpec) -> TornadoJob:
    """Reference run for the isolation oracle: the same spec alone on
    its own cluster.  Sim backend runs to the spec's horizon; live
    backend runs to convergence."""
    job, _handles = _build_tenant_job(spec)
    if job.config.backend == "live":
        job.run_until_converged()
    else:
        job.run(until=spec.horizon)
    return job


class JobManager:
    """Admits and fairly schedules N tenants on one processor pool."""

    def __init__(self, pool_size: int = 8, window: float = WINDOW,
                 window_max_events: int = WINDOW_MAX_EVENTS,
                 balance_every: int = 0,
                 live_passes: int = LIVE_PASSES) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0: {window}")
        if window_max_events < 1:
            raise ValueError("window_max_events must be >= 1")
        if balance_every < 0:
            raise ValueError("balance_every must be >= 0")
        self.pool = ProcessorPool(pool_size)
        self.window = window
        self.window_max_events = window_max_events
        self.live_passes = live_passes
        self.tenants: dict[str, TenantRecord] = {}
        self._pending: list[TenantSpec] = []
        self.round = 0
        #: Admissions retried because the pool was full at arrival.
        self.deferred_admissions = 0
        # Cross-tenant balancer: the PR 4 planner over credit tokens.
        self.balance_every = balance_every
        self._balancer = MigrationPlanner(TornadoConfig(
            rebalance_enabled=True, migration_max_batch=1))
        self._credit_owner: dict[str, str] = {}
        self.credit_moves = 0

    # ---------------------------------------------------------- admission
    def submit(self, spec: TenantSpec) -> TenantRecord | None:
        """Admit a tenant (or park it until its arrival round).  Raises
        typed :class:`~repro.errors.AdmissionError` subclasses on
        rejection; a rejected submission leaves no residue (slots,
        records, credits all untouched or rolled back)."""
        if spec.tenant in self.tenants or any(
                pending.tenant == spec.tenant for pending in self._pending):
            raise DuplicateTenantError(
                f"tenant {spec.tenant!r} already submitted")
        self._check_quota(spec)
        if spec.arrival > self.round:
            self._pending.append(spec)
            self._pending.sort(key=lambda s: (s.arrival, s.tenant))
            return None
        return self._admit(spec)

    def _check_quota(self, spec: TenantSpec) -> None:
        config = spec.config if spec.config is not None else TornadoConfig()
        if config.n_processors > spec.quota.max_processors:
            raise QuotaExceededError(
                f"tenant {spec.tenant!r} wants {config.n_processors} "
                f"processors, quota allows {spec.quota.max_processors}")

    def _admit(self, spec: TenantSpec) -> TenantRecord:
        config = spec.config if spec.config is not None else TornadoConfig()
        slots = self.pool.lease(spec.tenant, config.n_processors)
        try:
            job, handles = _build_tenant_job(spec)
        except BaseException:
            # Build or initial feed failed (e.g. BackpressureError):
            # quota accounting must return to zero.
            self.pool.release(spec.tenant)
            raise
        record = TenantRecord(spec=spec, job=job, queries=handles,
                              slots=slots)
        self.tenants[spec.tenant] = record
        for index in range(spec.quota.weight):
            self._credit_owner[f"{spec.tenant}::cr{index}"] = spec.tenant
        return record

    def _admit_pending(self) -> None:
        remaining = []
        for spec in self._pending:
            if spec.arrival > self.round:
                remaining.append(spec)
                continue
            try:
                self._admit(spec)
            except PoolExhaustedError:
                # Retry next round, once capacity frees up.
                self.deferred_admissions += 1
                remaining.append(spec)
        self._pending = remaining

    # ----------------------------------------------------------- feeding
    def feed(self, tenant: str, tuples: Iterable[StreamTuple]) -> int:
        """Feed a running tenant, subject to its backpressure quota."""
        record = self._running(tenant)
        return record.job.ingester.schedule_stream(
            list(tuples),
            max_pending=record.spec.quota.max_pending_inputs)

    def _running(self, tenant: str) -> TenantRecord:
        record = self.tenants.get(tenant)
        if record is None:
            raise QueryError(f"unknown tenant {tenant!r}")
        if record.state != "running":
            raise QueryError(
                f"tenant {tenant!r} is {record.state}, not running")
        return record

    # -------------------------------------------------------- scheduling
    def _effective_weight(self, tenant: str) -> int:
        owned = sum(1 for owner in self._credit_owner.values()
                    if owner == tenant)
        return max(1, owned)

    def round_robin_once(self) -> bool:
        """One weighted-round-robin pass over all running tenants, in
        sorted tenant order; each tenant gets one dispatch window per
        credit token it owns.  Returns whether any tenant is still
        running (or pending admission)."""
        self._admit_pending()
        for tenant in sorted(self.tenants):
            record = self.tenants[tenant]
            if record.state != "running":
                continue
            for _ in range(self._effective_weight(tenant)):
                if record.state != "running":
                    break
                self._grant_window(record)
        self.round += 1
        if self.balance_every and self.round % self.balance_every == 0:
            self._balance()
        return bool(self._pending) or any(
            record.state == "running"
            for record in self.tenants.values())

    def run_until_all_done(self, max_rounds: int = 100_000) -> int:
        """Drive rounds until every tenant finished; returns the number
        of rounds run.  Raises ``RuntimeError`` with per-tenant stall
        diagnostics if ``max_rounds`` is exhausted first."""
        started = self.round
        while self.round_robin_once():
            if self.round - started >= max_rounds:
                stuck = {
                    tenant: {
                        "clock": record.job.sim.now,
                        "horizon": record.spec.horizon,
                        "windows": record.windows,
                        "truncated": record.truncated,
                    }
                    for tenant, record in self.tenants.items()
                    if record.state == "running"}
                raise RuntimeError(
                    f"tenants still running after {max_rounds} rounds: "
                    f"{stuck}")
        return self.round - started

    def _grant_window(self, record: TenantRecord) -> None:
        record.windows += 1
        try:
            if record.live:
                self._grant_live_window(record)
            else:
                self._grant_sim_window(record)
        except Exception as exc:  # fault isolation: contain, don't spread
            self._fail(record, exc)

    def _grant_sim_window(self, record: TenantRecord) -> None:
        sim = record.job.sim
        target = min((record.k + 1) * self.window, record.spec.horizon)
        sim.run(until=target, max_events=self.window_max_events)
        if sim.now < target and sim.pending_events:
            # Event budget cut the window short: resume toward the SAME
            # target next turn (k unchanged) so boundaries stay put.
            record.truncated += 1
            return
        record.k += 1
        self._check_store_quota(record)
        if record.state == "running" and target >= record.spec.horizon:
            self._finish(record)

    def _grant_live_window(self, record: TenantRecord) -> None:
        job = record.job
        job.pump_slice(passes=self.live_passes)
        if job.converged:
            record.live_idle += 1
            if record.live_idle >= LIVE_IDLE_CONFIRMATIONS:
                self._finish(record)
        else:
            record.live_idle = 0

    # ------------------------------------------------------------ quotas
    def _check_store_quota(self, record: TenantRecord) -> None:
        limit = record.spec.quota.max_store_bytes
        if record.job.store.approx_bytes() <= limit:
            return
        record.job.gc()
        record.gcs += 1
        footprint = record.job.store.approx_bytes()
        if footprint > limit:
            record.state = "evicted"
            record.error = QuotaExceededError(
                f"tenant {record.spec.tenant!r} store footprint "
                f"~{footprint}B exceeds quota {limit}B after GC")
            self._release(record)

    # --------------------------------------------------------- lifecycle
    def _finish(self, record: TenantRecord) -> None:
        record.state = "done"
        self._release(record)

    def _fail(self, record: TenantRecord, exc: Exception) -> None:
        record.state = "failed"
        record.error = exc
        self._release(record)

    def _release(self, record: TenantRecord) -> None:
        tenant = record.spec.tenant
        self.pool.release(tenant)
        for token in [token for token, owner in self._credit_owner.items()
                      if owner == tenant]:
            del self._credit_owner[token]
        self._balancer.forget(tenant)

    def shutdown(self) -> None:
        """Tear down live-backend tenants' worker processes (no-op for
        sim tenants).  Idempotent."""
        for record in self.tenants.values():
            if record.live:
                record.job.shutdown()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # --------------------------------------------------------- balancing
    def _balance(self) -> None:
        """Feed per-tenant *idle* time into the PR 4 planner and move
        credit tokens from idle-rich tenants to busy ones.  Only
        sim-backend tenants participate (their virtual clocks are
        commensurable); window boundaries are untouched, so this is
        digest-neutral."""
        running = sorted(
            tenant for tenant, record in self.tenants.items()
            if record.state == "running" and not record.live)
        if len(running) < 2:
            return
        now = self.round * self.window
        for tenant in running:
            record = self.tenants[tenant]
            idle = (len(record.slots) * record.job.sim.now
                    - record.job.master.total_busy_time())
            tokens = tuple(
                (token, 1)
                for token in sorted(self._credit_owner)
                if self._credit_owner[token] == tenant)
            self._balancer.observe(tenant, idle, now, tokens)
        moves = self._balancer.plan(
            running, lambda token: self._credit_owner[token])
        for token, _source, target in moves:
            self._credit_owner[token] = target
            self.credit_moves += 1

    # ------------------------------------------------------ observability
    def states(self) -> dict[str, str]:
        return {tenant: record.state
                for tenant, record in sorted(self.tenants.items())}

    def unresolved_queries(self, tenant: str) -> list[ScheduledQuery]:
        record = self.tenants[tenant]
        job = record.job
        return [handle for handle in record.queries
                if handle.query_id is None
                or not (job.ingester.query_done(handle.query_id)
                        or job.query_rejected(handle.query_id))]

    def _traces(self) -> dict[str, Any]:
        # Live-backend jobs have no flight recorder (their oracle is
        # final-state equality); only sim tenants carry a trace.
        return {tenant: record.job.trace
                for tenant, record in sorted(self.tenants.items())
                if not record.live}

    def digests(self) -> dict[str, str]:
        """Per-tenant flight-recorder digests (sim tenants) — each
        comparable 1:1 with :func:`run_solo` of the same spec."""
        return {tenant: trace.digest()
                for tenant, trace in self._traces().items()}

    def merged_dump(self) -> str:
        """Combined tenant-prefixed trace dump (see
        :func:`repro.obs.merge_named_dumps`)."""
        return merge_named_dumps(self._traces())

    def render_digests(self) -> str:
        return render_tenant_digests(self._traces())

    def final_values(self, tenant: str) -> dict[Any, Any]:
        return self.tenants[tenant].job.main_values()
