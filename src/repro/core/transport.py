"""Reliable at-least-once transport (paper §5.3).

Storm's own acking cannot track Tornado's cyclic, amplifying tuple trees,
so Tornado tracks message passing itself: every session/control message is
wrapped in an :class:`Envelope`, the receiver acknowledges on delivery, and
unacknowledged messages are retransmitted after a timeout.  Receivers
de-duplicate by ``(sender, msg_id)``; duplicates that slip through a
receiver restart are rendered harmless by the causality of the iteration
model and the idempotence of ``gather``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # annotation-only; the runtime never touches numpy
    import numpy as np

from repro.core.messages import Envelope, TransportAck, Unreliable
from repro.simulator import Network, Simulator

#: Per-sender dedup window; old entries are evicted FIFO.
DEDUP_WINDOW = 65536


class TransportChaos:
    """Message-level fault plane shared by a job's reliable endpoints.

    While :attr:`active`, each reliable transmission may be *dropped*
    (the wire send is suppressed — the retransmit timer is still armed,
    so at-least-once delivery self-heals) or *duplicated* (sent twice —
    the receiver's ``(sender, msg_id)`` dedup must absorb the copy).
    Draws come from one seeded stream, so a chaos run is deterministic
    in (seed, schedule); endpoints without a plane installed never draw.
    """

    def __init__(self, rng: np.random.Generator, drop_rate: float = 0.0,
                 dup_rate: float = 0.0) -> None:
        if not 0.0 <= drop_rate + dup_rate <= 1.0:
            raise ValueError("drop_rate + dup_rate must be within [0, 1]")
        self.rng = rng
        self.drop_rate = drop_rate
        self.dup_rate = dup_rate
        self.active = False
        self.dropped = 0
        self.duplicated = 0

    def enable(self) -> None:
        self.active = True

    def disable(self) -> None:
        self.active = False

    def verdict(self) -> str:
        """One deterministic draw: ``"drop"``, ``"dup"`` or ``"pass"``."""
        if not self.active:
            return "pass"
        roll = float(self.rng.random())
        if roll < self.drop_rate:
            self.dropped += 1
            return "drop"
        if roll < self.drop_rate + self.dup_rate:
            self.duplicated += 1
            return "dup"
        return "pass"


class ReliableEndpoint:
    """Transport state owned by one actor."""

    def __init__(self, sim: Simulator, network: Network, owner: str,
                 timeout: float = 0.5) -> None:
        self.sim = sim
        self.network = network
        self.owner = owner
        self.timeout = timeout
        #: Optional shared fault plane (see :class:`TransportChaos`).
        self.chaos: TransportChaos | None = None
        self._next_id = 0
        self._outbox: dict[int, tuple[str, Any]] = {}
        self._timers: dict[int, Any] = {}
        self._tags: dict[int, str] = {}
        #: Outstanding (sent, unacknowledged) messages per tag — used by
        #: the quiescence detector to see per-loop in-flight traffic.
        self.pending_by_tag: dict[str, int] = {}
        self._seen: dict[str, OrderedDict[int, None]] = {}
        self.retransmissions = 0
        self.sent_reliable = 0

    # ------------------------------------------------------------- sending
    def send(self, dst: str, payload: Any, tag: str | None = None) -> None:
        """Send with retransmission until acknowledged; an optional
        ``tag`` groups the message into :attr:`pending_by_tag`."""
        self._next_id += 1
        msg_id = self._next_id
        self._outbox[msg_id] = (dst, payload)
        if tag is not None:
            self._tags[msg_id] = tag
            self.pending_by_tag[tag] = self.pending_by_tag.get(tag, 0) + 1
        self.sent_reliable += 1
        self._transmit(dst, Envelope(msg_id, payload))
        # Retransmit timers are almost always cancelled by the ack, so
        # they live on the timer wheel: O(1) schedule, true removal.
        self._timers[msg_id] = self.sim.schedule_timer(
            self.timeout, self._retransmit, msg_id)

    def _transmit(self, dst: str, envelope: Envelope) -> None:
        """Put one envelope on the wire, subject to the chaos plane: a
        dropped transmission is recovered by the retransmit timer, a
        duplicated one by the receiver's dedup window."""
        if self.chaos is not None:
            verdict = self.chaos.verdict()
            if verdict == "drop":
                if self.sim.trace.enabled:
                    self.sim.trace.record(self.sim.now, "chaos",
                                          "drop", actor=self.owner,
                                          dst=dst, msg=envelope.msg_id)
                return
            if verdict == "dup":
                if self.sim.trace.enabled:
                    self.sim.trace.record(self.sim.now, "chaos",
                                          "dup", actor=self.owner,
                                          dst=dst, msg=envelope.msg_id)
                self.network.send(self.owner, dst, envelope)
        self.network.send(self.owner, dst, envelope)

    def send_unreliable(self, dst: str, payload: Any) -> None:
        self.network.send(self.owner, dst, Unreliable(payload))

    def _retransmit(self, msg_id: int) -> None:
        entry = self._outbox.get(msg_id)
        if entry is None:
            return
        dst, payload = entry
        self.retransmissions += 1
        self._transmit(dst, Envelope(msg_id, payload))
        self._timers[msg_id] = self.sim.schedule_timer(
            self.timeout, self._retransmit, msg_id)

    # ----------------------------------------------------------- receiving
    def on_message(self, message: Any, sender: str) -> Any:
        """Unwrap a transport-level message.

        Returns the application payload to process, or ``None`` when the
        message was transport housekeeping or a duplicate.
        """
        if isinstance(message, TransportAck):
            self._outbox.pop(message.msg_id, None)
            timer = self._timers.pop(message.msg_id, None)
            if timer is not None:
                timer.cancel()
            tag = self._tags.pop(message.msg_id, None)
            if tag is not None:
                remaining = self.pending_by_tag.get(tag, 0) - 1
                if remaining > 0:
                    self.pending_by_tag[tag] = remaining
                else:
                    # Drop the key outright: long runs cycle through many
                    # tags (one per branch loop) and keeping zero entries
                    # grows the dict unboundedly.
                    self.pending_by_tag.pop(tag, None)
            return None
        if isinstance(message, Unreliable):
            return message.payload
        if isinstance(message, Envelope):
            self.network.send(self.owner, sender,
                              TransportAck(message.msg_id))
            seen = self._seen.setdefault(sender, OrderedDict())
            if message.msg_id in seen:
                return None
            seen[message.msg_id] = None
            while len(seen) > DEDUP_WINDOW:
                seen.popitem(last=False)
            return message.payload
        return message

    def purge_unacked(self, dst: str, kinds: tuple[type, ...] = (),
                      predicate: Any = None) -> int:
        """Stop retransmitting unacknowledged messages addressed to
        ``dst`` that match the payload ``kinds`` (or an arbitrary
        ``predicate``, for container payloads such as session batches).
        Used when ``dst`` restarts: its dedup window died with it, so a
        pre-crash envelope would be re-delivered as *fresh* — and a
        stale PREPARE landing after its producer committed wedges the
        consumer forever (nothing ever clears the ghost ``prepare_list``
        entry).  The recovery protocol re-sends every still-live PREPARE
        explicitly."""
        purged = 0
        for msg_id, (dest, payload) in list(self._outbox.items()):
            if dest != dst:
                continue
            if not (isinstance(payload, kinds) if kinds
                    else predicate is not None and predicate(payload)):
                continue
            del self._outbox[msg_id]
            timer = self._timers.pop(msg_id, None)
            if timer is not None:
                timer.cancel()
            tag = self._tags.pop(msg_id, None)
            if tag is not None:
                remaining = self.pending_by_tag.get(tag, 0) - 1
                if remaining > 0:
                    self.pending_by_tag[tag] = remaining
                else:
                    self.pending_by_tag.pop(tag, None)
            purged += 1
        return purged

    # ------------------------------------------------------------ lifecycle
    def clear(self) -> None:
        """Drop all transport state (crash semantics)."""
        self._outbox.clear()
        self._seen.clear()
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._tags.clear()
        self.pending_by_tag.clear()

    @property
    def unacked(self) -> int:
        return len(self._outbox)

    def unacked_payloads(self) -> list[Any]:
        """Payloads still awaiting acknowledgement (in flight)."""
        return [payload for _dst, payload in self._outbox.values()]
