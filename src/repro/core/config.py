"""Runtime configuration for a Tornado job (and per-tenant quotas)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TenantQuota:
    """Admission-control limits for one tenant of a shared processor pool
    (:class:`repro.core.jobmanager.JobManager`).

    The quota is checked at submission time (``max_processors`` against
    the pool lease) and continuously while the tenant runs: branch-loop
    forks beyond ``max_branches`` queue or shed exactly like the
    single-job admission path, feeds beyond ``max_pending_inputs`` raise
    :class:`~repro.errors.BackpressureError` at the ingester, and a store
    footprint past ``max_store_bytes`` first triggers a GC and then
    evicts the tenant.
    """

    #: Weighted-round-robin share of dispatch windows (≥ 1).
    weight: int = 1
    #: Most pool slots (processors) this tenant may lease.
    max_processors: int = 4
    #: Concurrent branch loops (tightens the job's own
    #: ``max_concurrent_branches`` — never loosens it).
    max_branches: int = 8
    #: Scheduled-but-not-ingested stream tuples before ``feed`` pushes
    #: back (the per-tenant ingester backpressure bound).
    max_pending_inputs: int = 100_000
    #: Approximate versioned-store footprint before GC, then eviction.
    max_store_bytes: int = 1 << 30

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise ValueError("weight must be >= 1")
        if self.max_processors < 1:
            raise ValueError("max_processors must be >= 1")
        if self.max_branches < 1:
            raise ValueError("max_branches must be >= 1")
        if self.max_pending_inputs < 1:
            raise ValueError("max_pending_inputs must be >= 1")
        if self.max_store_bytes < 1:
            raise ValueError("max_store_bytes must be >= 1")


@dataclass
class TornadoConfig:
    """All knobs of a simulated Tornado deployment.

    The cost parameters are per-event virtual-time charges; their defaults
    are scaled so that the bundled experiments reproduce the *shapes* of the
    paper's figures at laptop scale.
    """

    # -------------------------------------------------------------- layout
    n_processors: int = 4
    n_nodes: int = 4
    seed: int = 0
    #: Tenant namespace label when the job runs under a
    #: :class:`~repro.core.jobmanager.JobManager` ("" = single-tenant).
    #: Prefixes the tenant's stream in merged flight-recorder dumps.
    tenant: str = ""

    # ------------------------------------------------------------- backend
    #: Execution backend.  "sim" (default) runs everything on the
    #: deterministic DES kernel under virtual time.  "live" runs each
    #: processor in its own OS process (``repro.live``), exchanging the
    #: same frozen-dataclass protocol messages over multiprocessing
    #: queues; correctness is cross-checked against the DES run via the
    #: flight-recorder oracle (``repro.live.oracle``).
    backend: str = "sim"

    # -------------------------------------------------------------- kernel
    #: Kernel fast path: timer wheel for fixed-delay timers, tombstone
    #: compaction in the event heap, same-instant message coalescing.
    #: ``False`` runs the legacy heap-only kernel — same seed, byte
    #: identical trace, just slower (kept as the A/B perf baseline).
    fast_path: bool = True

    #: Delta path (sender-side combiners + batched scatter I/O + the
    #: versioned-store per-loop index/cache).  Scatters bound for the
    #: same destination processor within one dispatch window ride one
    #: envelope, merged per ``(producer, consumer)`` when the program
    #: declares an ``update_combiner``; the store keeps per-loop key
    #: indexes, pending delta logs with periodic rebasing, and an LRU
    #: snapshot cache.  ``False`` runs the legacy one-envelope-per-value
    #: one-version-per-call path byte for byte (the A/B perf baseline —
    #: same precedent as ``fast_path``).  Converged results are identical
    #: either way; message counts and virtual timings are not.
    delta_path: bool = True

    #: Columnar vertex-state engine: the versioned store keeps per-loop
    #: numpy column slabs ((slot << 32) | iteration composites + object
    #: value columns, pending slab log, batched rebases) instead of
    #: per-key Python chains, and combiner-friendly programs that
    #: declare an algebra vector spec gather through numpy kernels.
    #: ``False`` (the default) runs the object-layout store byte for
    #: byte — same seed, byte-identical flight-recorder digests either
    #: way (the scalar path is the oracle, same precedent as
    #: ``fast_path``/``delta_path``).
    columnar: bool = False

    #: Columnar *wire* regime: at session-window flush, same-``(loop,
    #: destination)`` scatters whose program declares a
    #: :class:`~repro.core.dsl.VectorSpec` are packed into typed column
    #: runs (producers, consumers, iterations, values) inside one
    #: :class:`~repro.core.messages.ColumnBatch` frame instead of a list
    #: of per-vertex ``VertexUpdate`` objects; the receiver gathers the
    #: rows through a batched fast path.  Scalar fallback covers
    #: unconvertible values, mid-window owner flips and non-vector
    #: programs.  Requires ``delta_path`` (the pack happens at window
    #: flush).  ``False`` (the default) ships per-vertex objects byte for
    #: byte — same seed, byte-identical flight-recorder digests either
    #: way, sim and live (fifth A/B gate, same precedent as
    #: ``fast_path``/``delta_path``/``columnar``/``placement``).
    columnar_wire: bool = False

    # ------------------------------------------------------ iteration model
    #: Delay bound B (paper §4.4).  1 = synchronous; large = asynchronous.
    delay_bound: int = 65536

    # --------------------------------------------------------------- costs
    #: Virtual seconds to gather one update/input into a vertex.
    gather_cost: float = 5e-5
    #: Virtual seconds to handle one control message (PREPARE/ACK/...).
    control_cost: float = 5e-6
    #: Virtual seconds for the master to handle one control message.
    master_cost: float = 1e-5
    #: Network latency / jitter / fabric capacity (msgs per second).
    net_latency: float = 3e-4
    net_jitter: float = 0.0
    net_capacity: float | None = None

    # -------------------------------------------------------------- storage
    #: "disk" (PostgreSQL-like, the default in the paper) or "memory"
    #: (LMDB-like, used for the Table 3 comparison).
    storage_backend: str = "disk"
    disk_seek_cost: float = 1.5e-3
    disk_record_cost: float = 2e-6
    #: Pending-log length that triggers a store rebase on write (delta
    #: and columnar layouts; the columnar layout additionally grows the
    #: threshold geometrically with the base slab).
    store_rebase_interval: int = 16
    #: Distinct ``(loop, bound)`` snapshot views kept by the store's LRU
    #: snapshot cache (delta and columnar layouts).
    store_snapshot_cache_size: int = 32

    # ------------------------------------------------------------- control
    #: How often processors report progress to the master.
    report_interval: float = 2e-2
    #: Reliable-transport retransmission timeout.
    retransmit_timeout: float = 0.5
    #: Merge converged branch results into the main loop: "if_quiescent"
    #: (paper default: only when no inputs arrived during the branch run),
    #: "always", or "never".
    merge_policy: str = "if_quiescent"
    #: Main-loop behaviour: "approximate" (paper's main loop — updates
    #: propagate continuously) or "batch" (doBatchProcessing: the main loop
    #: only accumulates inputs; branch loops do all the work).
    main_loop_mode: str = "approximate"
    # ------------------------------------------------------------ branches
    #: Admission control for branch loops (paper §5.2: a branch starts
    #: only "if there are sufficient idle processors").
    max_concurrent_branches: int = 8
    #: What to do with queries beyond the cap: "queue" them until a branch
    #: finishes, or "shed" them (reject immediately — the load-shedding
    #: direction of paper §8).
    branch_admission: str = "queue"

    # ----------------------------------------------------------- placement
    #: Submission-time vertex placement.  "round_robin" (the default) is
    #: the paper's layout: vertices hash onto processors, processors map
    #: onto nodes round-robin — byte-identical to the pre-placement
    #: runtime.  "resource_aware" runs the R-Storm-style packer
    #: (:mod:`repro.core.placement`) over the first fed stream: demand
    #: vectors (declared by the program or profiled from the stream) are
    #: packed onto processors to minimise network-distance-weighted
    #: traffic under capacity constraints, and the resulting pins are
    #: applied to the partition scheme before ingestion starts.
    placement: str = "round_robin"
    #: Relative capacity per node (cycled over nodes; empty = uniform).
    #: ``(2.0, 1.0)`` makes even nodes twice as capacious as odd ones —
    #: the heterogeneous-cluster knob for the placement benchmark.
    placement_node_capacity: tuple = ()

    # ----------------------------------------------------------- balancing
    #: Enable the master's load rebalancer (paper §5.1): when processor
    #: busy times skew beyond ``rebalance_factor``, ingestion is paused,
    #: the hottest vertices are reassigned at quiescence, and the
    #: computation resumes from the last terminated iteration.
    rebalance_enabled: bool = False
    rebalance_factor: float = 3.0
    #: Minimum absolute busy-time gap (seconds) before rebalancing.
    rebalance_min_gap: float = 0.05
    #: Minimum virtual time between two rebalances.
    rebalance_cooldown: float = 1.0
    #: "live": migrate vertex batches while the main loop keeps running
    #: (epoch-fenced handoff, no ingest pause).  "pause": the legacy
    #: stop-the-world rebalancer (pause ingest, wait for quiescence, move
    #: the hottest vertices) — kept as the A/B baseline.
    rebalance_mode: str = "live"
    #: Most vertices a single live-migration plan may move.
    migration_max_batch: int = 16
    #: Weight of the critical-path feedback term in the migration
    #: planner's cost model: per-processor criticality scores (fed back
    #: from a :class:`repro.obs.critical_path.CriticalPathReport` via
    #: :meth:`~repro.core.master.Master.apply_criticality`) inflate a
    #: processor's estimated load by ``1 + weight * score``.  0 (the
    #: default) disables the term — byte-identical planning either way
    #: until scores are actually applied.
    migration_criticality_weight: float = 0.0
    #: How many ``(vertex, weight)`` load pairs each progress report
    #: carries for the planner.
    migration_report_top_k: int = 8

    # ------------------------------------------------------- observability
    #: Enable the flight recorder (repro.obs.TraceRecorder).  Off by
    #: default: hot paths then pay a single boolean check per guarded
    #: site.  The metrics registry is always on (instruments are cheap).
    trace_enabled: bool = False
    #: Ring-buffer capacity of the flight recorder (events retained).
    trace_capacity: int = 262_144
    #: Record one ``net.send`` event (src, dst, eta) per network delivery
    #: while tracing — the communication edges the critical-path
    #: extractor (:mod:`repro.obs.critical_path`) walks.  Off by default:
    #: link events are high-volume and change the trace digest, so the
    #: digest oracles keep running against the link-free vocabulary.
    trace_links: bool = False

    #: Extra safety margin for approximate-mode forks: also activate
    #: vertices that committed within this window of virtual seconds
    #: before the fork.  In-flight scatters are tracked exactly through
    #: the reliable transport, so 0 is correct; a positive window adds
    #: belt-and-braces re-activation.
    fork_activation_window: float = 0.0

    def __post_init__(self) -> None:
        if self.backend not in ("sim", "live"):
            raise ValueError(f"unknown execution backend: {self.backend!r}")
        if self.n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        if self.delay_bound < 1:
            raise ValueError("delay_bound must be >= 1")
        if self.storage_backend not in ("disk", "memory"):
            raise ValueError(f"unknown backend: {self.storage_backend!r}")
        if self.columnar_wire and not self.delta_path:
            raise ValueError(
                "columnar_wire requires delta_path (column packing "
                "happens at session-window flush)")
        if self.store_rebase_interval < 1:
            raise ValueError("store_rebase_interval must be >= 1")
        if self.store_snapshot_cache_size < 1:
            raise ValueError("store_snapshot_cache_size must be >= 1")
        if self.merge_policy not in ("if_quiescent", "always", "never"):
            raise ValueError(f"unknown merge policy: {self.merge_policy!r}")
        if self.main_loop_mode not in ("approximate", "batch"):
            raise ValueError(f"unknown mode: {self.main_loop_mode!r}")
        if self.branch_admission not in ("queue", "shed"):
            raise ValueError(
                f"unknown admission policy: {self.branch_admission!r}")
        if self.max_concurrent_branches < 1:
            raise ValueError("max_concurrent_branches must be >= 1")
        if self.rebalance_mode not in ("live", "pause"):
            raise ValueError(
                f"unknown rebalance mode: {self.rebalance_mode!r}")
        if self.placement not in ("round_robin", "resource_aware"):
            raise ValueError(
                f"unknown placement policy: {self.placement!r}")
        if any(c <= 0 for c in self.placement_node_capacity):
            raise ValueError("node capacities must be positive")
        if self.migration_criticality_weight < 0:
            raise ValueError(
                "migration_criticality_weight must be >= 0")
        if self.migration_max_batch < 1:
            raise ValueError("migration_max_batch must be >= 1")
        if self.migration_report_top_k < 1:
            raise ValueError("migration_report_top_k must be >= 1")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
