"""The chaos campaign runner (ISSUE tentpole part 3).

A campaign draws N seeded :class:`ChaosSchedule`\\ s per workload, runs
each against a fig8-style job (SSSP and PageRank on the Tornado core;
a replaying word-count on the storm substrate), and judges every run
with the :mod:`repro.chaos.oracles`.  The first schedule of each
workload is executed twice and its flight-recorder digests compared
byte-for-byte — the determinism oracle.  A failing schedule is greedily
shrunk to a minimal reproduction (drop one fault at a time while the
failure persists) and dumped, along with the failing run's trace, to
the output directory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.algorithms.graph_common import EdgeStreamRouter
from repro.algorithms.pagerank import (PageRankProgram, reference_pagerank)
from repro.algorithms.sssp import SSSPProgram, reference_sssp
from repro.chaos import oracles
from repro.chaos.faults import (apply_to_cluster, apply_to_job,
                                fault_windows)
from repro.chaos.schedule import (ChaosSchedule, FaultMenu, FaultSpec,
                                  generate_schedule)
from repro.core import (Application, JobManager, TenantQuota, TenantSpec,
                        TornadoConfig, TornadoJob, run_solo)
from repro.core.messages import MAIN_LOOP
from repro.errors import QueryError, SimulationError
from repro.obs import TraceRecorder
from repro.simulator import FailureInjector, Network, Simulator
from repro.storm import (Bolt, ClusterConfig, LocalCluster, Spout,
                         TopologyBuilder)
from repro.streams import UniformRate, edge_stream

#: Virtual seconds during which faults may be active; every schedule is
#: fully healed by 80% of this.
HORIZON = 4.0
#: Mid-chaos query instant (liveness under fire).
T_MID = 1.5
#: Probe sampling step while the chaos unfolds.
SLICE = 0.25
#: Padding around fault windows excused by the liveness oracle, and the
#: largest allowed gap between terminations outside those windows.
LIVENESS_PAD = 1.5
LIVENESS_GAP = 1.5


def ring_chord_graph(n: int = 18) -> list[tuple[str, str]]:
    """A deterministic ring-plus-chords digraph: small enough for fast
    runs, meshy enough that every processor owns live vertices."""
    edges = [(f"v{i}", f"v{(i + 1) % n}") for i in range(n)]
    edges += [(f"v{i}", f"v{(i * 7 + 3) % n}") for i in range(0, n, 2)]
    return edges


@dataclass
class ChaosOutcome:
    """One judged chaos run."""

    workload: str
    schedule: ChaosSchedule
    oracles: list[oracles.OracleResult]
    digest: str
    trace_dump: str | None = None

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.oracles)

    def failures(self) -> list[oracles.OracleResult]:
        return [result for result in self.oracles if not result.passed]


# ===================================================== tornado workloads
class TornadoWorkload:
    """SSSP / PageRank on the Tornado core, fig8 configuration: batch
    main loop, never-merge branches, full-activation queries."""

    def __init__(self, name: str, job_seed: int = 7,
                 planted_restart_skew: int = 0) -> None:
        self.name = name
        self.job_seed = job_seed
        self.planted_restart_skew = planted_restart_skew
        self.edges = ring_chord_graph()
        self._golden: dict | None = None

    # ------------------------------------------------------ per-workload
    def application(self) -> Application:
        raise NotImplementedError

    def reference(self) -> dict:
        raise NotImplementedError

    def extract(self, values: dict) -> dict:
        raise NotImplementedError

    #: 0.0 = byte-exact; PageRank overrides with its tolerance band.
    golden_atol = 0.0
    reference_atol = 0.0
    storage_backend = "disk"
    #: ``"live"``/``"pause"`` turn the rebalancer on; ``None`` leaves it
    #: off.  With :attr:`plant_hot_spot`, every vertex starts on proc-0
    #: so each run migrates for real while the faults land.
    rebalance_mode: str | None = None
    plant_hot_spot = False

    # ------------------------------------------------------------ build
    def build(self) -> TornadoJob:
        rebalance = {}
        if self.rebalance_mode is not None:
            rebalance = dict(rebalance_enabled=True,
                             rebalance_mode=self.rebalance_mode,
                             rebalance_factor=1.5,
                             rebalance_min_gap=0.005,
                             rebalance_cooldown=0.1)
        config = TornadoConfig(
            seed=self.job_seed,
            n_processors=3,
            report_interval=0.01,
            retransmit_timeout=0.1,
            storage_backend=self.storage_backend,
            delay_bound=65536,
            merge_policy="never",
            trace_enabled=True,
            trace_capacity=200_000,
            **rebalance,
        )
        job = TornadoJob(self.application(), config)
        job.manifest.planted_restart_skew = self.planted_restart_skew
        if self.plant_hot_spot:
            vertices = sorted({v for edge in self.edges for v in edge})
            job.partition.reassign_batch(
                [(vertex, "proc-0") for vertex in vertices])
        job.feed(edge_stream(self.edges, UniformRate(rate=1000.0)))
        return job

    def menu(self) -> FaultMenu:
        processors = tuple(f"proc-{i}" for i in range(3))
        return FaultMenu(
            kill_targets=processors + (TornadoJob.MASTER,),
            link_endpoints=processors + (TornadoJob.MASTER,),
            disks=processors if self.storage_backend == "disk" else (),
            transport_chaos=True,
        )

    # ------------------------------------------------------------- runs
    def golden(self) -> dict:
        """Fault-free reference values for this job+seed (cached)."""
        if self._golden is None:
            outcome = self._execute(ChaosSchedule(seed=0, faults=[]))
            final = outcome["final"]
            if final is None:
                raise SimulationError(
                    f"golden run of {self.name} did not complete")
            self._golden = final
        return self._golden

    def run_chaos(self, schedule: ChaosSchedule) -> ChaosOutcome:
        run = self._execute(schedule)
        golden = self.golden()
        results = [run["probe"].check(),
                   oracles.manifest_consistency(run["manifest"],
                                                run["termination_times"]),
                   oracles.liveness(
                       run["termination_times"].get(MAIN_LOOP, []),
                       fault_windows(schedule, pad=LIVENESS_PAD),
                       completed=run["final"] is not None,
                       gap_bound=LIVENESS_GAP)]
        if run["final"] is not None:
            results.append(oracles.exactness(
                "exactness-vs-golden", run["final"], golden,
                atol=self.golden_atol))
            results.append(oracles.exactness(
                "exactness-vs-reference", run["final"], self.reference(),
                atol=self.reference_atol))
        if run["mid"] is not None:
            results.append(oracles.exactness(
                "mid-chaos-exactness", run["mid"], self.reference(),
                atol=self.reference_atol))
        outcome = ChaosOutcome(self.name, schedule, results, run["digest"])
        if not outcome.passed:
            outcome.trace_dump = run["trace_dump"]
        return outcome

    def _execute(self, schedule: ChaosSchedule) -> dict:
        job = self.build()
        apply_to_job(job, schedule)
        probe = oracles.FrontierProbe(job.manifest, MAIN_LOOP)
        mid_query = None
        while job.sim.now < HORIZON:
            job.run(until=min(job.sim.now + SLICE, HORIZON))
            probe.sample(job.sim.now)
            if mid_query is None and job.sim.now >= T_MID:
                mid_query = job.query(full_activation=True)
        mid = final = None
        try:
            if mid_query is not None:
                result = job.wait_for_query(mid_query, max_events=2_000_000)
                mid = self.extract(result.values)
        except (QueryError, SimulationError):
            pass  # a wedged mid-run query still lets the final one judge
        try:
            job.run_for(0.5)
            result = job.wait_for_query(
                job.query(full_activation=True), max_events=2_000_000)
            final = self.extract(result.values)
        except (QueryError, SimulationError):
            pass  # liveness oracle reports the incomplete run
        return {
            "probe": probe,
            "manifest": job.manifest,
            "termination_times": job.master.termination_times,
            "mid": mid,
            "final": final,
            "digest": job.trace.digest(),
            "trace_dump": job.trace.dump(),
        }


class SSSPWorkload(TornadoWorkload):
    def __init__(self, **kwargs) -> None:
        super().__init__("sssp", **kwargs)
        self.source = "v0"

    def application(self) -> Application:
        return Application(SSSPProgram(self.source), EdgeStreamRouter(),
                           name="sssp")

    def reference(self) -> dict:
        return {v: d for v, d in
                reference_sssp(self.edges, self.source).items()
                if not math.isinf(d)}

    def extract(self, values: dict) -> dict:
        out = {}
        for vertex, value in values.items():
            distance = getattr(value, "distance", value)
            if not math.isinf(distance):
                out[vertex] = distance
        return out


class MigrationWorkload(SSSPWorkload):
    """SSSP with a planted hot spot and the live migrator on: every
    schedule interleaves its faults with in-flight vertex handoffs, so
    the exact-recovery oracles also judge the migration protocol
    (epoch fencing, buffered-gather replay, crash re-drives)."""

    rebalance_mode = "live"
    plant_hot_spot = True

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.name = "migration"


def master_kill_mid_rebalance_outcome(
        planted_restart_skew: int = 0) -> ChaosOutcome:
    """The deterministic regression schedule for the durable
    ``rebalance_pending`` marker: probe a fault-free pause-mode run for
    the instant ingest pauses (virtual time is replayable, so the probe
    is exact), then kill the master at precisely that moment — after
    ``PauseIngest``, before the rebalance — and judge the run with the
    usual oracles."""

    class PauseRebalanceWorkload(SSSPWorkload):
        rebalance_mode = "pause"
        plant_hot_spot = True

        def __init__(self, **kwargs) -> None:
            super().__init__(**kwargs)
            self.name = "rebalance-pause"

    workload = PauseRebalanceWorkload(
        planted_restart_skew=planted_restart_skew)
    probe = workload.build()
    probe.run_until(lambda: probe.ingester.paused, max_events=2_000_000)
    kill_at = probe.sim.now
    schedule = ChaosSchedule(seed=0, faults=[
        FaultSpec(kind="kill", start=kill_at, duration=0.2,
                  a=TornadoJob.MASTER)])
    return workload.run_chaos(schedule)


class PageRankWorkload(TornadoWorkload):
    golden_atol = 0.01
    reference_atol = 0.02
    storage_backend = "memory"

    def __init__(self, **kwargs) -> None:
        super().__init__("pagerank", **kwargs)

    def application(self) -> Application:
        return Application(PageRankProgram(tolerance=1e-4),
                           EdgeStreamRouter(), name="pagerank")

    def reference(self) -> dict:
        return reference_pagerank(self.edges)

    def extract(self, values: dict) -> dict:
        return {vertex: getattr(value, "rank", value)
                for vertex, value in values.items()}


# ================================================ multi-tenant workload
class MultiTenantWorkload:
    """Two tenants on one :class:`~repro.core.JobManager`: tenant A
    ("chaotic" — SSSP with a planted hot spot and the live migrator on,
    disk-backed) takes the whole fault schedule; tenant B ("clean")
    shares only the pool.  The headline oracle is isolation: whatever
    the schedule does to A, B's flight-recorder digest and final state
    must stay byte-identical to B run solo on its own cluster.  A is
    still judged by the usual exact-recovery oracles."""

    name = "tenants"
    #: A runs past the campaign horizon so post-heal recovery can drain.
    HORIZON_A = HORIZON + 2.0
    HORIZON_B = 2.5

    def __init__(self, job_seed: int = 7,
                 planted_restart_skew: int = 0) -> None:
        self.job_seed = job_seed
        self.planted_restart_skew = planted_restart_skew
        self.edges = ring_chord_graph()
        self.source = "v0"
        self._golden: dict | None = None
        self._solo_b: tuple[str, dict] | None = None

    # ------------------------------------------------------------ specs
    def _application(self) -> Application:
        return Application(SSSPProgram(self.source), EdgeStreamRouter(),
                           name="sssp")

    def reference(self) -> dict:
        return {v: d for v, d in
                reference_sssp(self.edges, self.source).items()
                if not math.isinf(d)}

    def extract(self, values: dict) -> dict:
        out = {}
        for vertex, value in values.items():
            distance = getattr(value, "distance", value)
            if not math.isinf(distance):
                out[vertex] = distance
        return out

    def _spec_a(self) -> TenantSpec:
        config = TornadoConfig(
            seed=self.job_seed, n_processors=3, report_interval=0.01,
            retransmit_timeout=0.1, storage_backend="disk",
            delay_bound=65536, merge_policy="never", trace_enabled=True,
            trace_capacity=200_000, rebalance_enabled=True,
            rebalance_mode="live", rebalance_factor=1.5,
            rebalance_min_gap=0.005, rebalance_cooldown=0.1)
        return TenantSpec(
            tenant="chaotic", app_factory=self._application,
            config=config, quota=TenantQuota(max_processors=3),
            feeds=tuple(edge_stream(self.edges, UniformRate(rate=1000.0))),
            query_times=((T_MID, True),), horizon=self.HORIZON_A)

    def _spec_b(self) -> TenantSpec:
        config = TornadoConfig(
            seed=self.job_seed + 101, n_processors=2,
            report_interval=0.01, storage_backend="memory",
            merge_policy="never", trace_enabled=True,
            trace_capacity=200_000)
        return TenantSpec(
            tenant="clean", app_factory=self._application, config=config,
            quota=TenantQuota(max_processors=2),
            feeds=tuple(edge_stream(self.edges, UniformRate(rate=1000.0))),
            query_times=((T_MID, True),), horizon=self.HORIZON_B)

    def menu(self) -> FaultMenu:
        processors = tuple(f"proc-{i}" for i in range(3))
        return FaultMenu(
            kill_targets=processors + (TornadoJob.MASTER,),
            link_endpoints=processors + (TornadoJob.MASTER,),
            disks=processors,
            transport_chaos=True,
        )

    # ------------------------------------------------------------- runs
    def golden(self) -> dict:
        """Tenant A's values from a fault-free managed run (cached)."""
        if self._golden is None:
            final = self._execute(
                ChaosSchedule(seed=0, faults=[]))["a_final"]
            if final is None:
                raise SimulationError(
                    f"golden run of {self.name} did not complete")
            self._golden = final
        return self._golden

    def solo_b(self) -> tuple[str, dict]:
        """Tenant B alone on its own cluster: the isolation reference."""
        if self._solo_b is None:
            job = run_solo(self._spec_b())
            self._solo_b = (job.trace.digest(),
                            self.extract(job.main_values()))
        return self._solo_b

    def run_chaos(self, schedule: ChaosSchedule) -> ChaosOutcome:
        run = self._execute(schedule)
        golden = self.golden()
        solo_digest, solo_values = self.solo_b()
        results = [
            oracles.OracleResult(
                "tenant-isolation-digest",
                run["b_digest"] == solo_digest,
                "" if run["b_digest"] == solo_digest else
                f"clean tenant diverged: {run['b_digest'][:16]} != "
                f"solo {solo_digest[:16]}"),
            oracles.exactness("tenant-isolation-state",
                              run["b_values"], solo_values),
            _tag("clean", run["probe_b"].check()),
            _tag("clean", oracles.manifest_consistency(
                run["b_manifest"], run["b_terms"])),
            _tag("clean", oracles.liveness(
                run["b_terms"].get(MAIN_LOOP, []), [],
                completed=run["b_done"], gap_bound=LIVENESS_GAP)),
            _tag("chaotic", run["probe_a"].check()),
            _tag("chaotic", oracles.manifest_consistency(
                run["a_manifest"], run["a_terms"])),
            _tag("chaotic", oracles.liveness(
                run["a_terms"].get(MAIN_LOOP, []),
                fault_windows(schedule, pad=LIVENESS_PAD),
                completed=run["a_final"] is not None,
                gap_bound=LIVENESS_GAP)),
        ]
        if run["a_final"] is not None:
            results.append(oracles.exactness(
                "exactness-vs-golden", run["a_final"], golden))
            results.append(oracles.exactness(
                "exactness-vs-reference", run["a_final"],
                self.reference()))
        outcome = ChaosOutcome(self.name, schedule, results,
                               run["digest"])
        if not outcome.passed:
            outcome.trace_dump = run["trace_dump"]
        return outcome

    def _execute(self, schedule: ChaosSchedule) -> dict:
        manager = JobManager(pool_size=5, window=SLICE)
        rec_a = manager.submit(self._spec_a())
        rec_b = manager.submit(self._spec_b())
        rec_a.job.manifest.planted_restart_skew = self.planted_restart_skew
        # Hot spot: every vertex of A starts on proc-0, so each run
        # migrates for real while the faults land (PR 4 stress).
        vertices = sorted({v for edge in self.edges for v in edge})
        rec_a.job.partition.reassign_batch(
            [(vertex, "proc-0") for vertex in vertices])
        apply_to_job(rec_a.job, schedule)
        probe_a = oracles.FrontierProbe(rec_a.job.manifest, MAIN_LOOP)
        probe_b = oracles.FrontierProbe(rec_b.job.manifest, MAIN_LOOP)
        while manager.round_robin_once():
            probe_a.sample(rec_a.job.sim.now)
            probe_b.sample(rec_b.job.sim.now)
        # Post-heal drain + final query for A only — B must see no
        # driver op its solo reference run would not see.
        a_final = None
        try:
            rec_a.job.run_for(0.5)
            result = rec_a.job.wait_for_query(
                rec_a.job.query(full_activation=True),
                max_events=2_000_000)
            a_final = self.extract(result.values)
        except (QueryError, SimulationError):
            pass  # liveness oracle reports the incomplete run
        b_done = (rec_b.state == "done"
                  and not manager.unresolved_queries("clean"))
        return {
            "a_final": a_final,
            "a_manifest": rec_a.job.manifest,
            "a_terms": rec_a.job.master.termination_times,
            "probe_a": probe_a,
            "b_digest": rec_b.job.trace.digest(),
            "b_values": self.extract(rec_b.job.main_values()),
            "b_manifest": rec_b.job.manifest,
            "b_terms": rec_b.job.master.termination_times,
            "probe_b": probe_b,
            "b_done": b_done,
            "digest": (rec_a.job.trace.digest() + "/"
                       + rec_b.job.trace.digest()),
            "trace_dump": manager.merged_dump(),
        }


def _tag(prefix: str, result: oracles.OracleResult) -> oracles.OracleResult:
    """Prefix an oracle name with the tenant it judged."""
    return oracles.OracleResult(f"{prefix}:{result.oracle}",
                                result.passed, result.detail)


# ======================================================= storm workload
class ReplaySpout(Spout):
    """Emits ``n_tuples`` words; replays any message id not acked within
    ``replay_timeout`` virtual seconds.  Spout-side replay keeps
    at-least-once delivery even when a TREE_DONE/TREE_FAILED notice from
    the acker is itself lost to a partition."""

    def __init__(self, n_tuples: int, replay_timeout: float) -> None:
        self.n_tuples = n_tuples
        self.replay_timeout = replay_timeout
        self.next_id = 0
        self.pending: dict[int, float] = {}
        self.acked: set[int] = set()
        self.retry: list[int] = []

    def open(self, ctx, collector) -> None:
        self.ctx = ctx
        self.collector = collector

    def _emit(self, message_id: int) -> None:
        self.pending[message_id] = self.ctx.sim.now
        self.collector.emit({"word": f"w{message_id % 5}",
                             "__message_id__": message_id})

    def next_tuple(self) -> bool:
        if self.retry:
            self._emit(self.retry.pop(0))
            return True
        if self.next_id < self.n_tuples:
            self._emit(self.next_id)
            self.next_id += 1
            return True
        now = self.ctx.sim.now
        stale = [mid for mid, at in self.pending.items()
                 if now - at > self.replay_timeout]
        if stale:
            self._emit(min(stale))
            return True
        return False

    def ack(self, message_id: int) -> None:
        self.pending.pop(message_id, None)
        self.acked.add(message_id)

    def fail(self, message_id: int) -> None:
        if message_id in self.pending and message_id not in self.retry:
            self.retry.append(message_id)


class CountBolt(Bolt):
    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def prepare(self, ctx, collector) -> None:
        self.collector = collector

    def execute(self, tup) -> float:
        word = tup.values.get("word") if hasattr(tup, "values") else None
        if word is not None:
            self.counts[word] = self.counts.get(word, 0) + 1
            self.collector.ack(tup)
        return 1e-5


class StormWorkload:
    """Replaying word-count on the storm substrate with supervision:
    exercises the XOR acker and task restarts under kills, partitions
    and delay spikes."""

    name = "storm"
    N_TUPLES = 30

    def __init__(self, job_seed: int = 7) -> None:
        self.job_seed = job_seed

    def _task_names(self) -> list[str]:
        return ["wordcount:gen[0]", "wordcount:count[0]",
                "wordcount:count[1]"]

    def menu(self) -> FaultMenu:
        tasks = tuple(self._task_names())
        return FaultMenu(kill_targets=tasks, link_endpoints=tasks)

    def _build(self):
        sim = Simulator(seed=self.job_seed,
                        recorder=TraceRecorder(capacity=200_000,
                                               enabled=True))
        network = Network(sim, latency=1e-3, jitter=2e-4)
        cluster = LocalCluster(sim, network,
                               ClusterConfig(n_nodes=3,
                                             tuple_timeout=1.0))
        builder = TopologyBuilder("wordcount")
        spouts: list[ReplaySpout] = []
        bolts: list[CountBolt] = []

        def make_spout():
            spout = ReplaySpout(self.N_TUPLES, replay_timeout=1.5)
            spouts.append(spout)
            return spout

        def make_bolt():
            bolt = CountBolt()
            bolts.append(bolt)
            return bolt

        builder.set_spout("gen", make_spout)
        builder.set_bolt("count", make_bolt, parallelism=2) \
               .fields_grouping("gen", ("word",))
        cluster.submit(builder.build())
        cluster.enable_supervision(heartbeat=0.1, restart_delay=0.2)
        injector = FailureInjector(sim, network=network)
        return sim, cluster, injector, spouts[0], bolts

    def golden(self) -> dict:
        return {f"w{i}": self.N_TUPLES // 5 for i in range(5)}

    def run_chaos(self, schedule: ChaosSchedule) -> ChaosOutcome:
        sim, cluster, injector, spout, bolts = self._build()
        apply_to_cluster(sim, injector, schedule)
        all_ids = set(range(self.N_TUPLES))
        completed = True
        try:
            sim.run_until(lambda: spout.acked >= all_ids,
                          max_events=2_000_000)
        except SimulationError:
            completed = False
        # Let straggler trees drain so the conservation books can balance.
        sim.run(until=sim.now + 3.0)
        results = [oracles.OracleResult(
            "liveness", completed,
            "" if completed else
            f"{len(all_ids - spout.acked)} message ids never acked")]
        results.append(oracles.acker_conservation(sim.trace,
                                                  cluster.acker))
        counts: dict[str, int] = {}
        for bolt in bolts:
            for word, n in bolt.counts.items():
                counts[word] = counts.get(word, 0) + n
        short = {word: (counts.get(word, 0), want)
                 for word, want in self.golden().items()
                 if counts.get(word, 0) < want}
        results.append(oracles.OracleResult(
            "at-least-once-counts", not short,
            f"undercounted words: {short}" if short else ""))
        outcome = ChaosOutcome(self.name, schedule, results,
                               sim.trace.digest())
        if not outcome.passed:
            outcome.trace_dump = sim.trace.dump()
        return outcome


# ============================================================= campaign
@dataclass
class CampaignReport:
    outcomes: list[ChaosOutcome] = field(default_factory=list)
    shrunk: dict[tuple[str, int], ChaosSchedule] = field(
        default_factory=dict)
    determinism: dict[str, bool] = field(default_factory=dict)

    @property
    def failed(self) -> list[ChaosOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    @property
    def passed(self) -> bool:
        return (not self.failed
                and all(self.determinism.values()))

    def kind_coverage(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for outcome in self.outcomes:
            for kind in sorted(outcome.schedule.kinds()):
                tally[kind] = tally.get(kind, 0) + 1
        return dict(sorted(tally.items()))


def default_workloads(planted_restart_skew: int = 0) -> list:
    return [
        SSSPWorkload(planted_restart_skew=planted_restart_skew),
        PageRankWorkload(planted_restart_skew=planted_restart_skew),
        MigrationWorkload(planted_restart_skew=planted_restart_skew),
        StormWorkload(),
        MultiTenantWorkload(planted_restart_skew=planted_restart_skew),
    ]


def shrink(workload, schedule: ChaosSchedule,
           max_runs: int = 24) -> ChaosSchedule:
    """Greedy 1-minimal shrink: drop any single fault whose removal
    still reproduces the failure, until none does (or the budget runs
    out)."""
    current = schedule
    runs = 0
    improved = True
    while improved and len(current.faults) > 1 and runs < max_runs:
        improved = False
        for index in range(len(current.faults)):
            candidate = current.without(index)
            runs += 1
            if not workload.run_chaos(candidate).passed:
                current = candidate
                improved = True
                break
            if runs >= max_runs:
                break
    return current


def run_campaign(workloads, schedules_per_workload: int, base_seed: int,
                 out_dir: str | None = None,
                 log=print, shrink_failures: bool = True,
                 max_faults: int = 4) -> CampaignReport:
    report = CampaignReport()
    out_path = Path(out_dir) if out_dir is not None else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)
    for windex, workload in enumerate(workloads):
        menu = workload.menu()
        kinds = menu.kinds()
        for i in range(schedules_per_workload):
            seed = base_seed * 10_000 + windex * 1_000 + i
            schedule = generate_schedule(
                seed, menu, HORIZON, max_faults=max_faults,
                force_kind=kinds[i % len(kinds)])
            outcome = workload.run_chaos(schedule)
            report.outcomes.append(outcome)
            status = "ok" if outcome.passed else "FAIL"
            log(f"[{workload.name}] seed={seed} "
                f"faults={len(schedule.faults)} "
                f"kinds={','.join(sorted(schedule.kinds()))} {status}")
            if i == 0:
                # Determinism oracle: same seed, byte-identical trace.
                repeat = workload.run_chaos(schedule)
                same = repeat.digest == outcome.digest
                report.determinism[workload.name] = same
                log(f"[{workload.name}] determinism "
                    f"{'ok' if same else 'FAIL'} "
                    f"digest={outcome.digest[:16]}")
            if not outcome.passed:
                for result in outcome.failures():
                    log(f"    {result.line()}")
                minimal = schedule
                if shrink_failures:
                    minimal = shrink(workload, schedule)
                    report.shrunk[(workload.name, seed)] = minimal
                    log(f"    shrunk to {len(minimal.faults)} fault(s)")
                if out_path is not None:
                    stem = f"{workload.name}-seed{seed}"
                    text = (minimal.dump() + "\n"
                            + "\n".join(r.line()
                                        for r in outcome.oracles) + "\n")
                    (out_path / f"{stem}.schedule").write_text(text)
                    if outcome.trace_dump:
                        (out_path / f"{stem}.trace").write_text(
                            outcome.trace_dump)
    return report
