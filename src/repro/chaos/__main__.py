"""CLI: ``python -m repro.chaos [--quick] [--schedules N] [--seed S]``.

Runs a seeded chaos campaign against the fig8-style workloads and exits
non-zero if any oracle (or the same-seed determinism check) fails.
Failing schedules are shrunk to minimal reproductions and written, with
the failing run's flight-recorder trace, to ``--out``.
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos.campaign import (default_workloads,
                                  master_kill_mid_rebalance_outcome,
                                  run_campaign)

WORKLOADS = ("sssp", "pagerank", "migration", "storm", "tenants")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="seeded chaos campaigns with exact-recovery oracles")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer schedules per workload")
    parser.add_argument("--schedules", type=int, default=None,
                        help="schedules per workload "
                             "(default 12, or quick-mode preset)")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign base seed (default 1)")
    parser.add_argument("--workloads", nargs="+", choices=WORKLOADS,
                        default=list(WORKLOADS),
                        help="subset of workloads to run")
    parser.add_argument("--out", default="chaos-out",
                        help="directory for failing schedules and traces")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking failing schedules")
    parser.add_argument("--planted-restart-skew", type=int, default=0,
                        help="plant the test-only restart-frontier "
                             "mutation (the oracles must catch any "
                             "non-zero value)")
    args = parser.parse_args(argv)

    per_workload = args.schedules
    if per_workload is None:
        per_workload = 9 if args.quick else 12
    workloads = [w for w in default_workloads(args.planted_restart_skew)
                 if w.name in args.workloads]

    report = run_campaign(workloads, per_workload, args.seed,
                          out_dir=args.out,
                          shrink_failures=not args.no_shrink)

    # Deterministic regression: master killed after PauseIngest, before
    # the stop-the-world rebalance — the durable rebalance_pending
    # marker must get ingest moving again.
    rebalance_kill = master_kill_mid_rebalance_outcome(
        args.planted_restart_skew)
    report.outcomes.append(rebalance_kill)
    print(f"[rebalance-pause] master kill mid-rebalance "
          f"{'ok' if rebalance_kill.passed else 'FAIL'}")
    for result in rebalance_kill.failures():
        print(f"    {result.line()}")

    total = len(report.outcomes)
    failed = len(report.failed)
    coverage = ", ".join(f"{kind}:{n}"
                         for kind, n in report.kind_coverage().items())
    print(f"\n{total} schedules, {failed} failed; fault-kind coverage: "
          f"{coverage}")
    for name, same in sorted(report.determinism.items()):
        print(f"determinism[{name}]: {'ok' if same else 'FAIL'}")
    if not report.passed:
        print(f"FAILED — minimal repros in {args.out}/", file=sys.stderr)
        return 1
    print("all oracles passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
