"""Seeded fault schedules.

A :class:`ChaosSchedule` is a deterministic function of ``(seed, menu)``:
the same seed against the same fault menu always yields byte-identical
fault lists, so a failing campaign schedule can be replayed (and shrunk)
exactly.  Faults are drawn from the :class:`FaultMenu` a workload
publishes — which actors may be killed, which links partitioned, which
disks stalled, whether the reliable transport carries a chaos plane —
and every fault heals before ``heal_deadline`` so the post-chaos oracles
observe a fully repaired system.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

import numpy as np

#: Every fault kind the generator knows how to draw.
KINDS = ("kill", "partition", "delay", "disk_stall", "disk_slow",
         "drop_dup")


@dataclass(frozen=True)
class FaultMenu:
    """What a workload exposes to the schedule generator."""

    #: Actors that may be crashed (and will be recovered).
    kill_targets: tuple[str, ...] = ()
    #: Actors between which partitions / link delay spikes may occur.
    link_endpoints: tuple[str, ...] = ()
    #: Disk names (keys into ``job.disks``) that may be stalled/slowed.
    disks: tuple[str, ...] = ()
    #: Whether the workload has reliable endpoints for drop/duplication.
    transport_chaos: bool = False

    def kinds(self) -> tuple[str, ...]:
        out = []
        if self.kill_targets:
            out.append("kill")
        if len(self.link_endpoints) >= 2:
            out.extend(["partition", "delay"])
        if self.disks:
            out.extend(["disk_stall", "disk_slow"])
        if self.transport_chaos:
            out.append("drop_dup")
        return tuple(out)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault, in canonical (replayable) form.

    ``a``/``b`` name the targets (actor, link endpoints or disk) and
    ``x``/``y`` carry the numeric parameters of the kind (extra latency,
    slowdown factor, drop/dup rates).
    """

    kind: str
    start: float
    duration: float
    a: str = ""
    b: str = ""
    x: float = 0.0
    y: float = 0.0

    def line(self) -> str:
        """Canonical one-line rendering (stable across runs)."""
        return (f"{self.kind} start={self.start:.6f} "
                f"duration={self.duration:.6f} a={self.a} b={self.b} "
                f"x={self.x:.6f} y={self.y:.6f}")


@dataclass
class ChaosSchedule:
    """An ordered list of faults plus the seed that produced it."""

    seed: int
    faults: list[FaultSpec] = field(default_factory=list)

    def kinds(self) -> set[str]:
        return {fault.kind for fault in self.faults}

    def dump(self) -> str:
        lines = [f"schedule seed={self.seed} n={len(self.faults)}"]
        lines += [fault.line() for fault in self.faults]
        return "\n".join(lines) + "\n"

    def digest(self) -> str:
        return hashlib.sha256(self.dump().encode()).hexdigest()

    def without(self, index: int) -> "ChaosSchedule":
        """A copy with fault ``index`` removed — the shrinking step."""
        faults = [fault for i, fault in enumerate(self.faults)
                  if i != index]
        return replace(self, faults=faults)


def generate_schedule(seed: int, menu: FaultMenu, horizon: float,
                      max_faults: int = 4,
                      force_kind: str | None = None) -> ChaosSchedule:
    """Draw a schedule from ``seed``: 2..``max_faults`` faults, all
    starting in the first 60% of ``horizon`` and healed by 80% of it.

    ``force_kind`` pins the first fault's kind — the campaign uses it to
    guarantee coverage of every available kind across a run.
    """
    rng = np.random.default_rng(seed)
    kinds = menu.kinds()
    if not kinds:
        raise ValueError("fault menu offers no fault kinds")
    n_faults = int(rng.integers(2, max_faults + 1))
    faults: list[FaultSpec] = []
    killed: set[str] = set()
    used_drop_dup = False
    for index in range(n_faults):
        if index == 0 and force_kind is not None:
            kind = force_kind
        else:
            kind = str(rng.choice(kinds))
        # Singletons: one chaos-plane window, one kill per target.
        if kind == "drop_dup" and used_drop_dup:
            kind = "delay" if "delay" in kinds else kinds[0]
        start = float(rng.uniform(0.05, 0.6)) * horizon
        duration = float(rng.uniform(0.04, 0.2)) * horizon
        duration = min(duration, 0.8 * horizon - start)
        if duration <= 0:
            continue
        if kind == "kill":
            candidates = [t for t in menu.kill_targets if t not in killed]
            if not candidates:
                continue
            target = str(rng.choice(candidates))
            killed.add(target)
            faults.append(FaultSpec("kill", start, duration, a=target))
        elif kind == "partition":
            src, dst = (str(e) for e in rng.choice(
                menu.link_endpoints, size=2, replace=False))
            faults.append(FaultSpec("partition", start, duration,
                                    a=src, b=dst))
        elif kind == "delay":
            # Fabric-wide half the time, single-link otherwise.
            extra = float(rng.uniform(0.01, 0.08))
            if rng.random() < 0.5 or len(menu.link_endpoints) < 2:
                faults.append(FaultSpec("delay", start, duration, x=extra))
            else:
                src, dst = (str(e) for e in rng.choice(
                    menu.link_endpoints, size=2, replace=False))
                faults.append(FaultSpec("delay", start, duration,
                                        a=src, b=dst, x=extra))
        elif kind == "disk_stall":
            disk = str(rng.choice(menu.disks))
            faults.append(FaultSpec("disk_stall", start,
                                    min(duration, 0.4), a=disk))
        elif kind == "disk_slow":
            disk = str(rng.choice(menu.disks))
            factor = float(rng.uniform(2.0, 10.0))
            faults.append(FaultSpec("disk_slow", start, duration,
                                    a=disk, x=factor))
        elif kind == "drop_dup":
            used_drop_dup = True
            drop = float(rng.uniform(0.02, 0.15))
            dup = float(rng.uniform(0.02, 0.15))
            faults.append(FaultSpec("drop_dup", start, duration,
                                    x=drop, y=dup))
    faults.sort(key=lambda fault: (fault.start, fault.kind, fault.a))
    return ChaosSchedule(seed=seed, faults=faults)
