"""Mapping schedules onto live systems.

All faults are scheduled on the virtual timeline *before* the run starts,
through the same :class:`~repro.simulator.failures.FailureInjector` the
fault-tolerance experiments use, so a chaos run is an ordinary
deterministic simulation.  Transport drop/duplication installs a single
shared :class:`~repro.core.transport.TransportChaos` plane across every
reliable endpoint; its rng is a named simulator stream, so endpoints
draw identically for identical (seed, schedule) pairs — and not at all
in fault-free (golden) runs, which never install a plane.
"""

from __future__ import annotations

from repro.core.transport import TransportChaos
from repro.chaos.schedule import ChaosSchedule, FaultSpec


def _install_chaos_plane(sim, endpoints, fault: FaultSpec) -> TransportChaos:
    plane = TransportChaos(sim.random.stream("chaos-transport"),
                           drop_rate=fault.x, dup_rate=fault.y)
    for endpoint in endpoints:
        endpoint.chaos = plane
    sim.schedule_at(fault.start, plane.enable)
    sim.schedule_at(fault.start + fault.duration, plane.disable)
    return plane


def apply_to_job(job, schedule: ChaosSchedule) -> None:
    """Arm every fault of ``schedule`` against a ``TornadoJob``."""
    injector = job.failures
    for fault in schedule.faults:
        if fault.kind == "kill":
            injector.kill_at(fault.start, fault.a,
                             recover_after=fault.duration)
        elif fault.kind == "partition":
            injector.partition_at(fault.start, fault.a, fault.b,
                                  heal_after=fault.duration)
        elif fault.kind == "delay":
            injector.delay_spike_at(fault.start, fault.x, fault.duration,
                                    src=fault.a or None,
                                    dst=fault.b or None)
        elif fault.kind == "disk_stall":
            injector.disk_stall_at(fault.start, job.disks[fault.a],
                                   fault.duration)
        elif fault.kind == "disk_slow":
            injector.disk_slowdown_at(fault.start, job.disks[fault.a],
                                      fault.x, fault.duration)
        elif fault.kind == "drop_dup":
            _install_chaos_plane(job.sim, job.endpoints(), fault)
        else:
            raise ValueError(f"unknown fault kind {fault.kind!r}")


def apply_to_cluster(sim, injector, schedule: ChaosSchedule) -> None:
    """Arm ``schedule`` against a storm ``LocalCluster`` (no reliable
    transport or disks there: kills, partitions and delay spikes only)."""
    for fault in schedule.faults:
        if fault.kind == "kill":
            injector.kill_at(fault.start, fault.a,
                             recover_after=fault.duration)
        elif fault.kind == "partition":
            injector.partition_at(fault.start, fault.a, fault.b,
                                  heal_after=fault.duration)
        elif fault.kind == "delay":
            injector.delay_spike_at(fault.start, fault.x, fault.duration,
                                    src=fault.a or None,
                                    dst=fault.b or None)
        else:
            raise ValueError(
                f"fault kind {fault.kind!r} not applicable to a storm "
                f"cluster")


def fault_windows(schedule: ChaosSchedule,
                  pad: float) -> list[tuple[float, float]]:
    """Merged ``[start - pad, end + pad]`` windows of every fault — the
    intervals the liveness oracle treats as excused."""
    raw = sorted((fault.start - pad, fault.start + fault.duration + pad)
                 for fault in schedule.faults)
    merged: list[tuple[float, float]] = []
    for lo, hi in raw:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
