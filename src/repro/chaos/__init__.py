"""Chaos campaigns: seeded fault schedules + exact-recovery oracles.

Run ``python -m repro.chaos --quick`` for the CI smoke campaign; see
DESIGN.md §3e for the fault vocabulary and oracle definitions.
"""

from repro.chaos.campaign import (CampaignReport, ChaosOutcome,
                                  MultiTenantWorkload, PageRankWorkload,
                                  SSSPWorkload, StormWorkload,
                                  default_workloads, run_campaign, shrink)
from repro.chaos.faults import (apply_to_cluster, apply_to_job,
                                fault_windows)
from repro.chaos.oracles import (FrontierProbe, OracleResult,
                                 acker_conservation, exactness, liveness,
                                 manifest_consistency)
from repro.chaos.schedule import (ChaosSchedule, FaultMenu, FaultSpec,
                                  KINDS, generate_schedule)

__all__ = [
    "CampaignReport", "ChaosOutcome", "ChaosSchedule", "FaultMenu",
    "FaultSpec", "FrontierProbe", "KINDS", "MultiTenantWorkload",
    "OracleResult", "PageRankWorkload", "SSSPWorkload", "StormWorkload",
    "acker_conservation", "apply_to_cluster", "apply_to_job",
    "default_workloads", "exactness", "fault_windows",
    "generate_schedule", "liveness", "manifest_consistency",
    "run_campaign", "shrink",
]
