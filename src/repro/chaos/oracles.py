"""Exact-recovery oracles.

Each oracle inspects one completed chaos run and returns an
:class:`OracleResult`.  The properties checked (ISSUE: tentpole part 2):

* **Exactness** — the post-heal query equals a fault-free golden run of
  the same job and seed (and the analytic reference), byte-exact for
  SSSP and within the program tolerance for PageRank.
* **Frontier monotonicity** — the manifest's restart iteration, sampled
  while the chaos unfolds, never regresses.
* **Manifest consistency** — the restart frontier equals the highest
  iteration the master actually observed terminating; this is the oracle
  with teeth against the planted restart-skew mutation, which exactness
  alone would miss (SSSP re-derives the right answer from a frontier
  that is off by one in either direction).
* **Acker conservation** — every tuple tree registered with the acker
  finishes at most once (acked or failed, never both) and the books
  balance: inits = completions + failures + still-pending.
* **Liveness** — outside padded fault windows, consecutive main-loop
  terminations are never further apart than a generous bound, and the
  final query completes within the event budget at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class OracleResult:
    oracle: str
    passed: bool
    detail: str = ""

    def line(self) -> str:
        status = "ok" if self.passed else "FAIL"
        suffix = f": {self.detail}" if self.detail else ""
        return f"{status:4s} {self.oracle}{suffix}"


# ------------------------------------------------------------- exactness
def exactness(name: str, got: dict, want: dict,
              atol: float = 0.0) -> OracleResult:
    """Compare two result maps, exactly (``atol=0``) or within ``atol``."""
    problems = []
    for key in sorted(set(got) | set(want), key=str):
        g, w = got.get(key), want.get(key)
        if g is None or w is None:
            problems.append(f"{key}: got={g} want={w}")
        elif atol == 0.0:
            if g != w:
                problems.append(f"{key}: got={g} want={w}")
        elif not math.isclose(g, w, abs_tol=atol, rel_tol=0.0):
            problems.append(f"{key}: got={g} want={w} (atol={atol})")
        if len(problems) >= 4:
            break
    return OracleResult(name, not problems, "; ".join(problems))


# ------------------------------------------------ frontier monotonicity
@dataclass
class FrontierProbe:
    """Samples a loop's restart iteration over virtual time."""

    manifest: object
    loop: str
    samples: list[tuple[float, int]] = field(default_factory=list)

    def sample(self, now: float) -> None:
        self.samples.append(
            (now, self.manifest.restart_iteration(self.loop)))

    def check(self) -> OracleResult:
        for (t0, i0), (t1, i1) in zip(self.samples, self.samples[1:]):
            if i1 < i0:
                return OracleResult(
                    "frontier-monotonicity", False,
                    f"{self.loop} frontier regressed {i0}->{i1} "
                    f"between t={t0:.3f} and t={t1:.3f}")
        return OracleResult("frontier-monotonicity", True,
                            f"{len(self.samples)} samples")


# ------------------------------------------------- manifest consistency
def manifest_consistency(manifest, termination_times) -> OracleResult:
    """The restart frontier of every loop must equal the highest
    iteration the master recorded terminating (both are written in the
    same code path, so any skew means checkpoint bookkeeping is lying)."""
    for loop, times in sorted(termination_times.items()):
        if not times:
            continue
        observed = max(iteration for iteration, _time in times)
        restart = manifest.restart_iteration(loop)
        if restart != observed:
            return OracleResult(
                "manifest-consistency", False,
                f"loop {loop}: restart_iteration={restart} but master "
                f"observed termination up to {observed}")
    return OracleResult("manifest-consistency", True,
                        f"{len(termination_times)} loops")


# ----------------------------------------------------- acker conservation
def acker_conservation(trace, acker) -> OracleResult:
    """XOR-tree bookkeeping balances and no tree finishes twice."""
    if trace.evicted:
        return OracleResult("acker-conservation", True,
                            "skipped: trace ring evicted events")
    inits = {event.field("root")
             for event in trace.select("storm", "ack_init")}
    finishes: dict[int, list[str]] = {}
    for name in ("tree_done", "tree_failed"):
        for event in trace.select("storm", name):
            finishes.setdefault(event.field("root"), []).append(name)
    for root, outcomes in sorted(finishes.items()):
        if len(outcomes) > 1:
            return OracleResult(
                "acker-conservation", False,
                f"root {root} finished {len(outcomes)} times: {outcomes}")
        if root not in inits:
            return OracleResult(
                "acker-conservation", False,
                f"root {root} finished ({outcomes[0]}) but was never "
                f"registered")
    balance = acker.completed + acker.failed + acker.pending_trees
    if balance != len(inits):
        return OracleResult(
            "acker-conservation", False,
            f"{len(inits)} trees registered but done({acker.completed}) "
            f"+ failed({acker.failed}) + pending({acker.pending_trees}) "
            f"= {balance}")
    return OracleResult("acker-conservation", True,
                        f"{len(inits)} trees balanced")


# --------------------------------------------------------------- liveness
def liveness(termination_times, windows, completed: bool,
             gap_bound: float) -> OracleResult:
    """Bounded time between terminated iterations while no fault is in
    flight; ``windows`` are the padded fault intervals to excuse."""
    if not completed:
        return OracleResult("liveness", False,
                            "final query did not complete")

    def excused(t0: float, t1: float) -> bool:
        return any(t0 <= hi and t1 >= lo for lo, hi in windows)

    times = sorted(time for _iteration, time in termination_times)
    worst = 0.0
    for t0, t1 in zip(times, times[1:]):
        if excused(t0, t1):
            continue
        worst = max(worst, t1 - t0)
        if t1 - t0 > gap_bound:
            return OracleResult(
                "liveness", False,
                f"{t1 - t0:.3f}s between terminations at t={t0:.3f} and "
                f"t={t1:.3f} with no fault in flight (bound "
                f"{gap_bound:.3f}s)")
    return OracleResult("liveness", True,
                        f"worst fault-free gap {worst:.3f}s")
