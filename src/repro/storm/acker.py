"""The acker: Storm's XOR tuple-tree tracker.

Every spout tuple registers its root id here.  Each anchored emit XORs the
child's id into the root's checksum, and each ack XORs the acked tuple's id
out.  The checksum hits zero exactly when every tuple in the tree has been
both emitted and acked, at which point the spout is told the tree completed.
Trees that do not complete within the timeout are failed back to the spout,
which triggers replay (at-least-once delivery).

Two robustness details:

* Timeout events are cancelled when their tree finishes.  Leaving them to
  fire as no-ops would keep one dead heap entry per completed tuple alive
  for ``tuple_timeout`` virtual seconds — unbounded heap growth under
  sustained load.
* An ``ACK_VAL`` arriving *before* its ``ACK_INIT`` (reordered delivery,
  e.g. when spout and acker sit on different nodes with jitter) is not
  dropped: its value is buffered and XOR-folded into the tree when the
  init arrives.  Dropping it could only be repaired by a spurious timeout
  replay.  Buffered values expire after ``tuple_timeout`` so an init that
  never comes cannot leak memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.simulator import Actor, Network, Scheduled, Simulator

ACK_INIT = "ack_init"
ACK_VAL = "ack_val"
ACK_FAIL = "ack_fail"
TREE_DONE = "tree_done"
TREE_FAILED = "tree_failed"


@dataclass
class _PendingTree:
    spout_task: str
    message_id: Any
    checksum: int
    started_at: float
    timeout_event: Scheduled


class Acker(Actor):
    """One acker task per topology (Storm defaults to one per worker; one is
    enough for the simulated scale)."""

    def __init__(self, sim: Simulator, name: str, network: Network,
                 tuple_timeout: float = 30.0,
                 ack_cost: float = 1e-6) -> None:
        super().__init__(sim, name)
        self.network = network
        self.tuple_timeout = tuple_timeout
        self.ack_cost = ack_cost
        self._pending: dict[int, _PendingTree] = {}
        # Pre-init ack values: root id -> (XOR of values, expiry event).
        self._early_vals: dict[int, tuple[int, Scheduled]] = {}
        self.completed = 0
        self.failed = 0
        self.early_vals_buffered = 0
        self._m_done = sim.metrics.counter("storm.trees_done")
        self._m_failed = sim.metrics.counter("storm.trees_failed")
        self._m_early = sim.metrics.counter("storm.early_ack_vals")
        self._h_latency = sim.metrics.histogram("storm.tree_latency_s")

    def handle(self, message: tuple, sender: str) -> float:
        kind = message[0]
        if kind == ACK_INIT:
            _, root_id, spout_task, message_id = message
            stale = self._pending.pop(root_id, None)
            if stale is not None:
                stale.timeout_event.cancel()
            # Tuple timeouts are cancelled whenever a tree completes, so
            # they ride the timer wheel (true removal, no tombstones).
            timeout_event = self.sim.schedule_timer(
                self.tuple_timeout, self._check_timeout, root_id,
                self.sim.now)
            tree = _PendingTree(spout_task, message_id, root_id,
                                self.sim.now, timeout_event)
            self._pending[root_id] = tree
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, "storm", "ack_init",
                                      actor=self.name, root=root_id)
            early = self._early_vals.pop(root_id, None)
            if early is not None:
                value, expiry = early
                expiry.cancel()
                tree.checksum ^= value
                if tree.checksum == 0:
                    self._finish(root_id, TREE_DONE)
        elif kind == ACK_VAL:
            _, root_id, value = message
            tree = self._pending.get(root_id)
            if tree is not None:
                tree.checksum ^= value
                if tree.checksum == 0:
                    self._finish(root_id, TREE_DONE)
            else:
                self._buffer_early_val(root_id, value)
        elif kind == ACK_FAIL:
            _, root_id = message
            if root_id in self._pending:
                self._finish(root_id, TREE_FAILED)
        return self.ack_cost

    def _buffer_early_val(self, root_id: int, value: int) -> None:
        """An ack value raced ahead of its ``ACK_INIT``: hold its XOR until
        the init arrives (or ``tuple_timeout`` passes)."""
        self.early_vals_buffered += 1
        self._m_early.inc()
        held = self._early_vals.get(root_id)
        if held is not None:
            self._early_vals[root_id] = (held[0] ^ value, held[1])
            return
        expiry = self.sim.schedule_timer(self.tuple_timeout,
                                         self._expire_early_val, root_id)
        self._early_vals[root_id] = (value, expiry)
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "storm", "early_ack_val",
                                  actor=self.name, root=root_id)

    def _expire_early_val(self, root_id: int) -> None:
        self._early_vals.pop(root_id, None)

    def _finish(self, root_id: int, outcome: str) -> None:
        tree = self._pending.pop(root_id)
        tree.timeout_event.cancel()
        latency = self.sim.now - tree.started_at
        self._h_latency.observe(latency)
        if outcome == TREE_DONE:
            self.completed += 1
            self._m_done.inc()
        else:
            self.failed += 1
            self._m_failed.inc()
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "storm", outcome,
                                  actor=self.name, root=root_id,
                                  latency=latency)
        self.network.send(self.name, tree.spout_task,
                          (outcome, tree.message_id))

    def _check_timeout(self, root_id: int, started_at: float) -> None:
        tree = self._pending.get(root_id)
        if tree is not None and tree.started_at == started_at:
            self._finish(root_id, TREE_FAILED)

    @property
    def pending_trees(self) -> int:
        return len(self._pending)

    @property
    def buffered_early_roots(self) -> int:
        return len(self._early_vals)
