"""The acker: Storm's XOR tuple-tree tracker.

Every spout tuple registers its root id here.  Each anchored emit XORs the
child's id into the root's checksum, and each ack XORs the acked tuple's id
out.  The checksum hits zero exactly when every tuple in the tree has been
both emitted and acked, at which point the spout is told the tree completed.
Trees that do not complete within the timeout are failed back to the spout,
which triggers replay (at-least-once delivery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.simulator import Actor, Network, Simulator

ACK_INIT = "ack_init"
ACK_VAL = "ack_val"
ACK_FAIL = "ack_fail"
TREE_DONE = "tree_done"
TREE_FAILED = "tree_failed"


@dataclass
class _PendingTree:
    spout_task: str
    message_id: Any
    checksum: int
    started_at: float


class Acker(Actor):
    """One acker task per topology (Storm defaults to one per worker; one is
    enough for the simulated scale)."""

    def __init__(self, sim: Simulator, name: str, network: Network,
                 tuple_timeout: float = 30.0,
                 ack_cost: float = 1e-6) -> None:
        super().__init__(sim, name)
        self.network = network
        self.tuple_timeout = tuple_timeout
        self.ack_cost = ack_cost
        self._pending: dict[int, _PendingTree] = {}
        self.completed = 0
        self.failed = 0

    def handle(self, message: tuple, sender: str) -> float:
        kind = message[0]
        if kind == ACK_INIT:
            _, root_id, spout_task, message_id = message
            self._pending[root_id] = _PendingTree(
                spout_task, message_id, root_id, self.sim.now)
            self.sim.schedule(self.tuple_timeout, self._check_timeout,
                              root_id, self.sim.now)
        elif kind == ACK_VAL:
            _, root_id, value = message
            tree = self._pending.get(root_id)
            if tree is not None:
                tree.checksum ^= value
                if tree.checksum == 0:
                    self._finish(root_id, TREE_DONE)
        elif kind == ACK_FAIL:
            _, root_id = message
            if root_id in self._pending:
                self._finish(root_id, TREE_FAILED)
        return self.ack_cost

    def _finish(self, root_id: int, outcome: str) -> None:
        tree = self._pending.pop(root_id)
        if outcome == TREE_DONE:
            self.completed += 1
        else:
            self.failed += 1
        self.network.send(self.name, tree.spout_task,
                          (outcome, tree.message_id))

    def _check_timeout(self, root_id: int, started_at: float) -> None:
        tree = self._pending.get(root_id)
        if tree is not None and tree.started_at == started_at:
            self._finish(root_id, TREE_FAILED)

    @property
    def pending_trees(self) -> int:
        return len(self._pending)
