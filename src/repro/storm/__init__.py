"""A miniature Apache Storm on the discrete-event simulator.

Provides the substrate Tornado is built on (paper §5): spouts, bolts,
stream groupings, topologies, XOR-based tuple-tree acking with replay, and
supervised task restart.
"""

from repro.storm.acker import Acker
from repro.storm.cluster import (ClusterConfig, LocalCluster, TaskContext,
                                 TaskMetrics)
from repro.storm.components import Bolt, OutputCollector, Spout
from repro.storm.groupings import (AllGrouping, DirectGrouping,
                                   FieldsGrouping, GlobalGrouping, Grouping,
                                   ShuffleGrouping)
from repro.storm.topology import (BoltDeclarer, ComponentSpec, Subscription,
                                  Topology, TopologyBuilder)
from repro.storm.tuples import (DEFAULT_STREAM, SYSTEM_COMPONENT,
                                TICK_STREAM, StormTuple, is_tick)

__all__ = [
    "Acker",
    "AllGrouping",
    "Bolt",
    "BoltDeclarer",
    "ClusterConfig",
    "ComponentSpec",
    "DEFAULT_STREAM",
    "DirectGrouping",
    "FieldsGrouping",
    "GlobalGrouping",
    "Grouping",
    "LocalCluster",
    "OutputCollector",
    "ShuffleGrouping",
    "Spout",
    "StormTuple",
    "SYSTEM_COMPONENT",
    "TICK_STREAM",
    "is_tick",
    "Subscription",
    "TaskContext",
    "TaskMetrics",
    "Topology",
    "TopologyBuilder",
]
