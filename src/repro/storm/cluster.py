"""The local cluster: maps a topology onto simulator actors.

Each task (one parallel instance of a component) becomes one single-threaded
:class:`Actor`; tasks are placed round-robin across simulated nodes, so
traffic between co-located tasks is cheap while cross-node traffic pays
fabric latency and consumes fabric capacity.  A supervisor heartbeat restarts
crashed tasks, mirroring Storm's worker monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import TopologyError
from repro.simulator import Actor, Network, Simulator
from repro.storm import acker as ack_msgs
from repro.storm.acker import Acker
from repro.storm.components import Bolt, OutputCollector, Spout
from repro.storm.groupings import DirectGrouping
from repro.storm.topology import Topology
from repro.storm.tuples import (SYSTEM_COMPONENT, TICK_STREAM, StormTuple)


@dataclass
class ClusterConfig:
    """Knobs shared by every task of a submitted topology."""

    n_nodes: int = 4
    ack_enabled: bool = True
    tuple_timeout: float = 30.0
    spout_poll_interval: float = 1e-3
    spout_emit_cost: float = 1e-5
    routing_cost: float = 1e-6


@dataclass
class TaskMetrics:
    emitted: int = 0
    executed: int = 0
    acked: int = 0
    failed: int = 0


class TaskContext:
    """Per-task view of the cluster handed to user components."""

    def __init__(self, cluster: "LocalCluster", component: str,
                 task_index: int, actor_name: str) -> None:
        self.cluster = cluster
        self.component = component
        self.task_index = task_index
        self.actor_name = actor_name
        self.metrics = TaskMetrics()

    @property
    def sim(self) -> Simulator:
        return self.cluster.sim

    @property
    def parallelism(self) -> int:
        return self.cluster.topology.components[self.component].parallelism

    def peer_name(self, component: str, task_index: int) -> str:
        return self.cluster.task_name(component, task_index)

    # -------------------------------------------------------------- emits
    def emit(self, values: dict[str, Any], stream: str,
             anchors: tuple[StormTuple, ...],
             direct_task: int | None) -> StormTuple:
        return self.cluster.route(self, values, stream, anchors, direct_task)

    def ack(self, tup: StormTuple) -> None:
        self.metrics.acked += 1
        if self.cluster.config.ack_enabled and tup.root_id is not None:
            self.cluster.network.send(
                self.actor_name, self.cluster.acker_name,
                (ack_msgs.ACK_VAL, tup.root_id, tup.tuple_id))

    def fail(self, tup: StormTuple) -> None:
        self.metrics.failed += 1
        if self.cluster.config.ack_enabled and tup.root_id is not None:
            self.cluster.network.send(
                self.actor_name, self.cluster.acker_name,
                (ack_msgs.ACK_FAIL, tup.root_id))


class _SpoutExecutor(Actor):
    """Drives one spout task: poll, emit, receive tree outcomes."""

    POLL = ("__poll__",)

    def __init__(self, sim: Simulator, name: str, spout: Spout,
                 ctx: TaskContext, config: ClusterConfig) -> None:
        super().__init__(sim, name)
        self.spout = spout
        self.ctx = ctx
        self.config = config
        self._poll_scheduled = False

    def start(self) -> None:
        self.spout.open(self.ctx, OutputCollector(self.ctx))
        self.deliver(self.POLL, self.name)

    def on_recover(self) -> None:
        """Restart the poll chain: a POLL delivered (and lost) while the
        task was down would otherwise leave the spout silent forever."""
        self.deliver(self.POLL, self.name)

    def handle(self, message: Any, sender: str) -> float:
        if message == self.POLL:
            emitted = self.spout.next_tuple()
            if emitted:
                self.deliver(self.POLL, self.name)
                return self.config.spout_emit_cost
            self.sim.schedule_timer(self.config.spout_poll_interval,
                                    self.deliver, self.POLL, self.name)
            return 0.0
        kind, message_id = message
        if kind == ack_msgs.TREE_DONE:
            self.spout.ack(message_id)
        elif kind == ack_msgs.TREE_FAILED:
            self.spout.fail(message_id)
        return self.config.spout_emit_cost


class _BoltExecutor(Actor):
    """Drives one bolt task."""

    def __init__(self, sim: Simulator, name: str, bolt: Bolt,
                 ctx: TaskContext) -> None:
        super().__init__(sim, name)
        self.bolt = bolt
        self.ctx = ctx

    def start(self) -> None:
        self.bolt.prepare(self.ctx, OutputCollector(self.ctx))

    def handle(self, message: Any, sender: str) -> float:
        self.ctx.metrics.executed += 1
        return self.bolt.execute(message) or 0.0


class LocalCluster:
    """Runs topologies on the discrete-event simulator."""

    def __init__(self, sim: Simulator, network: Network | None = None,
                 config: ClusterConfig | None = None) -> None:
        self.sim = sim
        self.network = network if network is not None else Network(sim)
        self.config = config if config is not None else ClusterConfig()
        self.topology: Topology | None = None
        self.contexts: dict[str, TaskContext] = {}
        self.executors: dict[str, Actor] = {}
        self.acker_name = ""
        self._tuple_rng = sim.random.stream("storm-tuple-ids")
        self._supervised = False

    # ------------------------------------------------------------- naming
    def task_name(self, component: str, task_index: int) -> str:
        assert self.topology is not None
        return f"{self.topology.name}:{component}[{task_index}]"

    # ------------------------------------------------------------- submit
    def submit(self, topology: Topology) -> None:
        if self.topology is not None:
            raise TopologyError("this cluster already runs a topology")
        self.topology = topology
        self.acker_name = f"{topology.name}:__acker"
        acker = Acker(self.sim, self.acker_name, self.network,
                      tuple_timeout=self.config.tuple_timeout)
        self.network.colocate(self.acker_name, "node0")
        self.executors[self.acker_name] = acker
        node = 0
        starters = []
        for spec in topology.components.values():
            for index in range(spec.parallelism):
                name = self.task_name(spec.name, index)
                ctx = TaskContext(self, spec.name, index, name)
                component = spec.factory()
                if spec.is_spout:
                    executor: Actor = _SpoutExecutor(
                        self.sim, name, component, ctx, self.config)
                else:
                    executor = _BoltExecutor(self.sim, name, component, ctx)
                self.network.colocate(name, f"node{node % self.config.n_nodes}")
                node += 1
                self.contexts[name] = ctx
                self.executors[name] = executor
                starters.append(executor)
        for executor in starters:
            executor.start()  # type: ignore[attr-defined]
        for spec in topology.components.values():
            if spec.tick_interval is not None:
                for index in range(spec.parallelism):
                    self.sim.schedule_timer(spec.tick_interval, self._tick,
                                            spec.name, index,
                                            spec.tick_interval)

    def _tick(self, component: str, index: int, interval: float) -> None:
        executor = self.executors.get(self.task_name(component, index))
        if executor is not None and not executor.down:
            tick = StormTuple(SYSTEM_COMPONENT, TICK_STREAM, {},
                              self.new_tuple_id())
            executor.deliver(tick, SYSTEM_COMPONENT)
        self.sim.schedule_timer(interval, self._tick, component, index,
                                interval)

    # ------------------------------------------------------------- routing
    def new_tuple_id(self) -> int:
        return int(self._tuple_rng.integers(1, 2**62))

    def route(self, ctx: TaskContext, values: dict[str, Any], stream: str,
              anchors: tuple[StormTuple, ...],
              direct_task: int | None) -> StormTuple:
        """Create a tuple and deliver it to every subscribed task."""
        assert self.topology is not None
        tuple_id = self.new_tuple_id()
        root_id = None
        message_id = values.get("__message_id__")
        spec = self.topology.components[ctx.component]
        if self.config.ack_enabled:
            if spec.is_spout and message_id is not None:
                root_id = tuple_id
            elif anchors:
                root_id = anchors[0].root_id
        tup = StormTuple(ctx.component, stream, values, tuple_id, root_id,
                         tuple(anchor.tuple_id for anchor in anchors))
        ctx.metrics.emitted += 1
        if root_id is not None and spec.is_spout:
            self.network.send(ctx.actor_name, self.acker_name,
                              (ack_msgs.ACK_INIT, root_id, ctx.actor_name,
                               message_id))
        if root_id is not None and anchors:
            # XOR the child into its root's checksum (once per root; all
            # anchors of a tuple share the root in this implementation).
            self.network.send(ctx.actor_name, self.acker_name,
                              (ack_msgs.ACK_VAL, root_id, tuple_id))
        for target_spec, grouping in self.topology.subscribers(
                ctx.component, stream):
            if isinstance(grouping, DirectGrouping):
                if direct_task is None:
                    continue
                targets: tuple[int, ...] = (direct_task,)
            else:
                targets = tuple(
                    grouping.targets(tup, target_spec.parallelism))
            for task_index in targets:
                self.network.send(ctx.actor_name,
                                  self.task_name(target_spec.name,
                                                 task_index),
                                  tup)
        return tup

    # ---------------------------------------------------------- supervision
    def enable_supervision(self, heartbeat: float = 1.0,
                           restart_delay: float = 2.0) -> None:
        """Restart crashed tasks, as Storm's supervisor daemons do."""
        if self._supervised:
            return
        self._supervised = True
        self._heartbeat = heartbeat
        self._restart_delay = restart_delay
        self.sim.schedule_timer(heartbeat, self._check_heartbeats)

    def _check_heartbeats(self) -> None:
        for name, executor in self.executors.items():
            if executor.down:
                self.sim.schedule_timer(self._restart_delay, self._restart,
                                        name)
        self.sim.schedule_timer(self._heartbeat, self._check_heartbeats)

    def _restart(self, name: str) -> None:
        executor = self.executors[name]
        if executor.down:
            self.sim.metrics.counter("storm.task_restarts").inc()
            if self.sim.trace.enabled:
                self.sim.trace.record(self.sim.now, "storm", "restart",
                                      actor=name)
            executor.recover()

    # -------------------------------------------------------------- stats
    def metrics(self, component: str) -> TaskMetrics:
        """Aggregate metrics across all tasks of a component."""
        assert self.topology is not None
        total = TaskMetrics()
        spec = self.topology.components[component]
        for index in range(spec.parallelism):
            m = self.contexts[self.task_name(component, index)].metrics
            total.emitted += m.emitted
            total.executed += m.executed
            total.acked += m.acked
            total.failed += m.failed
        return total

    @property
    def acker(self) -> Acker:
        acker = self.executors[self.acker_name]
        assert isinstance(acker, Acker)
        return acker
