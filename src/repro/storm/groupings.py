"""Stream groupings: how tuples are routed to the tasks of a bolt.

Mirrors Storm's grouping vocabulary: shuffle, fields, all (broadcast),
global (task 0) and direct (sender chooses the task).
"""

from __future__ import annotations

import zlib
from typing import Any, Sequence

from repro.errors import TopologyError
from repro.storm.tuples import StormTuple


def _stable_hash(value: Any) -> int:
    """Deterministic across processes (unlike ``hash`` for str)."""
    return zlib.crc32(repr(value).encode("utf-8"))


class Grouping:
    """Chooses destination task indices for each tuple."""

    def targets(self, tup: StormTuple, n_tasks: int) -> Sequence[int]:
        raise NotImplementedError


class ShuffleGrouping(Grouping):
    """Round-robin (deterministic shuffle) across tasks."""

    def __init__(self) -> None:
        self._next = 0

    def targets(self, tup: StormTuple, n_tasks: int) -> Sequence[int]:
        task = self._next % n_tasks
        self._next += 1
        return (task,)


class FieldsGrouping(Grouping):
    """Tuples agreeing on the named fields go to the same task."""

    def __init__(self, fields: Sequence[str]) -> None:
        if not fields:
            raise TopologyError("fields grouping needs at least one field")
        self.fields = tuple(fields)

    def targets(self, tup: StormTuple, n_tasks: int) -> Sequence[int]:
        key = tuple(tup[field] for field in self.fields)
        return (_stable_hash(key) % n_tasks,)


class AllGrouping(Grouping):
    """Broadcast to every task."""

    def targets(self, tup: StormTuple, n_tasks: int) -> Sequence[int]:
        return tuple(range(n_tasks))


class GlobalGrouping(Grouping):
    """Everything goes to task 0."""

    def targets(self, tup: StormTuple, n_tasks: int) -> Sequence[int]:
        return (0,)


class DirectGrouping(Grouping):
    """The emitter names the destination task explicitly (via the
    ``direct_task`` argument of ``emit``); this object only validates."""

    def targets(self, tup: StormTuple, n_tasks: int) -> Sequence[int]:
        raise TopologyError(
            "direct streams require emit(..., direct_task=...)")
