"""User-facing Storm component interfaces: spouts and bolts.

As in Storm, components are stateless from the framework's point of view —
program state, if any, must live in external storage (Tornado's processors
obey this by materialising vertex versions in the versioned store).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.storm.tuples import DEFAULT_STREAM, StormTuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.storm.cluster import TaskContext


class OutputCollector:
    """Handed to components at prepare/open time; the only way to emit.

    The collector is bound to one task by the cluster; ``emit`` routes
    through the topology's groupings, ``emit_direct`` targets a single task
    of a component reachable over a direct stream.
    """

    def __init__(self, ctx: "TaskContext") -> None:
        self._ctx = ctx

    def emit(self, values: dict[str, Any], stream: str = DEFAULT_STREAM,
             anchors: tuple[StormTuple, ...] = ()) -> StormTuple:
        return self._ctx.emit(values, stream, anchors, direct_task=None)

    def emit_direct(self, task: int, values: dict[str, Any],
                    stream: str = DEFAULT_STREAM,
                    anchors: tuple[StormTuple, ...] = ()) -> StormTuple:
        return self._ctx.emit(values, stream, anchors, direct_task=task)

    def ack(self, tup: StormTuple) -> None:
        """Declare a received tuple fully processed."""
        self._ctx.ack(tup)

    def fail(self, tup: StormTuple) -> None:
        """Declare a received tuple failed (forces replay at the spout)."""
        self._ctx.fail(tup)


class Spout:
    """Pulls data from an external source and feeds the topology."""

    def open(self, ctx: "TaskContext", collector: OutputCollector) -> None:
        """Called once before any ``next_tuple``."""

    def next_tuple(self) -> bool:
        """Emit at most one tuple; return True if something was emitted
        (False lets the executor back off before polling again)."""
        raise NotImplementedError

    def ack(self, message_id: Any) -> None:
        """The tuple tree rooted at ``message_id`` completed."""

    def fail(self, message_id: Any) -> None:
        """The tuple tree rooted at ``message_id`` failed or timed out."""


class Bolt:
    """Processes tuples and may emit new ones."""

    def prepare(self, ctx: "TaskContext", collector: OutputCollector) -> None:
        """Called once before any ``execute``."""

    def execute(self, tup: StormTuple) -> float:
        """Process one tuple; return its virtual-time cost in seconds."""
        raise NotImplementedError
