"""Storm tuples.

A :class:`StormTuple` is one message flowing through a topology.  Tuples
carry the emitting component/stream, a payload of named values, a random
64-bit id (used by the acker's XOR trick) and the ids of the tuples they
were anchored to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class StormTuple:
    """One unit of data exchanged between topology components."""

    component: str
    stream: str
    values: dict[str, Any]
    tuple_id: int
    root_id: int | None = None
    anchors: tuple[int, ...] = field(default=())

    def __getitem__(self, name: str) -> Any:
        return self.values[name]

    def get(self, name: str, default: Any = None) -> Any:
        return self.values.get(name, default)


DEFAULT_STREAM = "default"

#: Component/stream names of periodic system tick tuples.
SYSTEM_COMPONENT = "__system"
TICK_STREAM = "__tick"


def is_tick(tup: "StormTuple") -> bool:
    """True for the periodic system tuples delivered to bolts configured
    with a tick interval (used for time-based flushing/aggregation)."""
    return tup.component == SYSTEM_COMPONENT and tup.stream == TICK_STREAM
