"""Topology declaration: the builder API mirrored from Storm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TopologyError
from repro.storm.components import Bolt, Spout
from repro.storm.groupings import (AllGrouping, DirectGrouping,
                                   FieldsGrouping, GlobalGrouping, Grouping,
                                   ShuffleGrouping)
from repro.storm.tuples import DEFAULT_STREAM


@dataclass
class Subscription:
    """One (upstream component, stream) -> downstream component edge."""

    source: str
    stream: str
    grouping: Grouping


@dataclass
class ComponentSpec:
    """Declared component: a factory plus parallelism and subscriptions."""

    name: str
    factory: Callable[[], Spout | Bolt]
    parallelism: int
    is_spout: bool
    subscriptions: list[Subscription] = field(default_factory=list)
    #: Tick-tuple period in virtual seconds (None = no ticks).
    tick_interval: float | None = None


class BoltDeclarer:
    """Fluent half of the builder: attach groupings to a declared bolt."""

    def __init__(self, spec: ComponentSpec, builder: "TopologyBuilder"):
        self._spec = spec
        self._builder = builder

    def _subscribe(self, source: str, stream: str,
                   grouping: Grouping) -> "BoltDeclarer":
        if source not in self._builder.components:
            raise TopologyError(f"unknown upstream component: {source!r}")
        self._spec.subscriptions.append(Subscription(source, stream, grouping))
        return self

    def shuffle_grouping(self, source: str,
                         stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        return self._subscribe(source, stream, ShuffleGrouping())

    def fields_grouping(self, source: str, fields: tuple[str, ...],
                        stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        return self._subscribe(source, stream, FieldsGrouping(fields))

    def all_grouping(self, source: str,
                     stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        return self._subscribe(source, stream, AllGrouping())

    def global_grouping(self, source: str,
                        stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        return self._subscribe(source, stream, GlobalGrouping())

    def direct_grouping(self, source: str,
                        stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        return self._subscribe(source, stream, DirectGrouping())

    def with_tick(self, interval: float) -> "BoltDeclarer":
        """Deliver a system tick tuple to every task of this bolt each
        ``interval`` virtual seconds (Storm's tick-tuple config)."""
        if interval <= 0:
            raise TopologyError("tick interval must be positive")
        self._spec.tick_interval = interval
        return self


@dataclass
class Topology:
    """Validated, immutable topology description."""

    name: str
    components: dict[str, ComponentSpec]

    def spouts(self) -> list[ComponentSpec]:
        return [c for c in self.components.values() if c.is_spout]

    def bolts(self) -> list[ComponentSpec]:
        return [c for c in self.components.values() if not c.is_spout]

    def subscribers(self, source: str,
                    stream: str) -> list[tuple[ComponentSpec, Grouping]]:
        found = []
        for spec in self.components.values():
            for sub in spec.subscriptions:
                if sub.source == source and sub.stream == stream:
                    found.append((spec, sub.grouping))
        return found


class TopologyBuilder:
    """Mirrors Storm's ``TopologyBuilder``.

    >>> builder = TopologyBuilder("wordcount")
    >>> builder.set_spout("lines", LineSpout, parallelism=1)
    >>> builder.set_bolt("split", SplitBolt, 2).shuffle_grouping("lines")
    >>> topology = builder.build()
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.components: dict[str, ComponentSpec] = {}

    def _declare(self, name: str, factory: Callable[[], Spout | Bolt],
                 parallelism: int, is_spout: bool) -> ComponentSpec:
        if name in self.components:
            raise TopologyError(f"duplicate component name: {name!r}")
        if parallelism < 1:
            raise TopologyError(f"parallelism must be >= 1, got {parallelism}")
        spec = ComponentSpec(name, factory, parallelism, is_spout)
        self.components[name] = spec
        return spec

    def set_spout(self, name: str, factory: Callable[[], Spout],
                  parallelism: int = 1) -> None:
        self._declare(name, factory, parallelism, is_spout=True)

    def set_bolt(self, name: str, factory: Callable[[], Bolt],
                 parallelism: int = 1) -> BoltDeclarer:
        spec = self._declare(name, factory, parallelism, is_spout=False)
        return BoltDeclarer(spec, self)

    def build(self) -> Topology:
        if not any(spec.is_spout for spec in self.components.values()):
            raise TopologyError("a topology needs at least one spout")
        for spec in self.components.values():
            if spec.is_spout and spec.subscriptions:
                raise TopologyError(
                    f"spout {spec.name!r} cannot subscribe to streams")
        return Topology(self.name, dict(self.components))
