"""Warm-startable batch solvers with work accounting.

The baseline engines (Spark-like, GraphLab-like, Naiad-like) and the
mini-batch experiments all execute real algorithms through these solvers.
Each solver maintains the input state folded from stream tuples, can solve
either *cold* (from the default initial guess) or *warm* (from a previous
solution — the mini-batch method of paper §1), and reports how much work
the solve performed, which is what the engines charge virtual time for.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.algorithms.sgd import Loss
from repro.streams.model import (ADD_EDGE, ADD_INSTANCE, ADD_POINT,
                                 REMOVE_EDGE, StreamTuple)

INF = math.inf


@dataclass
class WorkStats:
    """Work performed by one solve."""

    iterations: int = 0
    updates: int = 0
    scans: int = 0

    def merged(self, other: "WorkStats") -> "WorkStats":
        return WorkStats(self.iterations + other.iterations,
                         self.updates + other.updates,
                         self.scans + other.scans)


class Solver:
    """Interface shared by all workload solvers."""

    def apply(self, tuples: list[StreamTuple]) -> int:
        """Fold stream tuples into the input state; returns #applied."""
        raise NotImplementedError

    def solve(self, initial: Any | None = None) -> tuple[Any, WorkStats]:
        """Compute the fixed point, warm-starting from ``initial`` when
        given; returns (solution, work)."""
        raise NotImplementedError

    def state_size(self) -> int:
        """Current input-state size (drives load and materialise costs)."""
        raise NotImplementedError


# ------------------------------------------------------------------- SSSP
class SSSPSolver(Solver):
    """Dynamic SSSP: warm solves only touch vertices whose distance is
    actually affected by the delta (Ramalingam-Reps flavour), so warm work
    is proportional to the change — the paper's incremental SSSP."""

    def __init__(self, source: Any) -> None:
        self.source = source
        self.out_edges: dict[Any, dict[Any, float]] = {}
        self.in_edges: dict[Any, dict[Any, float]] = {}
        self.vertices: set[Any] = set()
        self._dirty: set[Any] = set()

    def apply(self, tuples: list[StreamTuple]) -> int:
        applied = 0
        for tup in tuples:
            if tup.kind not in (ADD_EDGE, REMOVE_EDGE):
                continue
            payload = tup.payload
            u, v, w = payload if len(payload) == 3 else (*payload, 1.0)
            removing = tup.kind == REMOVE_EDGE or tup.weight < 0
            if removing:
                self.out_edges.get(u, {}).pop(v, None)
                self.in_edges.get(v, {}).pop(u, None)
            else:
                self.out_edges.setdefault(u, {})[v] = float(w)
                self.in_edges.setdefault(v, {})[u] = float(w)
            self.vertices.add(u)
            self.vertices.add(v)
            self._dirty.add(v)
            self._dirty.add(u)
            applied += 1
        return applied

    def solve(self, initial: dict[Any, float] | None = None
              ) -> tuple[dict[Any, float], WorkStats]:
        stats = WorkStats(iterations=1)
        if initial is None:
            distances = {v: INF for v in self.vertices}
            if self.source in distances or not self.vertices:
                distances[self.source] = 0.0
            frontier = {self.source}
        else:
            distances = {v: initial.get(v, INF) for v in self.vertices}
            distances[self.source] = 0.0
            frontier = set(self._dirty)
            frontier.add(self.source)
            # Raise pass: distances invalidated by deletions propagate up.
            raise_queue = [v for v in frontier if v in distances]
            while raise_queue:
                vertex = raise_queue.pop()
                if vertex == self.source:
                    continue
                stats.scans += 1
                best = min((distances.get(u, INF) + w
                            for u, w in self.in_edges.get(vertex,
                                                          {}).items()),
                           default=INF)
                if best > distances.get(vertex, INF):
                    distances[vertex] = best
                    stats.updates += 1
                    for target in self.out_edges.get(vertex, {}):
                        raise_queue.append(target)
                        frontier.add(target)
        self._dirty = set()
        # Lower pass: Dijkstra-style relaxation from the frontier.
        heap = []
        for vertex in frontier:
            if vertex in distances and not math.isinf(distances[vertex]):
                heapq.heappush(heap, (distances[vertex], repr(vertex),
                                      vertex))
        while heap:
            dist, _key, vertex = heapq.heappop(heap)
            if dist > distances.get(vertex, INF):
                continue
            stats.scans += 1
            for target, weight in self.out_edges.get(vertex, {}).items():
                candidate = dist + weight
                if candidate < distances.get(target, INF):
                    distances[target] = candidate
                    stats.updates += 1
                    heapq.heappush(heap, (candidate, repr(target), target))
        return distances, stats

    def state_size(self) -> int:
        return sum(len(outs) for outs in self.out_edges.values())


# --------------------------------------------------------------- PageRank
class PageRankSolver(Solver):
    """Power iteration; warm starts shrink the number of iterations but
    every iteration still touches the whole graph — which is exactly why
    mini-batching cannot rescue PageRank latency (paper §1)."""

    def __init__(self, damping: float = 0.85,
                 tolerance: float = 1e-4, max_iterations: int = 500) -> None:
        self.damping = damping
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.targets: dict[Any, set[Any]] = {}
        self.vertices: set[Any] = set()

    def apply(self, tuples: list[StreamTuple]) -> int:
        applied = 0
        for tup in tuples:
            if tup.kind not in (ADD_EDGE, REMOVE_EDGE):
                continue
            payload = tup.payload
            u, v = payload[0], payload[1]
            removing = tup.kind == REMOVE_EDGE or tup.weight < 0
            if removing:
                self.targets.get(u, set()).discard(v)
            else:
                self.targets.setdefault(u, set()).add(v)
            self.vertices.add(u)
            self.vertices.add(v)
            applied += 1
        return applied

    def solve(self, initial: dict[Any, float] | None = None
              ) -> tuple[dict[Any, float], WorkStats]:
        stats = WorkStats()
        base = 1.0 - self.damping
        ranks = {v: base for v in self.vertices}
        if initial is not None:
            for vertex, rank in initial.items():
                if vertex in ranks:
                    ranks[vertex] = rank
        for _ in range(self.max_iterations):
            stats.iterations += 1
            incoming = {v: 0.0 for v in self.vertices}
            for u, outs in self.targets.items():
                if outs:
                    share = ranks[u] / len(outs)
                    for v in outs:
                        incoming[v] += share
                        stats.scans += 1
            delta = 0.0
            for v in self.vertices:
                new_rank = base + self.damping * incoming[v]
                change = abs(new_rank - ranks[v])
                delta = max(delta, change)
                if change > self.tolerance:
                    # Only genuinely changed records count as updates —
                    # this is what differential compaction keeps.
                    stats.updates += 1
                ranks[v] = new_rank
            if delta <= self.tolerance:
                break
        return ranks, stats

    def state_size(self) -> int:
        return sum(len(outs) for outs in self.targets.values())


# ----------------------------------------------------------------- KMeans
class KMeansSolver(Solver):
    """Lloyd's algorithm; every iteration rescans all points regardless of
    how good the initial centroids are (the paper's Fig. 5c point)."""

    def __init__(self, initial_centroids: list, tolerance: float = 1e-4,
                 max_iterations: int = 200) -> None:
        self.initial_centroids = np.stack(
            [np.asarray(c, dtype=float) for c in initial_centroids])
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.points: list[np.ndarray] = []

    def apply(self, tuples: list[StreamTuple]) -> int:
        applied = 0
        for tup in tuples:
            if tup.kind != ADD_POINT:
                continue
            self.points.append(np.asarray(tup.payload, dtype=float))
            applied += 1
        return applied

    def solve(self, initial: np.ndarray | None = None
              ) -> tuple[np.ndarray, WorkStats]:
        stats = WorkStats()
        centroids = (np.array(initial, dtype=float, copy=True)
                     if initial is not None
                     else self.initial_centroids.copy())
        if not self.points:
            return centroids, stats
        data = np.stack(self.points)
        for _ in range(self.max_iterations):
            stats.iterations += 1
            stats.scans += len(data) * len(centroids)
            distances = ((data[:, None, :] - centroids[None, :, :]) ** 2
                         ).sum(axis=2)
            nearest = distances.argmin(axis=1)
            updated = centroids.copy()
            for slot in range(len(centroids)):
                mask = nearest == slot
                if mask.any():
                    updated[slot] = data[mask].mean(axis=0)
                    stats.updates += 1
            moved = float(np.abs(updated - centroids).max())
            centroids = updated
            if moved <= self.tolerance:
                break
        return centroids, stats

    def state_size(self) -> int:
        return len(self.points)


# -------------------------------------------------------------------- SGD
class GradientDescentSolver(Solver):
    """Full-batch gradient descent on the collected instances; warm starts
    from a previous weight vector converge in a handful of steps."""

    def __init__(self, loss: Loss, dim: int, rate: float = 0.2,
                 tolerance: float = 1e-4, max_iterations: int = 500) -> None:
        self.loss = loss
        self.dim = dim
        self.rate = rate
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.instances: list = []

    def apply(self, tuples: list[StreamTuple]) -> int:
        applied = 0
        for tup in tuples:
            if tup.kind != ADD_INSTANCE:
                continue
            self.instances.append(tup.payload)
            applied += 1
        return applied

    def solve(self, initial: np.ndarray | None = None
              ) -> tuple[np.ndarray, WorkStats]:
        stats = WorkStats()
        weights = (np.array(initial, dtype=float, copy=True)
                   if initial is not None else np.zeros(self.dim))
        if not self.instances:
            return weights, stats
        xs = np.stack([inst.x() for inst in self.instances])
        ys = np.asarray([inst.label for inst in self.instances],
                        dtype=float)
        for _ in range(self.max_iterations):
            stats.iterations += 1
            stats.scans += len(xs)
            gradient = self.loss.gradient(weights, xs, ys)
            step = self.rate * gradient
            weights = weights - step
            stats.updates += 1
            if float(np.linalg.norm(step)) <= self.tolerance:
                break
        return weights, stats

    def state_size(self) -> int:
        return len(self.instances)
