"""Baseline systems: batch engines, a Naiad-like incremental engine, and
mini-batch runners — the comparators of the paper's evaluation."""

from repro.baselines.engines import (BatchEngine, EngineCosts, EngineRun,
                                     MemoryBudgetExceeded, NaiadLikeEngine,
                                     graphlab_like, spark_like)
from repro.baselines.parameter_server import SSPParameterServer, SSPStats
from repro.baselines.minibatch import (EpochResult, MiniBatchCosts,
                                       MiniBatchRunner)
from repro.baselines.solvers import (GradientDescentSolver, KMeansSolver,
                                     PageRankSolver, Solver, SSSPSolver,
                                     WorkStats)

__all__ = [
    "BatchEngine",
    "EngineCosts",
    "EngineRun",
    "EpochResult",
    "GradientDescentSolver",
    "KMeansSolver",
    "MemoryBudgetExceeded",
    "MiniBatchCosts",
    "MiniBatchRunner",
    "NaiadLikeEngine",
    "PageRankSolver",
    "SSPParameterServer",
    "SSPStats",
    "Solver",
    "SSSPSolver",
    "WorkStats",
    "graphlab_like",
    "spark_like",
]
