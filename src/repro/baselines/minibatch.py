"""Mini-batch incremental processing (the "Batch,N" series of Figure 5).

Processes the stream in epochs of ``batch_size`` tuples; each epoch's
results are computed by warm-starting the solver from the previous epoch's
fixed point.  Per-epoch latency combines the incremental compute work with
a communication floor: the updated vertices are randomly distributed over
the cluster, so the number of messages — and hence a latency floor — does
not shrink with the batch (the paper's explanation for why latencies stop
improving below ~1M-edge batches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.baselines.solvers import Solver, WorkStats
from repro.streams.model import StreamTuple


@dataclass
class EpochResult:
    epoch: int
    latency: float
    stats: WorkStats
    result: Any


@dataclass
class MiniBatchCosts:
    update_cost: float = 1e-6
    scan_cost: float = 2e-7
    iteration_overhead: float = 2e-3
    #: Message cost per touched vertex (does not shrink with the batch).
    message_cost: float = 2e-5
    #: Fixed round-trip floor per epoch (scheduling + barrier).
    epoch_floor: float = 5e-2


class MiniBatchRunner:
    """Drives a solver epoch by epoch and records per-epoch latencies."""

    def __init__(self, solver: Solver, batch_size: int,
                 costs: MiniBatchCosts | None = None) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.solver = solver
        self.batch_size = batch_size
        self.costs = costs if costs is not None else MiniBatchCosts()
        self._solution: Any | None = None
        self.epochs: list[EpochResult] = []

    def run(self, tuples: list[StreamTuple],
            warm: bool = True) -> list[EpochResult]:
        """Process the whole stream; returns one result per epoch."""
        for start in range(0, len(tuples), self.batch_size):
            epoch_tuples = tuples[start:start + self.batch_size]
            self.solver.apply(epoch_tuples)
            initial = self._solution if warm else None
            result, stats = self.solver.solve(initial=initial)
            self._solution = result
            costs = self.costs
            latency = (costs.epoch_floor
                       + stats.updates * costs.update_cost
                       + stats.scans * costs.scan_cost
                       + stats.iterations * costs.iteration_overhead
                       + stats.updates * costs.message_cost)
            self.epochs.append(EpochResult(len(self.epochs), latency,
                                           stats, result))
        return self.epochs

    def latency_percentile(self, percentile: float = 99.0) -> float:
        """The paper reports 99th-percentile query latency per batch
        size."""
        if not self.epochs:
            return 0.0
        return float(np.percentile([e.latency for e in self.epochs],
                                   percentile))
