"""Baseline system models (paper §6.5, Table 3).

Each engine executes the real algorithm through a
:class:`repro.baselines.solvers.Solver` and charges virtual time through a
cost model capturing what dominates that system's behaviour in the paper:

* **Spark-like** — batch processing with per-query data (re)loading from
  disk and heavy per-iteration materialisation (RDD lineage / spilling).
* **GraphLab-like** — batch processing fully in memory: one load, cheap
  iterations, but always from scratch.
* **Naiad-like** — incremental: warm-started solves over only the new
  epoch, but every access must reconstruct versions by combining the
  accumulated difference traces, so cost grows with #epochs × #iterations
  and trace memory can exhaust the budget (the paper's KMeans OOM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.baselines.solvers import Solver, WorkStats
from repro.errors import ReproError
from repro.streams.model import StreamTuple


class MemoryBudgetExceeded(ReproError):
    """An engine ran out of its simulated memory budget (Naiad/KMeans)."""


@dataclass
class EngineCosts:
    """Virtual-time charges per unit of work."""

    load_per_tuple: float = 2e-6
    update_cost: float = 1e-6
    scan_cost: float = 2e-7
    iteration_overhead: float = 1e-3
    #: Extra per-iteration cost proportional to state size (Spark's
    #: materialisation between stages).
    materialise_per_record: float = 0.0
    #: Naiad: multiplier on work per accumulated difference trace.
    trace_combine_cost: float = 0.0


@dataclass
class EngineRun:
    """Outcome of one query against a baseline engine."""

    latency: float
    result: Any
    stats: WorkStats
    traces: int = 0


class BatchEngine:
    """Collect-everything-then-compute (Spark-like and GraphLab-like)."""

    def __init__(self, solver: Solver, costs: EngineCosts,
                 reload_per_query: bool = True) -> None:
        self.solver = solver
        self.costs = costs
        self.reload_per_query = reload_per_query
        self._pending: list[StreamTuple] = []
        self._tuples_total = 0

    def feed(self, tuples: list[StreamTuple]) -> None:
        self._pending.extend(tuples)
        self._tuples_total += len(tuples)

    def query(self) -> EngineRun:
        """Compute the results at the current instant, from scratch."""
        applied = self.solver.apply(self._pending)
        self._pending = []
        load = (self._tuples_total if self.reload_per_query else applied)
        latency = load * self.costs.load_per_tuple
        result, stats = self.solver.solve(initial=None)
        latency += self._work_cost(stats)
        return EngineRun(latency, result, stats)

    def _work_cost(self, stats: WorkStats) -> float:
        cost = (stats.updates * self.costs.update_cost
                + stats.scans * self.costs.scan_cost
                + stats.iterations * self.costs.iteration_overhead)
        cost += (stats.iterations * self.costs.materialise_per_record
                 * self.solver.state_size())
        return cost


def spark_like(solver: Solver) -> BatchEngine:
    """Spark: disk reload per query + per-iteration materialisation."""
    return BatchEngine(solver, EngineCosts(
        load_per_tuple=8e-6,
        update_cost=2e-6,
        scan_cost=4e-7,
        iteration_overhead=5e-2,
        materialise_per_record=2e-6,
    ), reload_per_query=True)


def graphlab_like(solver: Solver) -> BatchEngine:
    """GraphLab: in-memory, efficient iterations, but always cold and
    paying a distributed synchronisation barrier per iteration."""
    return BatchEngine(solver, EngineCosts(
        load_per_tuple=1.5e-6,
        update_cost=8e-7,
        scan_cost=1.5e-7,
        iteration_overhead=2e-2,
        materialise_per_record=0.0,
    ), reload_per_query=False)


class NaiadLikeEngine:
    """Incremental engine with difference-trace bookkeeping.

    Each processed epoch appends, per loop iteration the solve performed,
    one difference trace.  Reconstructing the current version while
    computing combines all accumulated traces, so the effective work
    multiplier is ``1 + trace_combine_cost × #traces`` — the linear
    degradation with epochs and iterations observed in the paper.
    """

    def __init__(self, solver: Solver, epoch_size: int,
                 costs: EngineCosts | None = None,
                 memory_budget: float = float("inf"),
                 trace_record_bytes: float = 64.0,
                 dense_iterations: bool = False) -> None:
        """``dense_iterations`` marks workloads whose per-iteration
        aggregation re-derives a record for *every* input (KMeans: every
        point's assignment and partial sums, every Lloyd iteration, every
        epoch) — differential compaction cannot help them, which is what
        exhausts memory in the paper's Table 3.  Sparse workloads only
        append records that actually changed."""
        if epoch_size < 1:
            raise ValueError("epoch_size must be >= 1")
        self.dense_iterations = dense_iterations
        self.solver = solver
        self.epoch_size = epoch_size
        self.costs = costs if costs is not None else EngineCosts(
            load_per_tuple=1.5e-6,
            update_cost=1e-6,
            scan_cost=2e-7,
            iteration_overhead=3e-3,
            trace_combine_cost=0.01,
        )
        self.memory_budget = memory_budget
        self.trace_record_bytes = trace_record_bytes
        self._pending: list[StreamTuple] = []
        self._solution: Any | None = None
        self.traces = 0
        self.trace_memory = 0.0
        self.epochs_processed = 0

    def feed(self, tuples: list[StreamTuple]) -> None:
        self._pending.extend(tuples)

    def _process_epoch(self, epoch: list[StreamTuple]) -> tuple[WorkStats,
                                                                float]:
        self.solver.apply(epoch)
        result, stats = self.solver.solve(initial=self._solution)
        self._solution = result
        multiplier = 1.0 + self.costs.trace_combine_cost * self.traces
        latency = (len(epoch) * self.costs.load_per_tuple
                   + multiplier * (stats.updates * self.costs.update_cost
                                   + stats.scans * self.costs.scan_cost)
                   + stats.iterations * self.costs.iteration_overhead)
        # One difference trace per iteration of this epoch.  Sparse
        # workloads append a record per changed key; dense-iteration
        # workloads append a record per input per iteration.
        self.traces += max(1, stats.iterations)
        if self.dense_iterations:
            records = self.solver.state_size() * max(1, stats.iterations)
        else:
            records = max(1, stats.updates)
        self.trace_memory += records * self.trace_record_bytes
        if self.trace_memory > self.memory_budget:
            raise MemoryBudgetExceeded(
                f"difference traces exceed budget: {self.trace_memory:.0f}"
                f" > {self.memory_budget:.0f} bytes")
        self.epochs_processed += 1
        return stats, latency

    def query(self) -> EngineRun:
        """Process all pending epochs, then answer from the latest
        version."""
        total_stats = WorkStats()
        latency = 0.0
        while self._pending:
            epoch = self._pending[:self.epoch_size]
            self._pending = self._pending[len(epoch):]
            stats, epoch_latency = self._process_epoch(epoch)
            total_stats = total_stats.merged(stats)
            latency += epoch_latency
        # Answering reconstructs the current version from the traces.
        reconstruct = (self.costs.trace_combine_cost * self.traces
                       * self.solver.state_size() * self.costs.scan_cost)
        latency += reconstruct
        return EngineRun(latency, self._solution, total_stats,
                         traces=self.traces)
