"""A stale-synchronous-parallel (SSP) parameter server.

The paper's related work (§7) contrasts Tornado's bounded asynchronous
iteration with Parameter Servers [Ho et al. NIPS'13; Li et al. OSDI'14]:
they also bound staleness, but specialise the communication pattern to a
bipartite worker/server graph, so they cannot run general graph analyses
(or retractable streams).  This module implements SSP faithfully at the
algorithm level so the SGD workloads can be compared:

* ``n_workers`` workers each hold a shard of the data;
* a worker at clock ``c`` may proceed only while the slowest worker is at
  clock ``> c - staleness``;
* workers read a (possibly stale) copy of the weights, compute a
  mini-batch gradient, and push it to the server.

``staleness=0`` is BSP (fully synchronous); larger values overlap
communication and computation but train on staler weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.sgd import Instance, Loss
from repro.streams.model import ADD_INSTANCE, StreamTuple


@dataclass
class SSPStats:
    clocks: dict[int, int] = field(default_factory=dict)
    pushes: int = 0
    waits: int = 0
    stale_reads: int = 0


class SSPParameterServer:
    """Round-robin simulation of SSP execution.

    The scheduler repeatedly picks the next runnable worker (one not
    blocked by the staleness bound) in round-robin order; a blocked pick
    counts as a wait.  With heterogeneous ``worker_speeds``, slow workers
    hold everyone back under small staleness — the SSP trade-off.
    """

    def __init__(self, loss: Loss, dim: int, n_workers: int,
                 staleness: int = 0, rate: float = 0.1,
                 batch_size: int = 16, seed: int = 0,
                 worker_speeds: list[float] | None = None) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        self.loss = loss
        self.dim = dim
        self.n_workers = n_workers
        self.staleness = staleness
        self.rate = rate
        self.batch_size = batch_size
        self.weights = np.zeros(dim)
        self._shards: list[list[Instance]] = [[] for _ in range(n_workers)]
        self._worker_weights = [self.weights.copy()
                                for _ in range(n_workers)]
        self._clocks = [0] * n_workers
        self._rng = np.random.default_rng(seed)
        self.worker_speeds = (list(worker_speeds) if worker_speeds
                              else [1.0] * n_workers)
        if len(self.worker_speeds) != n_workers:
            raise ValueError("need one speed per worker")
        self._credit = [0.0] * n_workers
        self.stats = SSPStats()
        self.virtual_time = 0.0

    # -------------------------------------------------------------- feeding
    def feed(self, tuples: list[StreamTuple]) -> int:
        added = 0
        for tup in tuples:
            if tup.kind != ADD_INSTANCE:
                continue
            shard = added % self.n_workers
            self._shards[shard].append(tup.payload)
            added += 1
        return added

    # ------------------------------------------------------------- running
    def _runnable(self, worker: int) -> bool:
        slowest = min(self._clocks)
        return self._clocks[worker] - slowest <= self.staleness

    def step_worker(self, worker: int) -> bool:
        """One SSP clock tick for ``worker``; False if blocked."""
        if not self._shards[worker]:
            return False
        if not self._runnable(worker):
            self.stats.waits += 1
            return False
        # Read (possibly stale) weights.
        if not np.array_equal(self._worker_weights[worker], self.weights):
            self.stats.stale_reads += 1
        self._worker_weights[worker] = self.weights.copy()
        shard = self._shards[worker]
        picks = self._rng.integers(0, len(shard),
                                   size=min(self.batch_size, len(shard)))
        batch = [shard[int(i)] for i in picks]
        xs = np.stack([inst.x() for inst in batch])
        ys = np.asarray([inst.label for inst in batch], dtype=float)
        gradient = self.loss.gradient(self._worker_weights[worker], xs, ys)
        self.weights = self.weights - self.rate * gradient
        self._clocks[worker] += 1
        self.stats.pushes += 1
        self.virtual_time += 1.0 / self.worker_speeds[worker]
        return True

    def run_clocks(self, clocks: int) -> np.ndarray:
        """Run until every worker has advanced ``clocks`` ticks (or is
        permanently blocked/dataless)."""
        target = [c + clocks for c in self._clocks]
        stuck_rounds = 0
        while any(c < t for c, t in zip(self._clocks, target)):
            progressed = False
            for worker in range(self.n_workers):
                if self._clocks[worker] >= target[worker]:
                    continue
                if self.step_worker(worker):
                    progressed = True
            if not progressed:
                stuck_rounds += 1
                if stuck_rounds > 2:
                    break
            else:
                stuck_rounds = 0
        self.stats.clocks = {w: c for w, c in enumerate(self._clocks)}
        return self.weights

    # ------------------------------------------------------------- queries
    def objective(self) -> float:
        everything = [inst for shard in self._shards for inst in shard]
        if not everything:
            return float("inf")
        xs = np.stack([inst.x() for inst in everything])
        ys = np.asarray([inst.label for inst in everything], dtype=float)
        return self.loss.objective(self.weights, xs, ys)

    def accuracy(self) -> float:
        everything = [inst for shard in self._shards for inst in shard]
        if not everything:
            return 0.0
        xs = np.stack([inst.x() for inst in everything])
        ys = np.asarray([inst.label for inst in everything], dtype=float)
        return float((np.sign(xs @ self.weights) == ys).mean())
