"""Versioned vertex-state store.

Tornado materialises every committed vertex version in external storage
(paper §5.1: PostgreSQL / LMDB).  The store keeps, per ``(loop, key)``, the
chain of ``(iteration, value)`` versions.  Branch loops snapshot the main
loop by reading, for each vertex, the most recent version whose iteration is
not greater than the fork iteration (paper §5.2).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any

from repro.errors import StorageError


@dataclass
class _Chain:
    """Version chain for one key: parallel arrays sorted by iteration."""

    iterations: list[int] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)

    def put(self, iteration: int, value: Any) -> None:
        index = bisect.bisect_left(self.iterations, iteration)
        if index < len(self.iterations) and self.iterations[index] == iteration:
            self.values[index] = value
        else:
            self.iterations.insert(index, iteration)
            self.values.insert(index, value)

    def latest(self, max_iteration: int | None = None) -> tuple[int, Any] | None:
        if not self.iterations:
            return None
        if max_iteration is None:
            return self.iterations[-1], self.values[-1]
        index = bisect.bisect_right(self.iterations, max_iteration) - 1
        if index < 0:
            return None
        return self.iterations[index], self.values[index]

    def truncate_before(self, iteration: int) -> int:
        """Drop versions strictly older than the newest version that is
        ≤ ``iteration`` (that one must stay readable).  Returns #dropped."""
        keep_from = bisect.bisect_right(self.iterations, iteration) - 1
        if keep_from <= 0:
            return 0
        del self.iterations[:keep_from]
        del self.values[:keep_from]
        return keep_from


class VersionedStore:
    """Multi-loop, multi-version key-value store.

    Keys are namespaced by ``loop`` (the main loop and each branch loop get
    their own namespace).  All values are stored by reference; callers own
    immutability of committed values.
    """

    def __init__(self) -> None:
        self._chains: dict[tuple[str, Any], _Chain] = {}
        self.puts = 0
        self.reads = 0

    # -------------------------------------------------------------- writes
    def put(self, loop: str, key: Any, iteration: int, value: Any) -> None:
        """Record ``value`` as the version of ``key`` at ``iteration``."""
        if iteration < 0:
            raise StorageError(f"negative iteration: {iteration}")
        self.puts += 1
        chain = self._chains.get((loop, key))
        if chain is None:
            chain = self._chains[(loop, key)] = _Chain()
        chain.put(iteration, value)

    def put_if_newer(self, loop: str, key: Any, iteration: int,
                     value: Any) -> bool:
        """Write only when no version at ≥ ``iteration`` exists yet — the
        delta-handoff write used by live migration (the source flushes its
        freshest state once; redundant re-releases after recovery must not
        roll a newer committed version back).  Returns whether it wrote."""
        if iteration < 0:
            raise StorageError(f"negative iteration: {iteration}")
        chain = self._chains.get((loop, key))
        if chain is not None and chain.iterations \
                and chain.iterations[-1] >= iteration:
            return False
        self.put(loop, key, iteration, value)
        return True

    # --------------------------------------------------------------- reads
    def get(self, loop: str, key: Any,
            max_iteration: int | None = None) -> Any:
        """Most recent value of ``key`` with iteration ≤ ``max_iteration``
        (or the newest overall).  Raises :class:`StorageError` if absent."""
        found = self.get_version(loop, key, max_iteration)
        if found is None:
            raise StorageError(f"no version of {key!r} in loop {loop!r}"
                               f" at iteration <= {max_iteration}")
        return found[1]

    def get_version(self, loop: str, key: Any,
                    max_iteration: int | None = None
                    ) -> tuple[int, Any] | None:
        self.reads += 1
        chain = self._chains.get((loop, key))
        if chain is None:
            return None
        return chain.latest(max_iteration)

    def keys(self, loop: str) -> list[Any]:
        """Keys of a loop, as a snapshot list (callers may mutate the store
        while walking it)."""
        return [key for chain_loop, key in self._chains
                if chain_loop == loop]

    def snapshot(self, loop: str,
                 max_iteration: int | None = None) -> dict[Any, Any]:
        """Consistent view of a loop: per key, latest version ≤ bound.
        This is exactly the branch-loop fork read (paper §5.2)."""
        view: dict[Any, Any] = {}
        for key in self.keys(loop):
            found = self.get_version(loop, key, max_iteration)
            if found is not None:
                view[key] = found[1]
        return view

    # ------------------------------------------------------------ lifecycle
    def drop_loop(self, loop: str) -> int:
        """Delete every version of a loop (branch-loop teardown)."""
        doomed = [pair for pair in self._chains if pair[0] == loop]
        for pair in doomed:
            del self._chains[pair]
        return len(doomed)

    def truncate_before(self, loop: str, iteration: int) -> int:
        """Garbage-collect versions no snapshot at ≥ ``iteration`` can see."""
        dropped = 0
        for (chain_loop, _key), chain in self._chains.items():
            if chain_loop == loop:
                dropped += chain.truncate_before(iteration)
        return dropped

    def version_count(self, loop: str | None = None) -> int:
        return sum(len(chain.iterations)
                   for (chain_loop, _key), chain in self._chains.items()
                   if loop is None or chain_loop == loop)
