"""Versioned vertex-state store.

Tornado materialises every committed vertex version in external storage
(paper §5.1: PostgreSQL / LMDB).  The store keeps, per ``(loop, key)``, the
chain of ``(iteration, value)`` versions.  Branch loops snapshot the main
loop by reading, for each vertex, the most recent version whose iteration is
not greater than the fork iteration (paper §5.2).

Three layouts, A/B-gated by ``delta_path`` / ``columnar`` (mirroring
the kernel ``fast_path`` precedent):

* **Legacy** (``delta_path=False``): one flat ``(loop, key) -> chain``
  dict.  ``keys()`` / ``snapshot()`` / ``drop_loop()`` /
  ``truncate_before()`` / ``version_count()`` scan every chain in the
  store — the pre-delta-path implementation, kept as the perf baseline.
* **Delta** (``delta_path=True``, the default): a per-loop key index
  (loop-scoped walks touch only that loop's chains), chains that absorb
  writes into a pending delta log consolidated by periodic *rebases*
  (arrangement-style: the sorted base arrays are rebuilt only every
  ``rebase_interval`` writes or before a read), and an LRU snapshot
  cache keyed ``(loop, bound)``, invalidated by per-loop generation
  counters — repeated branch-fork reads of an unchanged loop stop
  re-walking full chains.
* **Columnar** (``columnar=True``): per-loop numpy column slabs — one
  sorted ``(slot << 32) | iteration`` int64 column + a parallel object
  value column per loop, a slab-level pending log folded in by batched
  rebases, and vectorized ``get_many`` / ``snapshot`` /
  ``truncate_before`` (see :mod:`repro.storage.columnar`).  Results and
  dict orderings are identical to the delta layout — same-seed runs
  produce byte-identical flight-recorder digests either way; only the
  housekeeping gauges (``rebases``) count different internal events.
  The columnar backend is imported lazily so the object layouts stay
  importable without numpy.

The snapshot LRU cache and per-loop generation counters are shared by
the delta and columnar layouts.

Cost-model accounting is split: :attr:`reads` counts *protocol* reads
(vertex seeding, fork snapshots, query results); runtime housekeeping
walks (GC, merge write-back, crash recovery, migration re-release) go
through the ``peek``/``internal`` variants and land in
:attr:`internal_reads` instead, so :attr:`reads` reflects only what a
real deployment would bill the database for.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import StorageError

#: Default pending-log length that triggers a rebase on write (delta
#: and columnar paths); per-store override via ``rebase_interval`` /
#: :attr:`TornadoConfig.store_rebase_interval`.
REBASE_INTERVAL = 16
#: Default number of distinct ``(loop, bound)`` snapshot views kept by
#: the LRU cache; override via ``snapshot_cache_size`` /
#: :attr:`TornadoConfig.store_snapshot_cache_size`.
SNAPSHOT_CACHE_SIZE = 32


@dataclass
class _Chain:
    """Version chain for one key: parallel arrays sorted by iteration,
    plus (delta path only) a pending log of unconsolidated writes."""

    iterations: list[int] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)
    #: Recent writes not yet merged into the sorted base; readers must
    #: :meth:`rebase` first.  Legacy-mode chains never populate this.
    pending: list[tuple[int, Any]] = field(default_factory=list)

    def put(self, iteration: int, value: Any) -> None:
        index = bisect.bisect_left(self.iterations, iteration)
        if index < len(self.iterations) and self.iterations[index] == iteration:
            self.values[index] = value
        else:
            self.iterations.insert(index, iteration)
            self.values.insert(index, value)

    def rebase(self) -> None:
        """Fold the pending log into the sorted base (last write per
        iteration wins).  The common case — appends in ascending order
        past the base — extends the arrays without re-sorting."""
        pending = self.pending
        if not pending:
            return
        self.pending = []
        previous = self.iterations[-1] if self.iterations else -1
        ascending = True
        for iteration, _value in pending:
            if iteration <= previous:
                ascending = False
                break
            previous = iteration
        if ascending:
            for iteration, value in pending:
                self.iterations.append(iteration)
                self.values.append(value)
            return
        merged = dict(zip(self.iterations, self.values))
        merged.update(pending)
        items = sorted(merged.items())
        self.iterations = [iteration for iteration, _value in items]
        self.values = [value for _iteration, value in items]

    def max_iteration(self) -> int | None:
        """Newest iteration across base *and* pending log — the
        ``put_if_newer`` guard must see unconsolidated writes too."""
        best = self.iterations[-1] if self.iterations else None
        for iteration, _value in self.pending:
            if best is None or iteration > best:
                best = iteration
        return best

    def latest(self, max_iteration: int | None = None) -> tuple[int, Any] | None:
        if not self.iterations:
            return None
        if max_iteration is None:
            return self.iterations[-1], self.values[-1]
        index = bisect.bisect_right(self.iterations, max_iteration) - 1
        if index < 0:
            return None
        return self.iterations[index], self.values[index]

    def truncate_before(self, iteration: int) -> int:
        """Drop versions strictly older than the newest version that is
        ≤ ``iteration`` (that one must stay readable).  Returns #dropped."""
        keep_from = bisect.bisect_right(self.iterations, iteration) - 1
        if keep_from <= 0:
            return 0
        del self.iterations[:keep_from]
        del self.values[:keep_from]
        return keep_from


class VersionedStore:
    """Multi-loop, multi-version key-value store.

    Keys are namespaced by ``loop`` (the main loop and each branch loop get
    their own namespace).  All values are stored by reference; callers own
    immutability of committed values.
    """

    def __init__(self, delta_path: bool = True, columnar: bool = False,
                 rebase_interval: int | None = None,
                 snapshot_cache_size: int | None = None) -> None:
        self.delta_path = delta_path
        self.columnar = columnar
        self.rebase_interval = (REBASE_INTERVAL if rebase_interval is None
                                else rebase_interval)
        self.snapshot_cache_size = (SNAPSHOT_CACHE_SIZE
                                    if snapshot_cache_size is None
                                    else snapshot_cache_size)
        if self.rebase_interval < 1:
            raise StorageError(
                f"rebase_interval must be >= 1: {self.rebase_interval}")
        if self.snapshot_cache_size < 1:
            raise StorageError(f"snapshot_cache_size must be >= 1: "
                               f"{self.snapshot_cache_size}")
        self.puts = 0
        #: Protocol reads — what the cost model bills (see module doc).
        self.reads = 0
        #: Housekeeping reads (GC, merge, recovery, migration walks).
        self.internal_reads = 0
        self.rebases = 0
        self.cache_hits = 0
        self.cache_misses = 0
        # Delta layout: loop -> key -> chain, plus the snapshot cache
        # ((loop, bound) -> (generation, view)) and per-loop generations.
        # Cache and generations are shared with the columnar layout.
        self._loops: dict[str, dict[Any, _Chain]] = {}
        self._snap_cache: OrderedDict[tuple[str, int | None],
                                      tuple[int, dict[Any, Any]]] \
            = OrderedDict()
        self._generation: dict[str, int] = {}
        # Legacy layout: one flat dict over every loop.
        self._chains: dict[tuple[str, Any], _Chain] = {}
        # Columnar layout: numpy slab backend, imported lazily so the
        # object layouts stay importable without numpy installed.
        if columnar:
            from repro.storage.columnar import ColumnarStore
            self._col = ColumnarStore(self, self.rebase_interval)
        else:
            self._col = None

    @property
    def _indexed(self) -> bool:
        """Layouts with a per-loop index + snapshot cache."""
        return self.columnar or self.delta_path

    # ----------------------------------------------------------- internals
    def _find(self, loop: str, key: Any) -> _Chain | None:
        if self.delta_path:
            chains = self._loops.get(loop)
            return None if chains is None else chains.get(key)
        return self._chains.get((loop, key))

    def _obtain(self, loop: str, key: Any) -> _Chain:
        if self.delta_path:
            chains = self._loops.setdefault(loop, {})
            chain = chains.get(key)
            if chain is None:
                chain = chains[key] = _Chain()
            return chain
        chain = self._chains.get((loop, key))
        if chain is None:
            chain = self._chains[(loop, key)] = _Chain()
        return chain

    def _settle(self, chain: _Chain) -> None:
        if chain.pending:
            chain.rebase()
            self.rebases += 1

    def _bump(self, loop: str) -> None:
        self._generation[loop] = self._generation.get(loop, 0) + 1

    def _latest(self, loop: str, key: Any,
                max_iteration: int | None) -> tuple[int, Any] | None:
        if self.columnar:
            return self._col.latest(loop, key, max_iteration)
        chain = self._find(loop, key)
        if chain is None:
            return None
        self._settle(chain)
        return chain.latest(max_iteration)

    # -------------------------------------------------------------- writes
    def put(self, loop: str, key: Any, iteration: int, value: Any) -> None:
        """Record ``value`` as the version of ``key`` at ``iteration``."""
        if iteration < 0:
            raise StorageError(f"negative iteration: {iteration}")
        self.puts += 1
        if self.columnar:
            self._col.put(loop, key, iteration, value)
            self._bump(loop)
            return
        chain = self._obtain(loop, key)
        if self.delta_path:
            chain.pending.append((iteration, value))
            if len(chain.pending) >= self.rebase_interval:
                self._settle(chain)
            self._bump(loop)
        else:
            chain.put(iteration, value)

    def put_many(self, loop: str,
                 items: Iterable[tuple[Any, int, Any]]) -> int:
        """Batched write: ``(key, iteration, value)`` triples.  Returns
        the number written.  One generation bump covers the whole batch
        on the indexed paths (one snapshot-cache invalidation, not N)."""
        count = 0
        if self.columnar:
            for key, iteration, value in items:
                if iteration < 0:
                    raise StorageError(f"negative iteration: {iteration}")
                self._col.put(loop, key, iteration, value)
                count += 1
        else:
            for key, iteration, value in items:
                if iteration < 0:
                    raise StorageError(f"negative iteration: {iteration}")
                chain = self._obtain(loop, key)
                if self.delta_path:
                    chain.pending.append((iteration, value))
                    if len(chain.pending) >= self.rebase_interval:
                        self._settle(chain)
                else:
                    chain.put(iteration, value)
                count += 1
        self.puts += count
        if count and self._indexed:
            self._bump(loop)
        return count

    def put_columns(self, loop: str, keys: Any, iterations: Any,
                    values: Any) -> int:
        """Column-slab write: parallel key/iteration/value arrays (the
        iteration may be a scalar covering the whole slab).  On the
        columnar layout this appends one numpy block to the loop's
        pending log; the object layouts fall back to element-wise puts,
        so callers (bulk engine, live journal) need not branch."""
        if self.columnar:
            count = self._col.put_columns(loop, keys, iterations, values)
            self.puts += count
            if count:
                self._bump(loop)
            return count
        # Unbox ndarray columns to plain Python lists first: iterating a
        # numpy array yields numpy scalars, which must never reach the
        # object chains (their reprs poison canonical digests).
        keys = keys.tolist() if hasattr(keys, "tolist") else keys
        iterations = (iterations.tolist()
                      if hasattr(iterations, "tolist") else iterations)
        values = values.tolist() if hasattr(values, "tolist") else values
        if isinstance(iterations, int):
            triples = ((key, iterations, value)
                       for key, value in zip(keys, values, strict=True))
        else:
            triples = zip(keys, iterations, values, strict=True)
        return self.put_many(loop, triples)

    def put_if_newer(self, loop: str, key: Any, iteration: int,
                     value: Any) -> bool:
        """Write only when no version at ≥ ``iteration`` exists yet — the
        delta-handoff write used by live migration (the source flushes its
        freshest state once; redundant re-releases after recovery must not
        roll a newer committed version back).  Returns whether it wrote."""
        if iteration < 0:
            raise StorageError(f"negative iteration: {iteration}")
        if self.columnar:
            newest = self._col.max_iteration(loop, key)
        else:
            chain = self._find(loop, key)
            newest = None if chain is None else chain.max_iteration()
        if newest is not None and newest >= iteration:
            return False
        self.put(loop, key, iteration, value)
        return True

    # --------------------------------------------------------------- reads
    def get(self, loop: str, key: Any,
            max_iteration: int | None = None) -> Any:
        """Most recent value of ``key`` with iteration ≤ ``max_iteration``
        (or the newest overall).  Raises :class:`StorageError` if absent."""
        found = self.get_version(loop, key, max_iteration)
        if found is None:
            raise StorageError(f"no version of {key!r} in loop {loop!r}"
                               f" at iteration <= {max_iteration}")
        return found[1]

    def get_version(self, loop: str, key: Any,
                    max_iteration: int | None = None
                    ) -> tuple[int, Any] | None:
        self.reads += 1
        return self._latest(loop, key, max_iteration)

    def peek_version(self, loop: str, key: Any,
                     max_iteration: int | None = None
                     ) -> tuple[int, Any] | None:
        """Uncharged read for runtime housekeeping — same result as
        :meth:`get_version`, billed to :attr:`internal_reads`."""
        self.internal_reads += 1
        return self._latest(loop, key, max_iteration)

    def get_many(self, loop: str, keys: Iterable[Any],
                 max_iteration: int | None = None,
                 internal: bool = False) -> dict[Any, tuple[int, Any]]:
        """Batched point reads: key -> (iteration, value) for every key
        with a version ≤ the bound.  ``internal`` routes the charge to
        :attr:`internal_reads` (housekeeping walks)."""
        if self.columnar:
            walked, found = self._col.latest_many(loop, keys, max_iteration)
        else:
            found = {}
            walked = 0
            for key in keys:
                walked += 1
                version = self._latest(loop, key, max_iteration)
                if version is not None:
                    found[key] = version
        if internal:
            self.internal_reads += walked
        else:
            self.reads += walked
        return found

    def keys(self, loop: str) -> list[Any]:
        """Keys of a loop, as a snapshot list (callers may mutate the store
        while walking it)."""
        if self.columnar:
            return self._col.keys(loop)
        if self.delta_path:
            return list(self._loops.get(loop, ()))
        return [key for chain_loop, key in self._chains
                if chain_loop == loop]

    def snapshot(self, loop: str, max_iteration: int | None = None,
                 internal: bool = False) -> dict[Any, Any]:
        """Consistent view of a loop: per key, latest version ≤ bound.
        This is exactly the branch-loop fork read (paper §5.2).  On the
        delta path, repeated reads of an unchanged loop are served from
        the LRU cache.  ``internal`` walks (e.g. in-memory result
        merging) are billed to :attr:`internal_reads`."""
        if self._indexed:
            if self.columnar:
                walked = self._col.key_count(loop)
            else:
                walked = len(self._loops.get(loop, {}))
            cache_key = (loop, max_iteration)
            generation = self._generation.get(loop, 0)
            entry = self._snap_cache.get(cache_key)
            if entry is not None and entry[0] == generation:
                self._snap_cache.move_to_end(cache_key)
                self.cache_hits += 1
                view = dict(entry[1])
            else:
                self.cache_misses += 1
                if self.columnar:
                    view = self._col.snapshot_view(loop, max_iteration)
                else:
                    view = {}
                    for key, chain in self._loops.get(loop, {}).items():
                        self._settle(chain)
                        found = chain.latest(max_iteration)
                        if found is not None:
                            view[key] = found[1]
                self._snap_cache[cache_key] = (generation, dict(view))
                self._snap_cache.move_to_end(cache_key)
                while len(self._snap_cache) > self.snapshot_cache_size:
                    self._snap_cache.popitem(last=False)
        else:
            view = {}
            walked = 0
            for key in self.keys(loop):
                walked += 1
                found = self._latest(loop, key, max_iteration)
                if found is not None:
                    view[key] = found[1]
        if internal:
            self.internal_reads += walked
        else:
            self.reads += walked
        return view

    def snapshot_columns(self, loop: str, max_iteration: int | None = None,
                         internal: bool = False):
        """Array-native snapshot (columnar layout only): parallel
        ``(keys, values)`` numpy columns in key-creation order, without
        building a Python dict.  The bulk engine's read path."""
        if not self.columnar:
            raise StorageError("snapshot_columns requires columnar=True")
        walked = self._col.key_count(loop)
        if internal:
            self.internal_reads += walked
        else:
            self.reads += walked
        return self._col.snapshot_columns(loop, max_iteration)

    # ------------------------------------------------------------ lifecycle
    def drop_loop(self, loop: str) -> int:
        """Delete every version of a loop (branch-loop teardown)."""
        if self._indexed:
            if self.columnar:
                count = self._col.drop_loop(loop)
            else:
                chains = self._loops.pop(loop, None)
                count = len(chains) if chains is not None else 0
            self._generation.pop(loop, None)
            for cache_key in [k for k in self._snap_cache if k[0] == loop]:
                del self._snap_cache[cache_key]
            return count
        doomed = [pair for pair in self._chains if pair[0] == loop]
        for pair in doomed:
            del self._chains[pair]
        return len(doomed)

    def truncate_before(self, loop: str, iteration: int) -> int:
        """Garbage-collect versions no snapshot at ≥ ``iteration`` can see."""
        dropped = 0
        if self.columnar:
            dropped = self._col.truncate_before(loop, iteration)
            if dropped:
                self._bump(loop)
            return dropped
        if self.delta_path:
            for chain in self._loops.get(loop, {}).values():
                self._settle(chain)
                dropped += chain.truncate_before(iteration)
            if dropped:
                self._bump(loop)
            return dropped
        for (chain_loop, _key), chain in self._chains.items():
            if chain_loop == loop:
                dropped += chain.truncate_before(iteration)
        return dropped

    def export_versions(self) -> list[tuple[str, Any, int, Any]]:
        """Every ``(loop, key, iteration, value)`` version in the store —
        the hydration feed for live-backend worker recovery (the worker's
        local store died with its process; the master's authoritative
        copy re-seeds it).  A housekeeping walk: counts as internal."""
        if self.columnar:
            out = self._col.export_versions()
            self.internal_reads += len(out)
            return out
        out: list[tuple[str, Any, int, Any]] = []
        if self.delta_path:
            groups: Iterable[tuple[str, dict[Any, _Chain]]] \
                = self._loops.items()
            for loop, chains in groups:
                for key, chain in chains.items():
                    self._settle(chain)
                    out.extend((loop, key, iteration, value)
                               for iteration, value
                               in zip(chain.iterations, chain.values))
        else:
            for (loop, key), chain in self._chains.items():
                out.extend((loop, key, iteration, value)
                           for iteration, value
                           in zip(chain.iterations, chain.values))
        self.internal_reads += len(out)
        return out

    def approx_bytes(self) -> int:
        """Deterministic footprint estimate for per-tenant store quotas.

        The object layouts charge a flat ~96 bytes per version (key ref +
        iteration + value ref + chain overhead), counting pending-log
        entries without forcing a rebase, so probing the quota leaves the
        store's rebase cadence untouched.  The columnar layout reports its
        actual slab ``nbytes``.  Values are held by reference everywhere,
        so this intentionally ignores value payload sizes — the estimate
        is stable across layouts and runs, which is what a quota check
        needs more than physical precision.
        """
        if self.columnar:
            return self._col.nbytes()
        per_version = 96
        if self.delta_path:
            return per_version * sum(
                len(chain.iterations) + len(chain.pending)
                for chains in self._loops.values()
                for chain in chains.values())
        return per_version * sum(
            len(chain.iterations) + len(chain.pending)
            for chain in self._chains.values())

    def version_count(self, loop: str | None = None) -> int:
        if self.columnar:
            return self._col.version_count(loop)
        if self.delta_path:
            if loop is None:
                loops = list(self._loops.values())
            else:
                loops = [self._loops.get(loop, {})]
            total = 0
            for chains in loops:
                for chain in chains.values():
                    self._settle(chain)
                    total += len(chain.iterations)
            return total
        return sum(len(chain.iterations)
                   for (chain_loop, _key), chain in self._chains.items()
                   if loop is None or chain_loop == loop)
