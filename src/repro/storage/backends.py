"""Storage backends: cost models for materialising vertex versions.

The logical store (:class:`repro.storage.versioned.VersionedStore`) is a
plain data structure; *backends* decide how much virtual time a flush of N
versions costs on a given node.  The paper evaluates both a disk-backed
store (PostgreSQL — default) and an in-memory store (LMDB — used for the
Table 3 system comparison).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.simulator import SimulatedDisk, Simulator


class StorageBackend:
    """Flush-cost interface: charge the calling node for writing
    ``n_records`` versions and call back when durable."""

    def flush(self, n_records: int, callback: Callable[..., Any],
              *args: Any) -> None:
        raise NotImplementedError

    def read(self, n_records: int, callback: Callable[..., Any],
             *args: Any) -> None:
        raise NotImplementedError


class InMemoryBackend(StorageBackend):
    """LMDB-like memory-mapped store: flushes cost a small fixed latency
    per batch (no per-record transfer)."""

    def __init__(self, sim: Simulator, batch_latency: float = 1e-4,
                 record_cost: float = 5e-8) -> None:
        self.sim = sim
        self.batch_latency = batch_latency
        self.record_cost = record_cost
        self.flushes = 0
        self.records_flushed = 0

    def flush(self, n_records: int, callback: Callable[..., Any],
              *args: Any) -> None:
        self.flushes += 1
        self.records_flushed += max(0, n_records)
        cost = self.batch_latency + self.record_cost * max(0, n_records)
        self.sim.schedule(cost, callback, *args)

    def read(self, n_records: int, callback: Callable[..., Any],
             *args: Any) -> None:
        cost = self.batch_latency + self.record_cost * max(0, n_records)
        self.sim.schedule(cost, callback, *args)


class DiskBackend(StorageBackend):
    """PostgreSQL-like store: flushes go through a simulated disk with seek
    and per-record costs, and queue behind other requests on that disk."""

    def __init__(self, disk: SimulatedDisk) -> None:
        self.disk = disk

    @property
    def flushes(self) -> int:
        return self.disk.requests

    @property
    def records_flushed(self) -> int:
        return self.disk.records_written

    def flush(self, n_records: int, callback: Callable[..., Any],
              *args: Any) -> None:
        self.disk.write(n_records, callback, *args)

    def read(self, n_records: int, callback: Callable[..., Any],
             *args: Any) -> None:
        self.disk.read(n_records, callback, *args)
