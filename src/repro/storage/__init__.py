"""Versioned state storage: the paper's "distributed database" box."""

from repro.storage.backends import (DiskBackend, InMemoryBackend,
                                    StorageBackend)
from repro.storage.checkpoint import CheckpointManifest
from repro.storage.versioned import VersionedStore

__all__ = [
    "CheckpointManifest",
    "DiskBackend",
    "InMemoryBackend",
    "StorageBackend",
    "VersionedStore",
]
